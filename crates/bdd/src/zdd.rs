//! A zero-suppressed decision diagram (ZDD) kernel.
//!
//! The Jedd paper (§4.1) reports work in progress on a ZDD backend, since
//! ZDDs represent sparse tuple sets (like points-to relations) compactly.
//! This module provides that backend: a hash-consed ZDD store with the set
//! operations the relational layer needs, plus tuple construction and
//! enumeration. The `zdd_backend` bench compares it against the BDD kernel.

use crate::budget::BddError;
use crate::manager::ExportedNode;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// Index of a ZDD node. `0` is the empty family, `1` is the family
/// containing only the empty set.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ZddId(u32);

impl ZddId {
    /// The empty family of sets.
    pub const EMPTY: ZddId = ZddId(0);
    /// The family containing exactly the empty set.
    pub const UNIT: ZddId = ZddId(1);
}

/// A ZDD node. `bot` is the chain interval's bottom variable (Bryant's
/// CZDD reduction, TACAS 2018): a node with `bot > var` encodes a
/// don't-care chain over `var..bot-1` followed by the decision
/// `(¬x_bot·low + x_bot·high)` in ZDD semantics. Plain managers only ever
/// create the `bot == var` degenerate case.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct ZNode {
    var: u32,
    bot: u32,
    low: u32,
    high: u32,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum ZOp {
    Union,
    Intersect,
    Diff,
    Change,
    Subset0,
    Subset1,
}

struct ZInner {
    nodes: Vec<ZNode>,
    unique: HashMap<ZNode, u32>,
    cache: HashMap<(ZOp, u32, u32), u32>,
    num_vars: u32,
    chain: bool,
}

impl ZInner {
    fn mk(&mut self, var: u32, low: u32, high: u32) -> u32 {
        self.mk_span(var, var, low, high)
    }

    /// The variable a node tests first (`u32::MAX` for terminals).
    fn top(&self, a: u32) -> u32 {
        self.nodes[a as usize].var
    }

    /// Chain-reduced constructor: the canonical node for the don't-care
    /// chain `DC(t..b-1) · (¬x_b·f0 + x_b·f1)`.
    ///
    /// Canonicalisation (Bryant, TACAS 2018, CZDD flavour):
    ///
    /// 1. `⟨t:b, f, 0⟩ ≡ ⟨t:b-1, f, f⟩` (and `⟨t:t, f, 0⟩ ≡ f`, the
    ///    plain zero-suppression rule) — an empty high edge folds the
    ///    bottom level into the don't-care chain;
    /// 2. `⟨t:b, f, f⟩` with `f = ⟨b+1:b2, g0, g1⟩` `≡ ⟨t:b2, g0, g1⟩` —
    ///    a don't-care bottom whose child continues directly below absorbs
    ///    the child's chain (chain mode only: plain ZDDs keep their
    ///    `low == high` don't-care nodes).
    ///
    /// The canonical invariant is `f1 != 0` and *not* (`f0 == f1` and
    /// `f0`'s top variable is `b + 1`). With chain mode off this
    /// degenerates to the plain rule (`t == b` always).
    fn mk_span(&mut self, t: u32, mut b: u32, mut f0: u32, mut f1: u32) -> u32 {
        debug_assert!(self.chain || t == b, "chain span in a plain zdd manager");
        loop {
            if f1 == 0 {
                if t == b {
                    return f0;
                }
                b -= 1;
                f1 = f0;
            } else if self.chain && f0 == f1 && f0 > 1 && self.nodes[f0 as usize].var == b + 1 {
                let c = self.nodes[f0 as usize];
                b = c.bot;
                f0 = c.low;
                f1 = c.high;
                // The child was canonical, so its (f0, f1) pair cannot
                // trigger either rule again.
                break;
            } else {
                break;
            }
        }
        let key = ZNode {
            var: t,
            bot: b,
            low: f0,
            high: f1,
        };
        if let Some(&id) = self.unique.get(&key) {
            return id;
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(key);
        self.unique.insert(key, id);
        id
    }

    /// The cofactor pair of `a` at variable `m`: (sets without `m`, sets
    /// with `m` — `m` removed), both over variables `> m`. Requires
    /// `m <= top(a)`; above the top the variable is absent from every set.
    /// Don't-care chain levels cofactor to the same tail on both sides.
    fn zcof(&mut self, a: u32, m: u32) -> (u32, u32) {
        if a <= 1 {
            return (a, 0);
        }
        let n = self.nodes[a as usize];
        if n.var > m {
            return (a, 0);
        }
        debug_assert_eq!(n.var, m, "zcof below the top variable");
        if m == n.bot {
            (n.low, n.high)
        } else {
            let tail = self.mk_span(m + 1, n.bot, n.low, n.high);
            (tail, tail)
        }
    }

    /// `DC(t..end-1) · f`: a don't-care span over the half-open range
    /// `t..end` in front of `f` (identity when the range is empty).
    fn dc_span(&mut self, t: u32, end: u32, f: u32) -> u32 {
        if end <= t {
            f
        } else {
            self.mk_span(t, end - 1, f, f)
        }
    }

    fn union(&mut self, a: u32, b: u32) -> u32 {
        if a == b || b == 0 {
            return a;
        }
        if a == 0 {
            return b;
        }
        let (a, b) = if a > b { (b, a) } else { (a, b) };
        if let Some(&r) = self.cache.get(&(ZOp::Union, a, b)) {
            return r;
        }
        // Generic merge on the cofactors at the higher top variable (UNIT
        // reports `u32::MAX`, so `a == 1` descends b's low spine as the
        // structural merge did). In a plain manager `zcof` is exactly the
        // stored child pair, so ids and cache behaviour are unchanged.
        let m = self.top(a).min(self.top(b));
        let (a0, a1) = self.zcof(a, m);
        let (b0, b1) = self.zcof(b, m);
        let lo = self.union(a0, b0);
        let hi = self.union(a1, b1);
        let r = self.mk(m, lo, hi);
        self.cache.insert((ZOp::Union, a, b), r);
        r
    }

    fn intersect(&mut self, a: u32, b: u32) -> u32 {
        if a == b {
            return a;
        }
        if a == 0 || b == 0 {
            return 0;
        }
        if a == 1 {
            return if self.contains_empty(b) { 1 } else { 0 };
        }
        if b == 1 {
            return if self.contains_empty(a) { 1 } else { 0 };
        }
        let (a, b) = if a > b { (b, a) } else { (a, b) };
        if let Some(&r) = self.cache.get(&(ZOp::Intersect, a, b)) {
            return r;
        }
        let m = self.top(a).min(self.top(b));
        let (a0, a1) = self.zcof(a, m);
        let (b0, b1) = self.zcof(b, m);
        let lo = self.intersect(a0, b0);
        let hi = self.intersect(a1, b1);
        let r = self.mk(m, lo, hi);
        self.cache.insert((ZOp::Intersect, a, b), r);
        r
    }

    fn diff(&mut self, a: u32, b: u32) -> u32 {
        if a == 0 || a == b {
            return 0;
        }
        if b == 0 {
            return a;
        }
        if let Some(&r) = self.cache.get(&(ZOp::Diff, a, b)) {
            return r;
        }
        let r = if a == 1 {
            if self.contains_empty(b) {
                0
            } else {
                1
            }
        } else {
            let m = self.top(a).min(self.top(b));
            let (a0, a1) = self.zcof(a, m);
            let (b0, b1) = self.zcof(b, m);
            let lo = self.diff(a0, b0);
            let hi = self.diff(a1, b1);
            self.mk(m, lo, hi)
        };
        self.cache.insert((ZOp::Diff, a, b), r);
        r
    }

    fn contains_empty(&self, mut a: u32) -> bool {
        while a > 1 {
            a = self.nodes[a as usize].low;
        }
        a == 1
    }

    /// Family of sets in `a` not containing `var`.
    fn subset0(&mut self, a: u32, var: u32) -> u32 {
        if a <= 1 {
            return a;
        }
        let na = self.nodes[a as usize];
        if na.var > var {
            return a;
        }
        let key = (ZOp::Subset0, a, var);
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let r = if var < na.bot {
            // A don't-care chain level: drop it from the chain, keep the
            // don't-care prefix above it.
            let tail = self.mk_span(var + 1, na.bot, na.low, na.high);
            self.dc_span(na.var, var, tail)
        } else if var == na.bot {
            // The decision level: keep the low branch under the prefix.
            self.dc_span(na.var, na.bot, na.low)
        } else {
            let lo = self.subset0(na.low, var);
            let hi = self.subset0(na.high, var);
            self.mk_span(na.var, na.bot, lo, hi)
        };
        self.cache.insert(key, r);
        r
    }

    /// Family of sets in `a` containing `var`, with `var` removed.
    fn subset1(&mut self, a: u32, var: u32) -> u32 {
        if a <= 1 {
            return 0;
        }
        let na = self.nodes[a as usize];
        if na.var > var {
            return 0;
        }
        let key = (ZOp::Subset1, a, var);
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let r = if var < na.bot {
            // Don't-care level: the sets containing `var` biject (by
            // removing it) onto the sets without it — same result as
            // `subset0`.
            let tail = self.mk_span(var + 1, na.bot, na.low, na.high);
            self.dc_span(na.var, var, tail)
        } else if var == na.bot {
            self.dc_span(na.var, na.bot, na.high)
        } else {
            let lo = self.subset1(na.low, var);
            let hi = self.subset1(na.high, var);
            self.mk_span(na.var, na.bot, lo, hi)
        };
        self.cache.insert(key, r);
        r
    }

    /// Toggles membership of `var` in every set of the family.
    fn change(&mut self, a: u32, var: u32) -> u32 {
        if a == 0 {
            return 0;
        }
        let key = (ZOp::Change, a, var);
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let r = if a == 1 {
            self.mk(var, 0, 1)
        } else {
            let na = self.nodes[a as usize];
            if na.var > var {
                self.mk(var, 0, a)
            } else if var < na.bot {
                // Toggling a don't-care level permutes the family onto
                // itself.
                a
            } else if var == na.bot {
                self.mk_span(na.var, na.bot, na.high, na.low)
            } else {
                let lo = self.change(na.low, var);
                let hi = self.change(na.high, var);
                self.mk_span(na.var, na.bot, lo, hi)
            }
        };
        self.cache.insert(key, r);
        r
    }

    fn count(&self, a: u32, memo: &mut HashMap<u32, f64>) -> f64 {
        if a == 0 {
            return 0.0;
        }
        if a == 1 {
            return 1.0;
        }
        if let Some(&c) = memo.get(&a) {
            return c;
        }
        let n = self.nodes[a as usize];
        // Each don't-care chain level doubles the family.
        let c = (self.count(n.low, memo) + self.count(n.high, memo))
            * (2f64).powi((n.bot - n.var) as i32);
        memo.insert(a, c);
        c
    }

    fn node_count(&self, a: u32) -> usize {
        if a <= 1 {
            return 0;
        }
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![a];
        while let Some(id) = stack.pop() {
            if id <= 1 || !seen.insert(id) {
                continue;
            }
            let n = self.nodes[id as usize];
            stack.push(n.low);
            stack.push(n.high);
        }
        seen.len()
    }
}

/// A shared ZDD kernel. Families of sets of variables; hash-consed with
/// memoised operations.
///
/// # Examples
///
/// ```
/// use jedd_bdd::ZddManager;
/// let z = ZddManager::new(8);
/// let a = z.family(&[vec![0, 2], vec![1]]);
/// let b = z.family(&[vec![1], vec![3]]);
/// assert_eq!(z.count(z.union(a, b)), 3.0);
/// assert_eq!(z.count(z.intersect(a, b)), 1.0);
/// ```
#[derive(Clone)]
pub struct ZddManager {
    inner: Rc<RefCell<ZInner>>,
}

impl fmt::Debug for ZddManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("ZddManager")
            .field("num_vars", &inner.num_vars)
            .field("nodes", &inner.nodes.len())
            .finish()
    }
}

impl ZddManager {
    /// Creates a ZDD manager over `num_vars` variables.
    pub fn new(num_vars: usize) -> ZddManager {
        ZddManager::new_inner(num_vars, false)
    }

    /// Creates a chain-reduced (CZDD) manager: nodes may carry a chain
    /// interval encoding a don't-care span (Bryant, TACAS 2018), so
    /// families where many variables are "present or absent freely" store
    /// one node per span. A CZDD never holds more nodes than the plain
    /// ZDD of the same family.
    pub fn new_chained(num_vars: usize) -> ZddManager {
        ZddManager::new_inner(num_vars, true)
    }

    fn new_inner(num_vars: usize, chain: bool) -> ZddManager {
        ZddManager {
            inner: Rc::new(RefCell::new(ZInner {
                nodes: vec![
                    ZNode {
                        var: u32::MAX,
                        bot: u32::MAX,
                        low: 0,
                        high: 0,
                    },
                    ZNode {
                        var: u32::MAX,
                        bot: u32::MAX,
                        low: 1,
                        high: 1,
                    },
                ],
                unique: HashMap::new(),
                cache: HashMap::new(),
                num_vars: num_vars as u32,
                chain,
            })),
        }
    }

    /// `true` when this manager applies chain reduction (created via
    /// [`ZddManager::new_chained`]).
    pub fn chain_mode(&self) -> bool {
        self.inner.borrow().chain
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.inner.borrow().num_vars as usize
    }

    /// The family containing the single set with exactly the given
    /// variables.
    ///
    /// # Panics
    ///
    /// Panics if a variable is out of range.
    pub fn singleton(&self, vars: &[u32]) -> ZddId {
        let mut inner = self.inner.borrow_mut();
        let mut sorted = vars.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut acc = 1u32;
        for &v in sorted.iter().rev() {
            assert!(v < inner.num_vars, "zdd variable {v} out of range");
            acc = inner.mk(v, 0, acc);
        }
        ZddId(acc)
    }

    /// The family containing all the given sets.
    pub fn family(&self, sets: &[Vec<u32>]) -> ZddId {
        let mut acc = ZddId::EMPTY;
        for s in sets {
            let one = self.singleton(s);
            acc = self.union(acc, one);
        }
        acc
    }

    /// Set-family union.
    pub fn union(&self, a: ZddId, b: ZddId) -> ZddId {
        ZddId(self.inner.borrow_mut().union(a.0, b.0))
    }

    /// Set-family intersection.
    pub fn intersect(&self, a: ZddId, b: ZddId) -> ZddId {
        ZddId(self.inner.borrow_mut().intersect(a.0, b.0))
    }

    /// Set-family difference.
    pub fn diff(&self, a: ZddId, b: ZddId) -> ZddId {
        ZddId(self.inner.borrow_mut().diff(a.0, b.0))
    }

    /// The sets of `a` not containing `var`.
    pub fn subset0(&self, a: ZddId, var: u32) -> ZddId {
        ZddId(self.inner.borrow_mut().subset0(a.0, var))
    }

    /// The sets of `a` containing `var`, with `var` removed.
    pub fn subset1(&self, a: ZddId, var: u32) -> ZddId {
        ZddId(self.inner.borrow_mut().subset1(a.0, var))
    }

    /// Toggles `var` in every set of the family.
    pub fn change(&self, a: ZddId, var: u32) -> ZddId {
        ZddId(self.inner.borrow_mut().change(a.0, var))
    }

    /// "Existential quantification" of `var`: sets with and without `var`
    /// merged, `var` removed.
    pub fn abstract_var(&self, a: ZddId, var: u32) -> ZddId {
        let s0 = self.subset0(a, var);
        let s1 = self.subset1(a, var);
        self.union(s0, s1)
    }

    /// Number of sets in the family.
    pub fn count(&self, a: ZddId) -> f64 {
        let inner = self.inner.borrow();
        let mut memo = HashMap::new();
        inner.count(a.0, &mut memo)
    }

    /// Number of internal nodes of `a`.
    pub fn node_count(&self, a: ZddId) -> usize {
        self.inner.borrow().node_count(a.0)
    }

    /// Total nodes allocated by the manager.
    pub fn total_nodes(&self) -> usize {
        self.inner.borrow().nodes.len()
    }

    /// Collects every set in the family (sorted variable lists). Intended
    /// for tests and small families.
    pub fn sets(&self, a: ZddId) -> Vec<Vec<u32>> {
        let inner = self.inner.borrow();
        let mut out = Vec::new();
        let mut prefix = Vec::new();
        // `top` is the effective top variable of `id`: chain nodes expand
        // their don't-care levels one at a time (both with and without the
        // variable) before the decision at `bot`.
        fn rec(inner: &ZInner, id: u32, top: u32, prefix: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
            if id == 0 {
                return;
            }
            if id == 1 {
                out.push(prefix.clone());
                return;
            }
            let n = inner.nodes[id as usize];
            if top < n.bot {
                rec(inner, id, top + 1, prefix, out);
                prefix.push(top);
                rec(inner, id, top + 1, prefix, out);
                prefix.pop();
                return;
            }
            rec(inner, n.low, inner.top(n.low), prefix, out);
            prefix.push(n.bot);
            rec(inner, n.high, inner.top(n.high), prefix, out);
            prefix.pop();
        }
        let top = inner.top(a.0);
        rec(&inner, a.0, top, &mut prefix, &mut out);
        out.sort();
        out
    }

    /// Serializes the sub-DAGs under `roots` as a children-first node
    /// table plus the slot of each root — the ZDD analogue of
    /// [`crate::BddManager::export_nodes`], using the same
    /// [`ExportedNode`]/slot encoding (slot 0 = [`ZddId::EMPTY`], slot 1 =
    /// [`ZddId::UNIT`], entry `i` = slot `i + 2`).
    pub fn export_nodes(&self, roots: &[ZddId]) -> (Vec<ExportedNode>, Vec<u32>) {
        let inner = self.inner.borrow();
        let mut slot: HashMap<u32, u32> = HashMap::new();
        slot.insert(0, 0);
        slot.insert(1, 1);
        let mut out: Vec<ExportedNode> = Vec::new();
        let mut stack: Vec<(u32, bool)> = Vec::new();
        for r in roots {
            stack.push((r.0, false));
            while let Some((id, expanded)) = stack.pop() {
                if slot.contains_key(&id) {
                    continue;
                }
                let n = inner.nodes[id as usize];
                if expanded {
                    // A chain node expands to its plain spine: the decision
                    // node at `bot`, then one don't-care `(next, next)` node
                    // per chain level walking back up to `var`. Plain
                    // managers emit exactly one entry per node, so their
                    // tables are unchanged. The id maps to the topmost slot.
                    out.push(ExportedNode {
                        var: n.bot,
                        low: slot[&n.low],
                        high: slot[&n.high],
                    });
                    let mut acc = out.len() as u32 + 1;
                    for l in (n.var..n.bot).rev() {
                        out.push(ExportedNode {
                            var: l,
                            low: acc,
                            high: acc,
                        });
                        acc = out.len() as u32 + 1;
                    }
                    slot.insert(id, acc);
                } else {
                    stack.push((id, true));
                    stack.push((n.high, false));
                    stack.push((n.low, false));
                }
            }
        }
        let root_slots = roots.iter().map(|r| slot[&r.0]).collect();
        (out, root_slots)
    }

    /// Rebuilds the ZDDs described by a node table from
    /// [`ZddManager::export_nodes`], returning an id per root slot. Entries
    /// are re-interned through the unique table, so importing into a fresh
    /// manager assigns the same node ids on every run (this kernel never
    /// garbage-collects, so ids are allocation-ordered).
    ///
    /// The whole table is validated before the first node is created.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::InvalidImport`] when the table is malformed:
    /// variable out of range, forward or self reference, the parent's
    /// variable not above a child's, or a zero-suppressible entry (high
    /// edge = empty family) that `mk` would have removed.
    pub fn import_nodes(
        &self,
        nodes: &[ExportedNode],
        roots: &[u32],
    ) -> Result<Vec<ZddId>, BddError> {
        const TERMINAL: u32 = u32::MAX;
        let mut inner = self.inner.borrow_mut();
        let mut vars: Vec<u32> = Vec::with_capacity(nodes.len());
        for (i, n) in nodes.iter().enumerate() {
            let index = i as u32;
            if n.var >= inner.num_vars {
                return Err(BddError::InvalidImport {
                    index,
                    reason: "variable out of range",
                });
            }
            for child in [n.low, n.high] {
                if child as usize >= i + 2 {
                    return Err(BddError::InvalidImport {
                        index,
                        reason: "child slot is not an earlier entry",
                    });
                }
                let child_var = if child < 2 { TERMINAL } else { vars[child as usize - 2] };
                if n.var >= child_var {
                    return Err(BddError::InvalidImport {
                        index,
                        reason: "child does not sit below its parent in the order",
                    });
                }
            }
            if n.high == 0 {
                return Err(BddError::InvalidImport {
                    index,
                    reason: "zero-suppressible entry (empty high edge)",
                });
            }
            vars.push(n.var);
        }
        for (i, &r) in roots.iter().enumerate() {
            if r as usize >= nodes.len() + 2 {
                return Err(BddError::InvalidImport {
                    index: i as u32,
                    reason: "root slot out of range",
                });
            }
        }
        let mut ids: Vec<u32> = Vec::with_capacity(nodes.len() + 2);
        ids.push(0);
        ids.push(1);
        for n in nodes {
            let low = ids[n.low as usize];
            let high = ids[n.high as usize];
            let id = inner.mk(n.var, low, high);
            ids.push(id);
        }
        Ok(roots.iter().map(|&r| ZddId(ids[r as usize])).collect())
    }

    /// Encodes a tuple of `(bits, value)` fields as a set: variable `b` is
    /// in the set iff the corresponding bit of `value` is 1 (MSB first).
    /// This is the ZDD analogue of `BddManager::encode_value`.
    pub fn encode_tuple(&self, fields: &[(&[u32], u64)]) -> ZddId {
        let mut vars = Vec::new();
        for &(bits, value) in fields {
            for (i, &b) in bits.iter().enumerate() {
                if (value >> (bits.len() - 1 - i)) & 1 == 1 {
                    vars.push(b);
                }
            }
        }
        self.singleton(&vars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_unit() {
        let z = ZddManager::new(4);
        assert_eq!(z.count(ZddId::EMPTY), 0.0);
        assert_eq!(z.count(ZddId::UNIT), 1.0);
        assert_eq!(z.sets(ZddId::UNIT), vec![Vec::<u32>::new()]);
    }

    #[test]
    fn union_intersect_diff() {
        let z = ZddManager::new(8);
        let a = z.family(&[vec![0], vec![1, 2], vec![3]]);
        let b = z.family(&[vec![1, 2], vec![4]]);
        assert_eq!(z.count(z.union(a, b)), 4.0);
        assert_eq!(z.count(z.intersect(a, b)), 1.0);
        assert_eq!(z.sets(z.intersect(a, b)), vec![vec![1, 2]]);
        assert_eq!(z.count(z.diff(a, b)), 2.0);
        assert_eq!(z.diff(a, a), ZddId::EMPTY);
    }

    #[test]
    fn union_idempotent_and_commutative() {
        let z = ZddManager::new(6);
        let a = z.family(&[vec![0, 1], vec![2]]);
        let b = z.family(&[vec![2], vec![5]]);
        assert_eq!(z.union(a, a), a);
        assert_eq!(z.union(a, b), z.union(b, a));
    }

    #[test]
    fn subset_and_change() {
        let z = ZddManager::new(4);
        let a = z.family(&[vec![0, 1], vec![1], vec![2]]);
        assert_eq!(z.sets(z.subset1(a, 1)), vec![vec![], vec![0]]);
        assert_eq!(z.sets(z.subset0(a, 1)), vec![vec![2]]);
        let c = z.change(a, 3);
        assert_eq!(z.sets(c), vec![vec![0, 1, 3], vec![1, 3], vec![2, 3]]);
    }

    #[test]
    fn abstract_var_merges() {
        let z = ZddManager::new(4);
        let a = z.family(&[vec![0, 1], vec![1], vec![0]]);
        let r = z.abstract_var(a, 0);
        // {1} appears from both {0,1} and {1}; {} from {0}.
        assert_eq!(z.sets(r), vec![vec![], vec![1]]);
    }

    #[test]
    fn encode_tuple_sets_msb_first() {
        let z = ZddManager::new(8);
        let bits = [0u32, 1, 2, 3];
        let t = z.encode_tuple(&[(&bits, 0b1010)]);
        assert_eq!(z.sets(t), vec![vec![0, 2]]);
    }

    #[test]
    fn empty_family_identities() {
        let z = ZddManager::new(4);
        let a = z.family(&[vec![0], vec![1]]);
        assert_eq!(z.union(a, ZddId::EMPTY), a);
        assert_eq!(z.intersect(a, ZddId::EMPTY), ZddId::EMPTY);
        assert_eq!(z.diff(ZddId::EMPTY, a), ZddId::EMPTY);
    }

    #[test]
    fn hash_consing_dedups() {
        let z = ZddManager::new(4);
        let a = z.singleton(&[1, 3]);
        let b = z.singleton(&[3, 1]);
        assert_eq!(a, b);
    }
}
