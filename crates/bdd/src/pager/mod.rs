//! Disk-backed node pager: a file manager over fixed-size blocks of
//! snapshot-encoded nodes plus a buffer pool with pin/unpin and a clock
//! (second-chance) replacement policy.
//!
//! A paged arena stores its nodes **only** in buffer-pool frames; cold
//! blocks live in a single scratch page file (one fixed
//! [`BLOCK_BYTES`](block::BLOCK_BYTES) slot per block) and are faulted
//! back in on access. The resident-frame budget is the paging analogue of
//! the governor's node budget: at most `budget` frames are resident at
//! once (`0` = unbounded), so an analysis whose live arena exceeds RAM
//! completes by trading faults for capacity.
//!
//! ## Pin protocol
//!
//! Every kernel access copies nodes out of a frame while holding the
//! pager lock, so no reference into a frame ever outlives a call —
//! eviction can therefore never invalidate an in-flight read. Pins exist
//! at the *policy* level: a pinned frame is skipped by the clock hand, so
//! frames that are in every recursion stay wired down. The kernel
//! permanently pins block 0 (the terminals and the hottest low node ids);
//! hosts and tests can pin further blocks through [`Pager::pin`].
//!
//! ## Eviction and failure
//!
//! Eviction always writes the victim block (so `evictions <=
//! page_writes` holds by construction; writes are counted on attempt,
//! evictions only on success). A failed eviction write — an I/O error or
//! an injected [`PagerFaults`] kill — aborts the eviction non-fatally:
//! the victim stays resident (temporarily over budget) and the error is
//! parked in a sticky slot that the kernel surfaces as a typed
//! `BddError::Page` at the next governed operation. Fault-in *read*
//! failures (a torn or corrupted block) are returned to the caller; the
//! kernel's fallible entry points propagate them typed, and
//! `jedd-store` converts them into `StoreError` via `From<PageError>`.

mod block;

pub use block::{
    block_error_kind, decode_block, encode_block, BlockEntry, BlockError, BLOCK_BYTES,
    BLOCK_NODES, ENTRY_BYTES, HEADER_BYTES,
};

use crate::node::Node;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use jedd_sync::atomic::{AtomicU64, Ordering};

/// Why a pager operation failed. Unlike the kernel's `Copy` error type
/// this carries the full context (paths, the underlying I/O error); the
/// kernel parks it in a sticky slot retrievable through
/// `BddManager::take_page_error` and reports the compact
/// `BddError::Page` form from governed operations.
#[derive(Debug)]
pub enum PageError {
    /// An operating-system I/O failure.
    Io {
        /// What the pager was doing (`"create"`, `"read"`, `"write"`, …).
        op: &'static str,
        /// The block involved (0 for file-level operations).
        block: u32,
        /// The page file (or directory) involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// A block read back from disk failed to decode — a torn page, a bit
    /// flip, or a misdirected write.
    Corrupt {
        /// The block that failed to decode.
        block: u32,
        /// The page file.
        path: PathBuf,
        /// The decode failure class.
        kind: BlockError,
    },
    /// An injected crash point fired (see [`PagerFaults`]).
    Killed {
        /// Which pager operation was killed.
        at: &'static str,
        /// The block being written when the kill fired.
        block: u32,
    },
}

impl PageError {
    /// The block this error is about.
    pub fn block(&self) -> u32 {
        match self {
            PageError::Io { block, .. }
            | PageError::Corrupt { block, .. }
            | PageError::Killed { block, .. } => *block,
        }
    }

    /// A stable short tag naming the failure class.
    pub fn kind(&self) -> &'static str {
        match self {
            PageError::Io { .. } => "io",
            PageError::Corrupt { kind, .. } => block_error_kind(kind),
            PageError::Killed { .. } => "killed",
        }
    }
}

impl fmt::Display for PageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageError::Io { op, block, path, source } => {
                write!(f, "page {op} failed for block {block} of {}: {source}", path.display())
            }
            PageError::Corrupt { block, path, kind } => {
                write!(f, "corrupt page block {block} in {}: {kind}", path.display())
            }
            PageError::Killed { at, block } => {
                write!(f, "injected kill during {at} of block {block}")
            }
        }
    }
}

impl std::error::Error for PageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PageError::Io { source, .. } => Some(source),
            PageError::Corrupt { kind, .. } => Some(kind),
            PageError::Killed { .. } => None,
        }
    }
}

/// Deterministic crash injection for the pager, mirroring
/// `jedd_store::StoreFaults`: the `at`-th block write (1-based, counted
/// from the moment the plan is installed) writes only a prefix of the
/// block — a torn page — and then dies with [`PageError::Killed`].
#[derive(Clone, Copy, Debug, Default)]
pub struct PagerFaults {
    kill_write: Option<(u64, u64)>,
}

impl PagerFaults {
    /// Kills the `at`-th block write after `after_bytes` bytes land.
    pub fn kill_write(at: u64, after_bytes: u64) -> PagerFaults {
        PagerFaults {
            kill_write: Some((at, after_bytes)),
        }
    }
}

/// Paging counters, merged into `KernelStats` for paged managers. All
/// counters are monotone; `max_resident` is a high-water gauge.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PageStats {
    /// Block fault-ins that had to read the page file. Equal to
    /// `page_reads` by construction (fresh blocks are born resident).
    pub page_faults: u64,
    /// Blocks read from the page file.
    pub page_reads: u64,
    /// Block writes attempted (eviction always writes the victim).
    pub page_writes: u64,
    /// Successful evictions. `evictions <= page_writes` always.
    pub evictions: u64,
    /// High-water mark of simultaneously resident frames.
    pub max_resident: u64,
}

struct Frame {
    /// The valid node slots of this block (the tail block is partial).
    nodes: Vec<Node>,
    pins: u32,
    referenced: bool,
}

enum Slot {
    Resident(Frame),
    OnDisk,
}

static PAGER_SEQ: AtomicU64 = AtomicU64::new(0);

/// The buffer pool: a page table over block slots, a clock hand, and the
/// backing page file. One pager backs one arena; the page file is
/// scratch state (checkpoints are the durable story) and is removed on
/// drop, along with the scratch directory when the pager created it.
pub struct Pager {
    file: File,
    path: PathBuf,
    owned_dir: Option<PathBuf>,
    budget: usize,
    slots: Vec<Slot>,
    resident: usize,
    hand: usize,
    len: usize,
    stats: PageStats,
    faults: PagerFaults,
    sticky: Option<PageError>,
}

fn entry_of(n: &Node) -> BlockEntry {
    BlockEntry {
        level: n.level,
        bot: n.bot,
        low: n.low,
        high: n.high,
        next: n.next,
        ext_refs: n.ext_refs,
        mark: n.mark,
    }
}

fn node_of(e: &BlockEntry) -> Node {
    Node {
        level: e.level,
        bot: e.bot,
        low: e.low,
        high: e.high,
        next: e.next,
        ext_refs: e.ext_refs,
        mark: e.mark,
    }
}

impl Pager {
    /// Opens a fresh pager with a resident budget of `budget` frames
    /// (`0` = unbounded). The page file lives under `dir` when given,
    /// else under `JEDD_PAGE_DIR`, else in a scratch directory beneath
    /// the system temp dir (removed on drop).
    ///
    /// # Errors
    ///
    /// [`PageError::Io`] when the directory or page file cannot be
    /// created.
    pub fn new(budget: usize, dir: Option<&Path>) -> Result<Pager, PageError> {
        let seq = PAGER_SEQ.fetch_add(1, Ordering::Relaxed);
        let pid = std::process::id();
        let mut owned_dir = None;
        let dir_path = match dir {
            Some(d) => d.to_path_buf(),
            None => match std::env::var("JEDD_PAGE_DIR") {
                Ok(v) if !v.is_empty() => PathBuf::from(v),
                _ => {
                    let d = std::env::temp_dir().join(format!("jedd-pager-{pid}-{seq}"));
                    owned_dir = Some(d.clone());
                    d
                }
            },
        };
        fn io_err(op: &'static str, path: &Path) -> impl FnOnce(io::Error) -> PageError {
            let path = path.to_path_buf();
            move |source| PageError::Io {
                op,
                block: 0,
                path,
                source,
            }
        }
        fs::create_dir_all(&dir_path).map_err(io_err("create-dir", &dir_path))?;
        let path = dir_path.join(format!("nodes-{pid}-{seq}.jpgb"));
        let file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(&path)
            .map_err(io_err("create", &path))?;
        Ok(Pager {
            file,
            path,
            owned_dir,
            budget,
            slots: Vec::new(),
            resident: 0,
            hand: 0,
            len: 0,
            stats: PageStats::default(),
            faults: PagerFaults::default(),
            sticky: None,
        })
    }

    /// The number of node slots the pager holds (resident or on disk).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the pager holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The number of blocks (resident or on disk).
    pub fn blocks(&self) -> usize {
        self.slots.len()
    }

    /// The number of currently resident frames.
    pub fn resident_frames(&self) -> usize {
        self.resident
    }

    /// The resident-frame budget (`0` = unbounded).
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Whether `block` is currently resident.
    pub fn is_resident(&self, block: usize) -> bool {
        matches!(self.slots.get(block), Some(Slot::Resident(_)))
    }

    /// The backing page file.
    pub fn file_path(&self) -> &Path {
        &self.path
    }

    /// A snapshot of the paging counters.
    pub fn stats(&self) -> PageStats {
        self.stats
    }

    /// Installs (or clears) the crash-injection plan.
    pub fn set_faults(&mut self, faults: PagerFaults) {
        // Kill ordinals are relative to installation: rebase them onto
        // the absolute `page_writes` counter so "the 3rd write from now"
        // works no matter how much paging history precedes the plan.
        self.faults = PagerFaults {
            kill_write: faults
                .kill_write
                .map(|(at, bytes)| (at + self.stats.page_writes, bytes)),
        };
    }

    /// Takes the sticky error parked by a failed eviction, if any.
    pub fn take_sticky(&mut self) -> Option<PageError> {
        self.sticky.take()
    }

    /// Parks `e` in the sticky slot (first error wins) so its full
    /// context stays retrievable after a compact form is reported.
    pub(crate) fn park_sticky(&mut self, e: PageError) {
        self.sticky.get_or_insert(e);
    }

    /// The `(block, kind)` summary of the sticky error, without clearing
    /// it.
    pub fn sticky_brief(&self) -> Option<(u32, &'static str)> {
        self.sticky.as_ref().map(|e| (e.block(), e.kind()))
    }

    /// Faults `block` in (if needed) and wires it down: a pinned frame is
    /// never chosen for eviction. Pins nest.
    ///
    /// # Errors
    ///
    /// Propagates fault-in failures.
    pub fn pin(&mut self, block: usize) -> Result<(), PageError> {
        self.ensure_resident(block)?;
        if let Slot::Resident(f) = &mut self.slots[block] {
            f.pins += 1;
        }
        Ok(())
    }

    /// Releases one pin on `block`. Unpinning below zero is a no-op.
    pub fn unpin(&mut self, block: usize) {
        if let Some(Slot::Resident(f)) = self.slots.get_mut(block) {
            f.pins = f.pins.saturating_sub(1);
        }
    }

    /// The pin count of `block` (0 when absent or on disk).
    pub fn pin_count(&self, block: usize) -> u32 {
        match self.slots.get(block) {
            Some(Slot::Resident(f)) => f.pins,
            _ => 0,
        }
    }

    /// Reads node slot `id`, faulting its block in if cold.
    ///
    /// # Errors
    ///
    /// Fault-in failures: I/O errors and corrupt (torn) blocks.
    pub fn entry(&mut self, id: usize) -> Result<BlockEntry, PageError> {
        self.node(id).map(|n| entry_of(&n))
    }

    /// Appends a node slot, growing the tail block (or starting a new
    /// one), and returns its id.
    ///
    /// # Errors
    ///
    /// Fault-in failures when the tail block is cold.
    pub fn push_entry(&mut self, e: BlockEntry) -> Result<u32, PageError> {
        self.append(node_of(&e))
    }

    pub(crate) fn node(&mut self, id: usize) -> Result<Node, PageError> {
        debug_assert!(id < self.len, "node id {id} out of range {}", self.len);
        let block = id / BLOCK_NODES;
        self.ensure_resident(block)?;
        match &self.slots[block] {
            Slot::Resident(f) => Ok(f.nodes[id % BLOCK_NODES]),
            Slot::OnDisk => unreachable!("ensure_resident loaded the block"),
        }
    }

    pub(crate) fn with_node_mut<R>(
        &mut self,
        id: usize,
        f: impl FnOnce(&mut Node) -> R,
    ) -> Result<R, PageError> {
        debug_assert!(id < self.len, "node id {id} out of range {}", self.len);
        let block = id / BLOCK_NODES;
        self.ensure_resident(block)?;
        match &mut self.slots[block] {
            Slot::Resident(frame) => Ok(f(&mut frame.nodes[id % BLOCK_NODES])),
            Slot::OnDisk => unreachable!("ensure_resident loaded the block"),
        }
    }

    pub(crate) fn append(&mut self, n: Node) -> Result<u32, PageError> {
        let id = self.len;
        let block = id / BLOCK_NODES;
        if id.is_multiple_of(BLOCK_NODES) {
            // A fresh tail block is born resident (never read from disk,
            // so it counts as neither a fault nor a read).
            self.make_room();
            self.slots.push(Slot::Resident(Frame {
                nodes: Vec::with_capacity(BLOCK_NODES),
                pins: if block == 0 { 1 } else { 0 },
                referenced: true,
            }));
            self.resident += 1;
            self.note_resident();
        } else {
            self.ensure_resident(block)?;
        }
        match &mut self.slots[block] {
            Slot::Resident(frame) => frame.nodes.push(n),
            Slot::OnDisk => unreachable!("tail block is resident"),
        }
        self.len += 1;
        Ok(id as u32)
    }

    /// Walks node slots `from..len`, faulting blocks in sequentially and
    /// handing each slot to `f` mutably — the bulk-scan path used by GC
    /// and unique-table rehashing.
    pub(crate) fn scan_nodes(
        &mut self,
        from: usize,
        f: &mut dyn FnMut(usize, &mut Node),
    ) -> Result<(), PageError> {
        let mut id = from;
        while id < self.len {
            let block = id / BLOCK_NODES;
            self.ensure_resident(block)?;
            let end = ((block + 1) * BLOCK_NODES).min(self.len);
            match &mut self.slots[block] {
                Slot::Resident(frame) => {
                    for i in id..end {
                        f(i, &mut frame.nodes[i - block * BLOCK_NODES]);
                    }
                }
                Slot::OnDisk => unreachable!("ensure_resident loaded the block"),
            }
            id = end;
        }
        Ok(())
    }

    fn note_resident(&mut self) {
        self.stats.max_resident = self.stats.max_resident.max(self.resident as u64);
    }

    fn ensure_resident(&mut self, block: usize) -> Result<(), PageError> {
        if let Slot::Resident(f) = &mut self.slots[block] {
            f.referenced = true;
            return Ok(());
        }
        self.make_room();
        let offset = block as u64 * BLOCK_BYTES as u64;
        let io_err = |op: &'static str, path: &Path| {
            let path = path.to_path_buf();
            move |source: io::Error| PageError::Io {
                op,
                block: block as u32,
                path,
                source,
            }
        };
        self.file
            .seek(SeekFrom::Start(offset))
            .map_err(io_err("seek", &self.path))?;
        let mut buf = vec![0u8; BLOCK_BYTES];
        self.file
            .read_exact(&mut buf)
            .map_err(io_err("read", &self.path))?;
        let entries = decode_block(block as u32, &buf).map_err(|kind| PageError::Corrupt {
            block: block as u32,
            path: self.path.clone(),
            kind,
        })?;
        let expected = ((block + 1) * BLOCK_NODES).min(self.len) - block * BLOCK_NODES;
        if entries.len() != expected {
            return Err(PageError::Corrupt {
                block: block as u32,
                path: self.path.clone(),
                kind: BlockError::BadLength((entries.len() * ENTRY_BYTES) as u32),
            });
        }
        self.stats.page_faults += 1;
        self.stats.page_reads += 1;
        self.slots[block] = Slot::Resident(Frame {
            nodes: entries.iter().map(node_of).collect(),
            pins: 0,
            referenced: true,
        });
        self.resident += 1;
        self.note_resident();
        Ok(())
    }

    /// Evicts until the resident count is below the budget. Eviction
    /// write failures park a sticky error and leave the victim resident
    /// (over budget) so the access that triggered paging still succeeds.
    fn make_room(&mut self) {
        if self.budget == 0 {
            return;
        }
        while self.resident >= self.budget {
            match self.evict_one() {
                Ok(true) => {}
                // Everything pinned: allow the pool over budget.
                Ok(false) => break,
                Err(e) => {
                    self.sticky.get_or_insert(e);
                    break;
                }
            }
        }
    }

    /// One clock (second-chance) sweep step: skip pinned frames, clear
    /// the reference bit on referenced frames, evict the first
    /// unreferenced unpinned frame. Two full revolutions without a
    /// victim means everything is pinned.
    fn evict_one(&mut self) -> Result<bool, PageError> {
        let n = self.slots.len();
        if n == 0 {
            return Ok(false);
        }
        let mut scanned = 0;
        while scanned < 2 * n {
            let i = self.hand;
            self.hand = (self.hand + 1) % n;
            scanned += 1;
            let victim = match &mut self.slots[i] {
                Slot::Resident(f) if f.pins == 0 => {
                    if f.referenced {
                        f.referenced = false;
                        false
                    } else {
                        true
                    }
                }
                _ => false,
            };
            if victim {
                self.write_block(i)?;
                self.slots[i] = Slot::OnDisk;
                self.resident -= 1;
                self.stats.evictions += 1;
                return Ok(true);
            }
        }
        Ok(false)
    }

    fn write_block(&mut self, block: usize) -> Result<(), PageError> {
        let entries: Vec<BlockEntry> = match &self.slots[block] {
            Slot::Resident(f) => f.nodes.iter().map(entry_of).collect(),
            Slot::OnDisk => unreachable!("only resident frames are written"),
        };
        let bytes = encode_block(block as u32, &entries);
        let offset = block as u64 * BLOCK_BYTES as u64;
        self.stats.page_writes += 1;
        let io_err = |op: &'static str, path: &Path| {
            let path = path.to_path_buf();
            move |source: io::Error| PageError::Io {
                op,
                block: block as u32,
                path,
                source,
            }
        };
        self.file
            .seek(SeekFrom::Start(offset))
            .map_err(io_err("seek", &self.path))?;
        if let Some((at, after_bytes)) = self.faults.kill_write {
            if self.stats.page_writes == at {
                // Tear the page: land a prefix, then die.
                let torn = (after_bytes as usize).min(bytes.len());
                let _ = self.file.write_all(&bytes[..torn]);
                return Err(PageError::Killed {
                    at: "page-write",
                    block: block as u32,
                });
            }
        }
        self.file
            .write_all(&bytes)
            .map_err(io_err("write", &self.path))?;
        Ok(())
    }
}

impl Drop for Pager {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
        if let Some(dir) = &self.owned_dir {
            let _ = fs::remove_dir_all(dir);
        }
    }
}
