//! On-disk block format for the node pager.
//!
//! A block holds up to [`BLOCK_NODES`] arena slots in a fixed-size disk
//! frame, so block `b` always lives at byte offset `b * BLOCK_BYTES` of
//! the page file. The per-node payload is the `jedd-store` snapshot
//! triple (`level`/`low`/`high`, see `jedd_store::snapshot`) extended
//! with the in-arena bookkeeping words the snapshot format strips —
//! `bot` (chain interval), `next` (unique-table chain) and
//! `ext_refs`+`mark` (GC state) — so unique-table chains and collection
//! marks survive eviction mid-operation and a paged arena remains an
//! incremental snapshot of itself. The header frames the payload with the
//! same CRC32 the snapshot and log formats use, so a torn page write is a
//! typed decode error, never a silently wrong node.
//!
//! Layout (all little-endian `u32`):
//!
//! ```text
//! magic "JPGB" | version | block index | payload length | crc32(payload)
//! payload: one 24-byte entry per slot (6 words, see above)
//! ```

use crate::crc32::crc32;
use std::fmt;

/// Arena slots per block. Block `b` holds node ids
/// `b * BLOCK_NODES .. (b + 1) * BLOCK_NODES`.
pub const BLOCK_NODES: usize = 256;

/// Encoded bytes per node entry (six little-endian `u32` words).
pub const ENTRY_BYTES: usize = 24;

/// Header bytes: magic, version, block index, payload length, CRC32.
pub const HEADER_BYTES: usize = 20;

/// Fixed on-disk frame size of one block.
pub const BLOCK_BYTES: usize = HEADER_BYTES + BLOCK_NODES * ENTRY_BYTES;

const MAGIC: u32 = u32::from_le_bytes(*b"JPGB");
const VERSION: u32 = 1;

/// The `mark` GC bit is packed into the high bit of the `ext_refs` word;
/// external reference counts never approach 2^31.
const MARK_BIT: u32 = 1 << 31;

/// One decoded node slot: the snapshot triple plus bookkeeping words.
///
/// This is the public mirror of the kernel's internal `Node` struct, so
/// codec property tests can build batches without access to kernel
/// internals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockEntry {
    /// Decision level (top of the chain interval), or a terminal/free
    /// sentinel.
    pub level: u32,
    /// Bottom of the chain interval (`== level` for plain nodes).
    pub bot: u32,
    /// Low child id (or free-list link for freed slots).
    pub low: u32,
    /// High child id.
    pub high: u32,
    /// Unique-table chain link.
    pub next: u32,
    /// External reference count.
    pub ext_refs: u32,
    /// Mark-and-sweep GC bit.
    pub mark: bool,
}

/// Why a block failed to decode. Every corruption class is a distinct
/// typed case so the pager (and through it `jedd-store`) can report what
/// went wrong without guessing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockError {
    /// The magic word is not `JPGB`.
    BadMagic,
    /// The version word names a format this build does not read.
    BadVersion(u32),
    /// The block carries another block's index (a misdirected write).
    WrongBlock {
        /// The index the reader asked for.
        expected: u32,
        /// The index stored in the header.
        found: u32,
    },
    /// The payload-length word is impossible (not a whole number of
    /// entries, or more entries than a block holds).
    BadLength(u32),
    /// The payload checksum does not match the header.
    ChecksumMismatch,
    /// Fewer bytes than the header (or its payload length) promises.
    Truncated {
        /// Bytes the frame needs.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
}

impl fmt::Display for BlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockError::BadMagic => write!(f, "bad block magic"),
            BlockError::BadVersion(v) => write!(f, "unsupported block version {v}"),
            BlockError::WrongBlock { expected, found } => {
                write!(f, "block index mismatch: expected {expected}, found {found}")
            }
            BlockError::BadLength(n) => write!(f, "impossible payload length {n}"),
            BlockError::ChecksumMismatch => write!(f, "block checksum mismatch"),
            BlockError::Truncated { expected, actual } => {
                write!(f, "truncated block: need {expected} bytes, have {actual}")
            }
        }
    }
}

impl std::error::Error for BlockError {}

/// A stable short tag for a [`BlockError`], used by the kernel's `Copy`
/// error type.
pub fn block_error_kind(e: &BlockError) -> &'static str {
    match e {
        BlockError::BadMagic => "bad-magic",
        BlockError::BadVersion(_) => "bad-version",
        BlockError::WrongBlock { .. } => "wrong-block",
        BlockError::BadLength(_) => "bad-length",
        BlockError::ChecksumMismatch => "checksum",
        BlockError::Truncated { .. } => "truncated",
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
}

/// Encodes `entries` as block `index`, padded to the fixed
/// [`BLOCK_BYTES`] frame so every block occupies one file slot.
///
/// # Panics
///
/// Panics if `entries` holds more than [`BLOCK_NODES`] slots or a mark
/// bit collides with an impossible reference count (debug builds).
pub fn encode_block(index: u32, entries: &[BlockEntry]) -> Vec<u8> {
    assert!(entries.len() <= BLOCK_NODES, "block overflow");
    let mut payload = Vec::with_capacity(entries.len() * ENTRY_BYTES);
    for e in entries {
        debug_assert!(e.ext_refs & MARK_BIT == 0, "ext_refs overflow into mark bit");
        put_u32(&mut payload, e.level);
        put_u32(&mut payload, e.bot);
        put_u32(&mut payload, e.low);
        put_u32(&mut payload, e.high);
        put_u32(&mut payload, e.next);
        put_u32(&mut payload, e.ext_refs | if e.mark { MARK_BIT } else { 0 });
    }
    let mut out = Vec::with_capacity(BLOCK_BYTES);
    put_u32(&mut out, MAGIC);
    put_u32(&mut out, VERSION);
    put_u32(&mut out, index);
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    out.resize(BLOCK_BYTES, 0);
    out
}

/// Decodes the block frame read back for `index`, returning its entries.
///
/// # Errors
///
/// A typed [`BlockError`] for every corruption class: wrong magic or
/// version, a misdirected block index, an impossible length, a checksum
/// mismatch, or a truncated frame.
pub fn decode_block(index: u32, bytes: &[u8]) -> Result<Vec<BlockEntry>, BlockError> {
    if bytes.len() < HEADER_BYTES {
        return Err(BlockError::Truncated {
            expected: HEADER_BYTES,
            actual: bytes.len(),
        });
    }
    if get_u32(bytes, 0) != MAGIC {
        return Err(BlockError::BadMagic);
    }
    let version = get_u32(bytes, 4);
    if version != VERSION {
        return Err(BlockError::BadVersion(version));
    }
    let found = get_u32(bytes, 8);
    if found != index {
        return Err(BlockError::WrongBlock {
            expected: index,
            found,
        });
    }
    let len = get_u32(bytes, 12);
    if !(len as usize).is_multiple_of(ENTRY_BYTES) || len as usize > BLOCK_NODES * ENTRY_BYTES {
        return Err(BlockError::BadLength(len));
    }
    let want = HEADER_BYTES + len as usize;
    if bytes.len() < want {
        return Err(BlockError::Truncated {
            expected: want,
            actual: bytes.len(),
        });
    }
    let payload = &bytes[HEADER_BYTES..want];
    if crc32(payload) != get_u32(bytes, 16) {
        return Err(BlockError::ChecksumMismatch);
    }
    let mut entries = Vec::with_capacity(payload.len() / ENTRY_BYTES);
    for chunk in payload.chunks_exact(ENTRY_BYTES) {
        let refs_word = get_u32(chunk, 20);
        entries.push(BlockEntry {
            level: get_u32(chunk, 0),
            bot: get_u32(chunk, 4),
            low: get_u32(chunk, 8),
            high: get_u32(chunk, 12),
            next: get_u32(chunk, 16),
            ext_refs: refs_word & !MARK_BIT,
            mark: refs_word & MARK_BIT != 0,
        });
    }
    Ok(entries)
}
