//! CRC32 (IEEE 802.3 polynomial), table-driven.
//!
//! The pager's block format and `jedd-store`'s snapshot and log formats
//! frame every payload with this checksum so torn writes and bit flips
//! are detected before any bytes are interpreted. It lives in `jedd-bdd`
//! (the workspace's leaf crate) so both the pager and the store share one
//! implementation; `jedd-store` re-exports it. Implemented in-tree
//! because the workspace builds fully offline.

/// Reflected IEEE polynomial, the one used by zlib/PNG/Ethernet.
const POLY: u32 = 0xedb8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// The CRC32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xe8b7_be43);
    }

    #[test]
    fn detects_single_byte_flips() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            let mut flipped = data.clone();
            flipped[i] ^= 0x40;
            assert_ne!(crc32(&flipped), base, "flip at {i} undetected");
        }
    }
}
