//! Node identifiers, node layout and variable permutations.

use crate::budget::{BddError, PermutationFlaw};
use std::fmt;

/// Index of a node in the manager's arena.
///
/// The two terminal nodes have fixed indices: [`NodeId::FALSE`] is `0` and
/// [`NodeId::TRUE`] is `1`. All other identifiers refer to internal decision
/// nodes. A `NodeId` is only meaningful relative to the manager that issued
/// it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The terminal node representing the constant `false` (the empty set).
    pub const FALSE: NodeId = NodeId(0);
    /// The terminal node representing the constant `true` (the full set).
    pub const TRUE: NodeId = NodeId(1);

    /// Returns `true` if this is one of the two terminal nodes.
    #[inline]
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }

    /// Returns `true` if this is the `false` terminal.
    #[inline]
    pub fn is_false(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if this is the `true` terminal.
    #[inline]
    pub fn is_true(self) -> bool {
        self.0 == 1
    }

    /// The raw arena index. Exposed for diagnostics and tests.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            NodeId::FALSE => write!(f, "NodeId(FALSE)"),
            NodeId::TRUE => write!(f, "NodeId(TRUE)"),
            NodeId(n) => write!(f, "NodeId({n})"),
        }
    }
}

/// Level used to mark terminal nodes and free-list entries.
pub(crate) const TERMINAL_LEVEL: u32 = u32::MAX;
/// Level marker for nodes on the free list.
pub(crate) const FREE_LEVEL: u32 = u32::MAX - 1;
/// Sentinel for "no node" in intrusive lists.
pub(crate) const NIL: u32 = u32::MAX;

/// A single decision node stored in the arena.
///
/// Nodes are hash-consed: for a given `(level, bot, low, high)` quadruple at
/// most one live node exists. The `next` field chains nodes within a
/// unique-table bucket, and `ext_refs` counts external [`crate::Bdd`]
/// handles pinning the node (internal sharing is not counted; garbage
/// collection marks from the externally referenced roots).
///
/// `bot` is the chain interval's bottom level (Bryant's chain reduction,
/// TACAS 2018). A plain reduced node has `bot == level`. In a chain-mode
/// manager a node with `bot > level` encodes the OR-chain
/// `¬x_level ∧ … ∧ ¬x_{bot-1} ∧ (¬x_bot·low + x_bot·high)` — a CBDD
/// chain node. Managers with chain reduction off never create `bot >
/// level` nodes, so plain BDDs are exactly the `bot == level` degenerate
/// case and existing node ids are unchanged.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Node {
    pub level: u32,
    pub bot: u32,
    pub low: u32,
    pub high: u32,
    pub next: u32,
    pub ext_refs: u32,
    pub mark: bool,
}

impl Node {
    pub(crate) fn terminal() -> Node {
        Node {
            level: TERMINAL_LEVEL,
            bot: TERMINAL_LEVEL,
            low: NIL,
            high: NIL,
            next: NIL,
            ext_refs: 1,
            mark: false,
        }
    }
}

/// A mapping of BDD variables (levels) to new variables, used by
/// [`crate::Bdd::replace`].
///
/// Unmapped variables stay put. The permutation must be injective on the
/// variables it moves; this is validated by [`Permutation::from_pairs`] and
/// checked again (for the support of the operand) at replace time.
///
/// # Examples
///
/// ```
/// use jedd_bdd::{BddManager, Permutation};
/// let mgr = BddManager::new(4);
/// let f = mgr.var(0).and(&mgr.var(1));
/// let perm = Permutation::from_pairs(&[(0, 2), (1, 3)]);
/// let g = f.replace(&perm);
/// assert_eq!(g, mgr.var(2).and(&mgr.var(3)));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Permutation {
    /// Sorted list of `(from, to)` pairs with `from != to`.
    pairs: Vec<(u32, u32)>,
}

impl Permutation {
    /// Creates the identity permutation.
    pub fn identity() -> Permutation {
        Permutation::default()
    }

    /// Builds a permutation from `(from, to)` variable pairs.
    ///
    /// Pairs with `from == to` are dropped. The permutation may exchange
    /// variables (e.g. `[(0, 1), (1, 0)]`).
    ///
    /// # Panics
    ///
    /// Panics if the same `from` variable is mapped twice, or two variables
    /// map to the same `to` variable. Use
    /// [`Permutation::try_from_pairs`] to handle malformed pairs without
    /// panicking.
    pub fn from_pairs(pairs: &[(u32, u32)]) -> Permutation {
        match Permutation::try_from_pairs(pairs) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`Permutation::from_pairs`].
    ///
    /// # Errors
    ///
    /// Returns [`BddError::InvalidPermutation`] if the same `from` variable
    /// is mapped twice ([`PermutationFlaw::DuplicateSource`]) or two
    /// variables map to the same `to` variable
    /// ([`PermutationFlaw::DuplicateTarget`]).
    pub fn try_from_pairs(pairs: &[(u32, u32)]) -> Result<Permutation, BddError> {
        let mut kept: Vec<(u32, u32)> = pairs.iter().copied().filter(|(a, b)| a != b).collect();
        kept.sort_unstable();
        for w in kept.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(BddError::InvalidPermutation {
                    var: w[0].0,
                    kind: PermutationFlaw::DuplicateSource,
                });
            }
        }
        let mut targets: Vec<u32> = kept.iter().map(|&(_, t)| t).collect();
        targets.sort_unstable();
        for w in targets.windows(2) {
            if w[0] == w[1] {
                return Err(BddError::InvalidPermutation {
                    var: w[0],
                    kind: PermutationFlaw::DuplicateTarget,
                });
            }
        }
        Ok(Permutation { pairs: kept })
    }

    /// Returns the image of `var` under the permutation.
    #[inline]
    pub fn apply(&self, var: u32) -> u32 {
        match self.pairs.binary_search_by_key(&var, |&(f, _)| f) {
            Ok(i) => self.pairs[i].1,
            Err(_) => var,
        }
    }

    /// Returns `true` if the permutation moves no variable.
    pub fn is_identity(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Returns `true` if every moved variable maps to a larger-or-equal
    /// variable order position monotonically, i.e. the relative order of the
    /// support is preserved. Order-preserving permutations admit a cheaper
    /// single-pass rewrite.
    pub fn is_order_preserving(&self) -> bool {
        // `pairs` is sorted by `from`; the permutation is order preserving
        // when the `to` values are strictly increasing as well, and no
        // unmoved variable is crossed by a moved one. The latter is hard to
        // check without the support, so we only report the conservative case
        // where each variable maps to itself-shifted within disjoint ranges.
        // Used as a heuristic only; correctness never depends on it.
        let mut prev = None;
        for &(_, t) in &self.pairs {
            if let Some(p) = prev {
                if t <= p {
                    return false;
                }
            }
            prev = Some(t);
        }
        true
    }

    /// The explicit `(from, to)` pairs, sorted by `from`.
    pub fn pairs(&self) -> &[(u32, u32)] {
        &self.pairs
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        let inv: Vec<(u32, u32)> = self.pairs.iter().map(|&(f, t)| (t, f)).collect();
        Permutation::from_pairs(&inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_ids() {
        assert!(NodeId::FALSE.is_terminal());
        assert!(NodeId::TRUE.is_terminal());
        assert!(NodeId::FALSE.is_false());
        assert!(NodeId::TRUE.is_true());
        assert!(!NodeId(7).is_terminal());
        assert_eq!(NodeId(7).index(), 7);
    }

    #[test]
    fn debug_formatting_nonempty() {
        assert_eq!(format!("{:?}", NodeId::FALSE), "NodeId(FALSE)");
        assert_eq!(format!("{:?}", NodeId::TRUE), "NodeId(TRUE)");
        assert_eq!(format!("{:?}", NodeId(3)), "NodeId(3)");
    }

    #[test]
    fn permutation_identity() {
        let p = Permutation::identity();
        assert!(p.is_identity());
        assert_eq!(p.apply(5), 5);
        assert_eq!(p.inverse(), p);
    }

    #[test]
    fn permutation_apply_and_inverse() {
        let p = Permutation::from_pairs(&[(0, 3), (3, 0), (1, 2)]);
        assert_eq!(p.apply(0), 3);
        assert_eq!(p.apply(3), 0);
        assert_eq!(p.apply(1), 2);
        assert_eq!(p.apply(2), 2);
        let inv = p.inverse();
        // Round trip holds on the moved variables.
        for v in [0u32, 1, 3] {
            assert_eq!(inv.apply(p.apply(v)), v);
        }
    }

    #[test]
    fn permutation_drops_fixed_points() {
        let p = Permutation::from_pairs(&[(2, 2), (4, 4)]);
        assert!(p.is_identity());
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn permutation_rejects_duplicate_source() {
        let _ = Permutation::from_pairs(&[(0, 1), (0, 2)]);
    }

    #[test]
    #[should_panic(expected = "same target")]
    fn permutation_rejects_duplicate_target() {
        let _ = Permutation::from_pairs(&[(0, 2), (1, 2)]);
    }

    #[test]
    fn try_from_pairs_reports_flaws() {
        assert_eq!(
            Permutation::try_from_pairs(&[(0, 1), (0, 2)]),
            Err(BddError::InvalidPermutation {
                var: 0,
                kind: PermutationFlaw::DuplicateSource
            })
        );
        assert_eq!(
            Permutation::try_from_pairs(&[(0, 2), (1, 2)]),
            Err(BddError::InvalidPermutation {
                var: 2,
                kind: PermutationFlaw::DuplicateTarget
            })
        );
        assert!(Permutation::try_from_pairs(&[(0, 1), (1, 0)]).is_ok());
    }

    #[test]
    fn order_preserving_detection() {
        assert!(Permutation::from_pairs(&[(0, 4), (1, 5)]).is_order_preserving());
        assert!(!Permutation::from_pairs(&[(0, 5), (1, 4)]).is_order_preserving());
    }
}
