//! # jedd-bdd
//!
//! From-scratch reduced ordered binary decision diagram (ROBDD) and
//! zero-suppressed decision diagram (ZDD) kernels, built as the backend
//! substrate for the Jedd relational system (Lhoták & Hendren, PLDI 2004).
//!
//! The BDD kernel provides everything the original Jedd runtime obtained
//! from BuDDy/CUDD through JNI:
//!
//! * hash-consed nodes with a growable unique table and operation cache,
//! * the boolean operations `and`/`or`/`diff`/`xor`/`biimp`/`not`/`ite`,
//! * existential and universal quantification ([`Bdd::exists`],
//!   [`Bdd::forall`]),
//! * the fused relational product [`Bdd::and_exists`] (BuDDy's
//!   `bdd_appex`, used for Jedd's composition operator `<>`),
//! * variable permutation [`Bdd::replace`] (BuDDy `bdd_replace`, CUDD
//!   `SwapVariables`) for moving relations between physical domains,
//! * model counting ([`Bdd::satcount`]) and assignment enumeration for the
//!   relation iterators,
//! * reference-counted external handles with mark-and-sweep garbage
//!   collection (paper §4.2), and
//! * per-level shape statistics (paper §4.3's profiler views).
//!
//! The ZDD kernel ([`ZddManager`]) realises the paper's §4.1 future-work
//! backend for sparse tuple sets.
//!
//! # Examples
//!
//! ```
//! use jedd_bdd::{BddManager, Permutation};
//!
//! let mgr = BddManager::new(4);
//! // A relation over two 2-bit fields: {(1, 2)}.
//! let tuple = mgr.encode_value(&[0, 1], 1).and(&mgr.encode_value(&[2, 3], 2));
//! assert_eq!(tuple.satcount(), 1.0);
//!
//! // Move the first field onto the second field's bits.
//! let moved = tuple
//!     .exists(&mgr.cube(&[2, 3]))
//!     .replace(&Permutation::from_pairs(&[(0, 2), (1, 3)]));
//! assert_eq!(moved, mgr.encode_value(&[2, 3], 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
pub mod batch;
mod budget;
mod count;
pub mod crc32;
mod cube;
mod extras;
mod manager;
mod node;
mod ops;
pub mod pager;
mod par;
mod permute;
mod quant;
mod reorder;
pub mod rng;
mod table;
mod zdd;

pub use batch::{BatchTerm, BddBatch};
pub use budget::{BddError, Budget, CancelToken, FailPlan, PermutationFlaw};
pub use manager::{Bdd, BddManager, ExportedNode};
pub use node::{NodeId, Permutation};
pub use table::{KernelStats, OpCacheStats};
pub use zdd::{ZddId, ZddManager};

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> BddManager {
        BddManager::new(8)
    }

    #[test]
    fn constants() {
        let m = mgr();
        assert!(m.constant_false().is_false());
        assert!(m.constant_true().is_true());
        assert_eq!(m.constant_false().satcount(), 0.0);
        assert_eq!(m.constant_true().satcount(), 256.0);
    }

    #[test]
    fn var_and_nvar() {
        let m = mgr();
        let v = m.var(3);
        let nv = m.nvar(3);
        assert_eq!(v.satcount(), 128.0);
        assert_eq!(v.and(&nv).satcount(), 0.0);
        assert_eq!(v.or(&nv), m.constant_true());
        assert_eq!(v.not(), nv);
    }

    #[test]
    fn and_or_diff_xor_laws() {
        let m = mgr();
        let a = m.var(0).or(&m.var(1));
        let b = m.var(1).or(&m.var(2));
        assert_eq!(a.and(&b), b.and(&a));
        assert_eq!(a.or(&b), b.or(&a));
        assert_eq!(a.diff(&b), a.and(&b.not()));
        assert_eq!(a.xor(&b), a.diff(&b).or(&b.diff(&a)));
        assert_eq!(a.and(&a), a);
        assert_eq!(a.or(&a), a);
        assert_eq!(a.diff(&a).satcount(), 0.0);
    }

    #[test]
    fn de_morgan() {
        let m = mgr();
        let a = m.var(0).and(&m.var(5));
        let b = m.var(2).xor(&m.var(3));
        assert_eq!(a.and(&b).not(), a.not().or(&b.not()));
        assert_eq!(a.or(&b).not(), a.not().and(&b.not()));
    }

    #[test]
    fn ite_equivalences() {
        let m = mgr();
        let f = m.var(0);
        let g = m.var(1);
        let h = m.var(2);
        let ite = f.ite(&g, &h);
        let manual = f.and(&g).or(&f.not().and(&h));
        assert_eq!(ite, manual);
        assert_eq!(f.ite(&m.constant_true(), &m.constant_false()), f);
    }

    #[test]
    fn biimp_and_implies() {
        let m = mgr();
        let a = m.var(1);
        let b = m.var(4);
        assert_eq!(a.biimp(&b), a.and(&b).or(&a.not().and(&b.not())));
        assert_eq!(a.implies(&b), a.not().or(&b));
    }

    #[test]
    fn exists_quantifies() {
        let m = mgr();
        let f = m.var(0).and(&m.var(1));
        let e = f.exists(&m.cube(&[0]));
        assert_eq!(e, m.var(1));
        let e2 = f.exists(&m.cube(&[0, 1]));
        assert!(e2.is_true());
        // exists over a non-support variable is the identity.
        assert_eq!(f.exists(&m.cube(&[7])), f);
    }

    #[test]
    fn forall_quantifies() {
        let m = mgr();
        let f = m.var(0).or(&m.var(1));
        assert_eq!(f.forall(&m.cube(&[0])), m.var(1));
        assert!(m.constant_true().forall(&m.cube(&[0, 1])).is_true());
    }

    #[test]
    fn and_exists_equals_and_then_exists() {
        let m = mgr();
        let f = m.var(0).biimp(&m.var(2));
        let g = m.var(2).biimp(&m.var(4));
        let cube = m.cube(&[2]);
        let fused = f.and_exists(&g, &cube);
        let manual = f.and(&g).exists(&cube);
        assert_eq!(fused, manual);
        // Composition of equality relations is equality.
        assert_eq!(fused, m.var(0).biimp(&m.var(4)));
    }

    #[test]
    fn replace_moves_variables() {
        let m = mgr();
        let f = m.var(0).and(&m.var(1).not());
        let p = Permutation::from_pairs(&[(0, 4), (1, 5)]);
        let g = f.replace(&p);
        assert_eq!(g, m.var(4).and(&m.var(5).not()));
        assert_eq!(g.replace(&p.inverse()), f);
    }

    #[test]
    fn replace_order_reversing() {
        let m = mgr();
        let f = m.var(1).and(&m.var(2).not());
        let p = Permutation::from_pairs(&[(1, 2), (2, 1)]);
        let g = f.replace(&p);
        assert_eq!(g, m.var(2).and(&m.var(1).not()));
    }

    #[test]
    fn replace_identity_is_noop() {
        let m = mgr();
        let f = m.var(3).xor(&m.var(6));
        assert_eq!(f.replace(&Permutation::identity()), f);
    }

    #[test]
    #[should_panic(expected = "same target")]
    fn replace_rejects_collisions() {
        let m = mgr();
        let f = m.var(0).and(&m.var(1));
        let p = Permutation::from_pairs(&[(0, 2), (1, 2)]);
        let _ = f.replace(&p);
    }

    #[test]
    #[should_panic(expected = "same target")]
    fn replace_panics_on_support_collision() {
        let m = mgr();
        let f = m.var(0).and(&m.var(1));
        // Valid as a permutation, but moves v0 onto the unmoved support
        // variable v1 — only replace-time validation can catch this.
        let _ = f.replace(&Permutation::from_pairs(&[(0, 1)]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn replace_panics_on_out_of_range_target() {
        let m = mgr();
        let f = m.var(0);
        let _ = f.replace(&Permutation::from_pairs(&[(0, 100)]));
    }

    #[test]
    fn try_replace_never_panics_on_bad_permutations() {
        let m = mgr();
        let f = m.var(0).and(&m.var(1));
        // Two support variables collide on one target.
        assert_eq!(
            f.try_replace(&Permutation::from_pairs(&[(0, 1)])),
            Err(BddError::InvalidPermutation {
                var: 1,
                kind: PermutationFlaw::DuplicateTarget
            })
        );
        // Target outside the manager's variable range.
        assert_eq!(
            f.try_replace(&Permutation::from_pairs(&[(0, 100)])),
            Err(BddError::InvalidPermutation {
                var: 100,
                kind: PermutationFlaw::OutOfRange
            })
        );
        // A rejected permutation is a caller mistake, not a budget
        // failure, and leaves the manager fully usable.
        assert_eq!(m.kernel_stats().budget_failures, 0);
        let g = f.try_replace(&Permutation::from_pairs(&[(0, 4), (1, 5)])).unwrap();
        assert_eq!(g, m.var(4).and(&m.var(5)));
    }

    #[test]
    fn replace_hits_shared_cache_on_repeat() {
        let m = mgr();
        let f = m.var(0).xor(&m.var(1)).xor(&m.var(2));
        let p = Permutation::from_pairs(&[(0, 4), (1, 5), (2, 6)]);
        let a = f.replace(&p);
        let before = m.kernel_stats().op_cache("replace").unwrap();
        let b = f.replace(&p);
        let after = m.kernel_stats().op_cache("replace").unwrap();
        assert_eq!(a, b);
        assert!(
            after.hits > before.hits,
            "repeated identical replace must hit the shared cache \
             ({before:?} -> {after:?})"
        );
    }

    #[test]
    fn subset_agrees_with_diff_emptiness() {
        let m = mgr();
        let a = m.var(0).and(&m.var(1));
        let b = m.var(0);
        let c = m.var(2).or(&m.var(3));
        for (x, y) in [
            (&a, &b),
            (&b, &a),
            (&a, &c),
            (&c, &a),
            (&a, &a),
            (&b, &c),
        ] {
            assert_eq!(
                x.is_subset(y),
                x.diff(y).is_false(),
                "subset probe must agree with diff-then-empty"
            );
            assert_eq!(x.try_diff_is_empty(y).unwrap(), x.is_subset(y));
        }
        assert!(m.constant_false().is_subset(&a));
        assert!(a.is_subset(&m.constant_true()));
        assert!(!m.constant_true().is_subset(&a));
    }

    #[test]
    fn subset_probe_allocates_no_nodes() {
        let m = mgr();
        let a = m.var(0).xor(&m.var(1)).xor(&m.var(2));
        let b = a.or(&m.var(3).and(&m.var(4)));
        let before = m.kernel_stats().nodes_created;
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        let after = m.kernel_stats().nodes_created;
        assert_eq!(after, before, "subset must not materialise nodes");
    }

    #[test]
    fn subset_hits_shared_cache_on_repeat() {
        let m = mgr();
        let a = m.var(0).xor(&m.var(1)).xor(&m.var(2));
        let b = a.or(&m.var(3));
        assert!(a.is_subset(&b));
        let before = m.kernel_stats().op_cache("subset").unwrap();
        assert!(a.is_subset(&b));
        let after = m.kernel_stats().op_cache("subset").unwrap();
        assert!(
            after.hits > before.hits,
            "repeated identical subset must hit the shared cache \
             ({before:?} -> {after:?})"
        );
    }

    #[test]
    fn subset_is_not_symmetric_in_cache() {
        // Subset is not commutative: probing (a, b) must not poison the
        // cache for (b, a).
        let m = mgr();
        let a = m.var(0);
        let b = m.var(0).or(&m.var(1));
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
    }

    #[test]
    fn replace_rebuild_agrees_with_replace() {
        let m = mgr();
        let f = m.var(0).xor(&m.var(3)).and(&m.var(1).or(&m.var(2)));
        for pairs in [
            vec![(0u32, 4u32), (1, 5), (2, 6), (3, 7)],
            vec![(0, 3), (3, 0)],
            vec![(0, 7), (1, 6), (2, 5), (3, 4)], // order reversing
        ] {
            let p = Permutation::from_pairs(&pairs);
            assert_eq!(
                f.try_replace(&p).unwrap(),
                f.try_replace_rebuild(&p).unwrap(),
                "pairs {pairs:?}"
            );
        }
    }

    #[test]
    fn encode_value_msb_first() {
        let m = mgr();
        let f = m.encode_value(&[0, 1, 2], 0b101);
        let expect = m.var(0).and(&m.nvar(1)).and(&m.var(2));
        assert_eq!(f, expect);
        assert_eq!(f.satcount(), 32.0);
    }

    #[test]
    fn encode_value_zero_and_max() {
        let m = mgr();
        let zero = m.encode_value(&[4, 5], 0);
        assert_eq!(zero, m.nvar(4).and(&m.nvar(5)));
        let max = m.encode_value(&[4, 5], 3);
        assert_eq!(max, m.var(4).and(&m.var(5)));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn encode_value_rejects_overflow() {
        let m = mgr();
        let _ = m.encode_value(&[0, 1], 4);
    }

    #[test]
    fn equal_vectors_counts() {
        let m = mgr();
        let eq = m.equal_vectors(&[0, 1], &[2, 3]);
        // 4 equal pairs * 16 free assignments of v4..v7.
        assert_eq!(eq.satcount(), 64.0);
        for v in 0..4u64 {
            let both = m.encode_value(&[0, 1], v).and(&m.encode_value(&[2, 3], v));
            assert_eq!(both.and(&eq), both);
        }
    }

    #[test]
    fn less_than_bounds() {
        let m = mgr();
        let bits = [0u32, 1, 2];
        for bound in 0..=8u64 {
            let f = m.less_than(&bits, bound);
            let count = f.satcount_over(&bits);
            assert_eq!(count, bound.min(8) as f64, "bound {bound}");
        }
    }

    #[test]
    fn satcount_over_subset() {
        let m = mgr();
        let f = m.encode_value(&[0, 1], 2);
        assert_eq!(f.satcount_over(&[0, 1]), 1.0);
        assert_eq!(f.satcount_over(&[0, 1, 2]), 2.0);
    }

    #[test]
    fn node_count_and_shape() {
        let m = mgr();
        let f = m.var(0).xor(&m.var(1)).xor(&m.var(2));
        assert_eq!(f.node_count(), 1 + 2 + 2);
        let shape = f.shape();
        assert_eq!(shape[0], 1);
        assert_eq!(shape[1], 2);
        assert_eq!(shape[2], 2);
        assert_eq!(shape[3], 0);
    }

    #[test]
    fn support_reports_levels() {
        let m = mgr();
        let f = m.var(1).and(&m.var(6));
        assert_eq!(f.support(), vec![1, 6]);
        assert!(m.constant_true().support().is_empty());
    }

    #[test]
    fn foreach_sat_enumerates_with_wildcards() {
        let m = mgr();
        let f = m.var(0); // v1 unconstrained over vars [0, 1]
        let sats = f.sat_assignments(&[0, 1]);
        assert_eq!(sats, vec![vec![true, false], vec![true, true]]);
    }

    #[test]
    fn foreach_sat_early_stop() {
        let m = mgr();
        let f = m.constant_true();
        let mut n = 0;
        f.foreach_sat(&[0, 1, 2], |_| {
            n += 1;
            n < 3
        });
        assert_eq!(n, 3);
    }

    #[test]
    fn gc_reclaims_dead_nodes() {
        let m = BddManager::new(16);
        let keep = m.var(0).and(&m.var(1));
        {
            let mut junk = m.constant_false();
            for i in 0..14 {
                junk = junk.or(&m.var(i).and(&m.var(i + 1)));
            }
            assert!(m.live_nodes() > keep.node_count() + 2);
        }
        let reclaimed = m.gc();
        assert!(reclaimed > 0, "expected dead nodes to be reclaimed");
        assert_eq!(keep.satcount(), (2f64).powi(14));
        assert_eq!(keep, m.var(0).and(&m.var(1)));
    }

    #[test]
    fn gc_preserves_semantics_under_churn() {
        let m = BddManager::new(12);
        let mut acc = m.constant_false();
        for round in 0..50u64 {
            let bits: Vec<u32> = (0..12).collect();
            let t = m.encode_value(&bits, (round * 37) % 4096);
            acc = acc.or(&t);
            if round % 10 == 9 {
                m.gc();
            }
        }
        assert_eq!(acc.satcount(), 50.0);
    }

    #[test]
    fn kernel_stats_progress() {
        let m = mgr();
        let before = m.kernel_stats();
        let _ = m.var(0).and(&m.var(1));
        let after = m.kernel_stats();
        assert!(after.nodes_created > before.nodes_created);
    }

    #[test]
    #[should_panic(expected = "different managers")]
    fn cross_manager_ops_panic() {
        let a = BddManager::new(4);
        let b = BddManager::new(4);
        let _ = a.var(0).and(&b.var(0));
    }

    #[test]
    fn equality_is_canonical() {
        let m = mgr();
        let f = m.var(0).or(&m.var(1));
        let g = m.var(1).or(&m.var(0));
        assert_eq!(f, g);
        assert_eq!(f.raw_id(), g.raw_id());
    }

    #[test]
    fn add_vars_extends_range() {
        let m = BddManager::new(2);
        assert_eq!(m.num_vars(), 2);
        let r = m.add_vars(3);
        assert_eq!(r, 2..5);
        assert_eq!(m.num_vars(), 5);
        let v = m.var(4);
        assert_eq!(v.satcount(), 16.0);
    }

    #[test]
    fn export_import_round_trips() {
        let m = mgr();
        let f = m.var(0).xor(&m.var(3)).and(&m.var(1).or(&m.var(2)));
        let g = f.or(&m.var(5).and(&m.var(6)));
        let (nodes, roots) = m.export_nodes(&[&f, &g]);
        // Shared structure is exported once.
        assert!(nodes.len() <= f.node_count() + g.node_count());
        // Re-import into the same manager: hash-consing finds the originals.
        let back = m.import_nodes(&nodes, &roots).unwrap();
        assert_eq!(back[0], f);
        assert_eq!(back[1], g);
        // Import into a fresh manager under the same order: same functions,
        // and a second round trip is node-id-identical.
        let m2 = BddManager::new(0);
        m2.add_vars(m.num_vars());
        m2.set_order(&m.current_order()).unwrap();
        let fresh = m2.import_nodes(&nodes, &roots).unwrap();
        assert_eq!(fresh[0].satcount(), f.satcount());
        assert_eq!(fresh[1].satcount(), g.satcount());
        let (nodes2, roots2) = m2.export_nodes(&[&fresh[0], &fresh[1]]);
        assert_eq!(nodes, nodes2);
        assert_eq!(roots, roots2);
    }

    #[test]
    fn export_import_terminal_roots() {
        let m = mgr();
        let (nodes, roots) = m.export_nodes(&[&m.constant_false(), &m.constant_true()]);
        assert!(nodes.is_empty());
        assert_eq!(roots, vec![0, 1]);
        let back = m.import_nodes(&nodes, &roots).unwrap();
        assert!(back[0].is_false());
        assert!(back[1].is_true());
    }

    #[test]
    fn import_rejects_malformed_tables() {
        let m = mgr();
        let f = m.var(0).and(&m.var(1));
        let (nodes, roots) = m.export_nodes(&[&f]);
        let live_before = m.live_nodes();
        // Variable out of range.
        let mut bad = nodes.clone();
        bad[0].var = 99;
        assert!(matches!(
            m.import_nodes(&bad, &roots),
            Err(BddError::InvalidImport { .. })
        ));
        // Forward reference.
        let mut bad = nodes.clone();
        bad[0].low = 100;
        assert!(matches!(
            m.import_nodes(&bad, &roots),
            Err(BddError::InvalidImport { .. })
        ));
        // Unreduced entry.
        let mut bad = nodes.clone();
        bad[0].high = bad[0].low;
        assert!(matches!(
            m.import_nodes(&bad, &roots),
            Err(BddError::InvalidImport { .. })
        ));
        // Root slot out of range.
        assert!(matches!(
            m.import_nodes(&nodes, &[roots[0] + 50]),
            Err(BddError::InvalidImport { .. })
        ));
        // Level-order violation: same variable as parent and child.
        let dup = vec![
            ExportedNode { var: 2, low: 0, high: 1 },
            ExportedNode { var: 2, low: 0, high: 2 },
        ];
        assert!(matches!(
            m.import_nodes(&dup, &[3]),
            Err(BddError::InvalidImport { .. })
        ));
        // Rejected imports leave the arena untouched.
        assert_eq!(m.live_nodes(), live_before);
    }

    #[test]
    fn import_respects_fail_plan() {
        let m = mgr();
        let f = m.var(0).xor(&m.var(4));
        let (nodes, roots) = m.export_nodes(&[&f]);
        let m2 = BddManager::new(8);
        m2.set_fail_plan(Some(FailPlan::fail_alloc_at(1)));
        assert!(m2.import_nodes(&nodes, &roots).is_err());
        m2.set_fail_plan(None);
        let ok = m2.import_nodes(&nodes, &roots).unwrap();
        assert_eq!(ok[0].satcount(), f.satcount());
    }

    #[test]
    fn set_order_requires_empty_arena() {
        let m = BddManager::new(4);
        m.set_order(&[3, 1, 0, 2]).unwrap();
        assert_eq!(m.current_order(), vec![3, 1, 0, 2]);
        assert_eq!(m.level_of_var(3), 0);
        // Not a permutation.
        assert!(m.set_order(&[0, 0, 1, 2]).is_err());
        // Wrong length.
        assert!(m.set_order(&[0, 1, 2]).is_err());
        // Arena no longer empty.
        let _v = m.var(0);
        assert!(m.set_order(&[0, 1, 2, 3]).is_err());
    }

    #[test]
    fn export_import_survives_reordered_manager() {
        // Build under a sifted order, export, and reload into a fresh
        // manager carrying the same order: same functions, same table.
        let m = BddManager::new(6);
        let f = m
            .encode_value(&[0, 2, 4], 5)
            .or(&m.encode_value(&[1, 3, 5], 2));
        m.reorder_sift();
        let (nodes, roots) = m.export_nodes(&[&f]);
        let m2 = BddManager::new(0);
        m2.add_vars(6);
        m2.set_order(&m.current_order()).unwrap();
        let g = m2.import_nodes(&nodes, &roots).unwrap();
        assert_eq!(g[0].satcount(), f.satcount());
        let (nodes2, _) = m2.export_nodes(&[&g[0]]);
        assert_eq!(nodes, nodes2);
    }

    #[test]
    fn zdd_export_import_round_trips() {
        let z = ZddManager::new(8);
        let a = z.family(&[vec![0], vec![1, 2], vec![3, 5, 7]]);
        let b = z.family(&[vec![1, 2], vec![4]]);
        let (nodes, roots) = z.export_nodes(&[a, b]);
        let z2 = ZddManager::new(8);
        let back = z2.import_nodes(&nodes, &roots).unwrap();
        assert_eq!(z2.sets(back[0]), z.sets(a));
        assert_eq!(z2.sets(back[1]), z.sets(b));
        // The ZDD store never garbage-collects, so a fresh import is
        // id-identical on re-export.
        let (nodes2, roots2) = z2.export_nodes(&[back[0], back[1]]);
        assert_eq!(nodes, nodes2);
        assert_eq!(roots, roots2);
        // Terminals round-trip as bare slots.
        let (tn, tr) = z.export_nodes(&[ZddId::EMPTY, ZddId::UNIT]);
        assert!(tn.is_empty());
        assert_eq!(tr, vec![0, 1]);
    }

    #[test]
    fn zdd_import_rejects_malformed_tables() {
        let z = ZddManager::new(4);
        let a = z.family(&[vec![0, 1], vec![2]]);
        let (nodes, roots) = z.export_nodes(&[a]);
        let tweaks: [fn(&mut ExportedNode); 3] = [
            |n| n.var = 99,  // out of range
            |n| n.low = 100, // forward reference
            |n| n.high = 0,  // zero-suppressible
        ];
        for tweak in tweaks {
            let mut bad = nodes.clone();
            tweak(&mut bad[0]);
            assert!(matches!(
                z.import_nodes(&bad, &roots),
                Err(BddError::InvalidImport { .. })
            ));
        }
        assert!(z.import_nodes(&nodes, &[99]).is_err());
    }
}
