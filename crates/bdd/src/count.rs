//! Model counting over a fixed variable universe.

use crate::table::Inner;
use std::collections::HashMap;

impl Inner {
    /// Number of satisfying assignments of `f` over all `num_vars`
    /// variables, as `f64`. Exact for counts below 2^53.
    pub(crate) fn satcount(&self, f: u32) -> f64 {
        if f == 0 {
            return 0.0;
        }
        let n = self.num_vars() as i64;
        if f == 1 {
            return (2f64).powi(n as i32);
        }
        let mut memo: HashMap<u32, f64> = HashMap::new();
        let below = self.satcount_rec(f, &mut memo);
        below * (2f64).powi(self.level(f) as i32)
    }

    /// Counts assignments of the variables strictly below `f`'s level
    /// (inclusive of `f`'s own level).
    fn satcount_rec(&self, f: u32, memo: &mut HashMap<u32, f64>) -> f64 {
        if f == 0 {
            return 0.0;
        }
        if f == 1 {
            return 1.0;
        }
        if let Some(&c) = memo.get(&f) {
            return c;
        }
        // Gaps below the node are measured from the chain bottom: levels
        // inside a chain interval are forced to 0 and contribute factor 1
        // (plain nodes have `bot == level`, the degenerate case).
        let bot = self.bot(f) as i64;
        let (lo, hi) = (self.low(f), self.high(f));
        let level_of = |id: u32| -> i64 {
            if id <= 1 {
                self.num_vars() as i64
            } else {
                self.level(id) as i64
            }
        };
        let cl = self.satcount_rec(lo, memo) * (2f64).powi((level_of(lo) - bot - 1) as i32);
        let ch = self.satcount_rec(hi, memo) * (2f64).powi((level_of(hi) - bot - 1) as i32);
        let c = cl + ch;
        memo.insert(f, c);
        c
    }

    /// Like [`Inner::satcount`] but counting only over the `vars` given
    /// (which must be a superset of the support of `f`); other variables
    /// are treated as absent rather than doubling the count.
    pub(crate) fn satcount_over(&self, f: u32, vars: &[u32]) -> f64 {
        let total = self.satcount(f);
        let unused = self.num_vars() as i32 - vars.len() as i32;
        debug_assert!(unused >= 0);
        total / (2f64).powi(unused)
    }
}
