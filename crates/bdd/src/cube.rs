//! Enumeration of satisfying assignments restricted to a variable list.

use crate::table::Inner;

impl Inner {
    /// Calls `cb` once per satisfying assignment of `f` over exactly the
    /// variables in `vars` (sorted ascending). Variables of `vars` not in
    /// the support of `f` are expanded to both values, so the callback sees
    /// every concrete assignment. Returning `false` from the callback stops
    /// the enumeration.
    ///
    /// # Panics
    ///
    /// Panics if the support of `f` is not a subset of `vars` (callers must
    /// project other variables away first), or `vars` is not sorted.
    pub(crate) fn foreach_sat(&self, f: u32, vars: &[u32], cb: &mut dyn FnMut(&[bool]) -> bool) {
        debug_assert!(vars.windows(2).all(|w| w[0] < w[1]), "vars must be sorted");
        let support = self.support(f);
        for v in &support {
            assert!(
                vars.binary_search(v).is_ok(),
                "foreach_sat: support variable {v} not in the enumeration set"
            );
        }
        // The recursion walks levels in ascending order; the caller's
        // positions are by variable. Sort the levels, remembering where
        // each writes its bit.
        let mut by_level: Vec<(u32, usize)> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (self.level_of_var(v), i))
            .collect();
        by_level.sort_unstable_by_key(|&(l, _)| l);
        let levels: Vec<u32> = by_level.iter().map(|&(l, _)| l).collect();
        let positions: Vec<usize> = by_level.iter().map(|&(_, i)| i).collect();
        let mut level_buf = vec![false; vars.len()];
        let mut var_buf = vec![false; vars.len()];
        let mut shim = |a: &[bool]| -> bool {
            for (k, &pos) in positions.iter().enumerate() {
                var_buf[pos] = a[k];
            }
            cb(&var_buf)
        };
        let top = self.level(f);
        self.sat_rec(f, top, &levels, 0, &mut level_buf, &mut shim);
    }

    /// Returns `true` to continue enumeration. `top` is the effective top
    /// level of `f`: equal to `level(f)` on entry and advanced past already
    /// consumed chain levels while walking the interval of a chain node
    /// (plain nodes never advance it — `bot == level`).
    fn sat_rec(
        &self,
        f: u32,
        top: u32,
        vars: &[u32],
        idx: usize,
        buf: &mut [bool],
        cb: &mut dyn FnMut(&[bool]) -> bool,
    ) -> bool {
        if f == 0 {
            return true;
        }
        if idx == vars.len() {
            debug_assert_eq!(f, 1, "support must be within vars");
            return cb(buf);
        }
        let v = vars[idx];
        if f > 1 && top == v {
            if v < self.bot(f) {
                // Inside a CBDD chain interval the level is forced false;
                // the support includes every chain level, so the next
                // enumerated level is exactly `top + 1`.
                buf[idx] = false;
                return self.sat_rec(f, top + 1, vars, idx + 1, buf, cb);
            }
            let (lo, hi) = (self.low(f), self.high(f));
            buf[idx] = false;
            let lo_top = self.level(lo);
            if !self.sat_rec(lo, lo_top, vars, idx + 1, buf, cb) {
                return false;
            }
            buf[idx] = true;
            let hi_top = self.level(hi);
            self.sat_rec(hi, hi_top, vars, idx + 1, buf, cb)
        } else {
            debug_assert!(f <= 1 || top > v);
            buf[idx] = false;
            if !self.sat_rec(f, top, vars, idx + 1, buf, cb) {
                return false;
            }
            buf[idx] = true;
            self.sat_rec(f, top, vars, idx + 1, buf, cb)
        }
    }
}
