//! Binary and ternary boolean operations on the node table.

use crate::budget::BddError;
use crate::node::NodeId;
use crate::table::{CacheOp, Inner};

const F: u32 = NodeId::FALSE.0;
const T: u32 = NodeId::TRUE.0;

/// Binary boolean operators supported by [`Inner::apply`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum BinOp {
    And,
    Or,
    Diff,
    Xor,
    Biimp,
}

impl BinOp {
    pub(crate) fn cache_op(self) -> CacheOp {
        match self {
            BinOp::And => CacheOp::And,
            BinOp::Or => CacheOp::Or,
            BinOp::Diff => CacheOp::Diff,
            BinOp::Xor => CacheOp::Xor,
            BinOp::Biimp => CacheOp::Biimp,
        }
    }

    /// Commutative operators may sort their cache keys.
    pub(crate) fn commutative(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Biimp)
    }

    /// Resolves the operation when at least one argument is terminal (or the
    /// arguments are equal). Returns `None` when recursion is required.
    pub(crate) fn terminal_case(self, a: u32, b: u32) -> Option<u32> {
        match self {
            BinOp::And => {
                if a == F || b == F {
                    Some(F)
                } else if a == T {
                    Some(b)
                } else if b == T || a == b {
                    Some(a)
                } else {
                    None
                }
            }
            BinOp::Or => {
                if a == T || b == T {
                    Some(T)
                } else if a == F {
                    Some(b)
                } else if b == F || a == b {
                    Some(a)
                } else {
                    None
                }
            }
            BinOp::Diff => {
                if a == F || b == T || a == b {
                    Some(F)
                } else if b == F {
                    Some(a)
                } else {
                    None
                }
            }
            BinOp::Xor => {
                if a == b {
                    Some(F)
                } else if a == F {
                    Some(b)
                } else if b == F {
                    Some(a)
                } else {
                    None
                }
            }
            BinOp::Biimp => {
                if a == b {
                    Some(T)
                } else if a == T {
                    Some(b)
                } else if b == T {
                    Some(a)
                } else {
                    None
                }
            }
        }
    }
}

impl Inner {
    /// Top-level entry for binary operations: routes large operands to the
    /// parallel apply engine (when `JEDD_THREADS` >= 2) and everything
    /// else to the sequential recursion. The engagement decision — probe
    /// past the size cutoff — depends only on the operand structure, so it
    /// is identical for every thread count.
    pub(crate) fn apply(&mut self, op: BinOp, a: u32, b: u32) -> Result<u32, BddError> {
        self.record_op_shape(&[a, b]);
        if self.par_enabled()
            && op.terminal_case(a, b).is_none()
            && self.probe_at_least(&[a, b], self.par_cutoff())
        {
            match self.par_run(crate::par::Job::Bin(op), a, b, self.num_vars())? {
                crate::par::ParAttempt::Done(r) => return Ok(r),
                crate::par::ParAttempt::Fallback => {}
            }
        }
        self.apply_rec(op, a, b)
    }

    /// The standard Bryant `apply` with memoisation.
    ///
    /// Fails only when a budget or fail plan is active (see
    /// [`Inner::mk`]); a failed call leaves the table consistent because
    /// partial results carry no external references.
    pub(crate) fn apply_rec(&mut self, op: BinOp, a: u32, b: u32) -> Result<u32, BddError> {
        if let Some(r) = op.terminal_case(a, b) {
            return Ok(r);
        }
        self.step()?;
        // Paged managers fault the operand blocks in here, where failures
        // (torn pages, I/O errors) can surface typed; the `level` reads
        // below then hit resident frames.
        self.prefault(&[a, b])?;
        let (ka, kb) = if op.commutative() && a > b {
            (b, a)
        } else {
            (a, b)
        };
        if let Some(r) = self.cache_lookup(op.cache_op(), ka, kb, 0) {
            return Ok(r);
        }
        let m = self.level(a).min(self.level(b));
        let (a0, a1) = self.cofactor_pair(a, m)?;
        let (b0, b1) = self.cofactor_pair(b, m)?;
        let r0 = self.apply_rec(op, a0, b0)?;
        let r1 = self.apply_rec(op, a1, b1)?;
        let r = self.mk(m, r0, r1)?;
        self.cache_store(op.cache_op(), ka, kb, 0, r);
        Ok(r)
    }

    /// Decides `a => b` (set containment `a ⊆ b`) without building the
    /// difference BDD: the recursion only ever returns terminals, so a
    /// frontier-emptiness probe allocates no nodes at all. Results are
    /// memoised under [`CacheOp::Subset`] (not commutative — no key
    /// sorting) with the answer stored as the `TRUE`/`FALSE` terminal id,
    /// which always survives cache sweeps.
    pub(crate) fn subset(&mut self, a: u32, b: u32) -> Result<bool, BddError> {
        if a == F || b == T || a == b {
            return Ok(true);
        }
        if b == F || a == T {
            // a is not FALSE / b is not TRUE after the cases above.
            return Ok(false);
        }
        self.step()?;
        self.prefault(&[a, b])?;
        if let Some(r) = self.cache_lookup(CacheOp::Subset, a, b, 0) {
            return Ok(r == T);
        }
        let m = self.level(a).min(self.level(b));
        // In chain mode the cofactor of a chain node may allocate a tail
        // node, so the probe is no longer allocation-free there; plain
        // managers keep the zero-allocation property.
        let (a0, a1) = self.cofactor_pair(a, m)?;
        let (b0, b1) = self.cofactor_pair(b, m)?;
        let r = self.subset(a0, b0)? && self.subset(a1, b1)?;
        self.cache_store(CacheOp::Subset, a, b, 0, if r { T } else { F });
        Ok(r)
    }

    /// Negation, implemented as `true - f` (set complement).
    pub(crate) fn not(&mut self, a: u32) -> Result<u32, BddError> {
        self.apply(BinOp::Diff, T, a)
    }

    /// If-then-else: `f ? g : h`.
    pub(crate) fn ite(&mut self, f: u32, g: u32, h: u32) -> Result<u32, BddError> {
        if f == T {
            return Ok(g);
        }
        if f == F {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g == T && h == F {
            return Ok(f);
        }
        self.step()?;
        self.prefault(&[f, g, h])?;
        if let Some(r) = self.cache_lookup(CacheOp::Ite, f, g, h) {
            return Ok(r);
        }
        let m = self.level(f).min(self.level(g)).min(self.level(h));
        let (f0, f1) = self.cofactor_pair(f, m)?;
        let (g0, g1) = self.cofactor_pair(g, m)?;
        let (h0, h1) = self.cofactor_pair(h, m)?;
        let r0 = self.ite(f0, g0, h0)?;
        let r1 = self.ite(f1, g1, h1)?;
        let r = self.mk(m, r0, r1)?;
        self.cache_store(CacheOp::Ite, f, g, h, r);
        Ok(r)
    }
}
