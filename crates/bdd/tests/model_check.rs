//! Model-checked protocol suites for the parallel kernel, run under the
//! `jedd-sync` deterministic scheduler (`--features model`). Each test
//! re-executes a tiny kernel workload under many adversarial
//! interleavings — bounded-exhaustive DFS for the small protocols,
//! PCT priority preemption for the larger oracles — and asserts the
//! kernel's determinism contract: the *function* computed (satcount,
//! assignments, typed error) is identical on every explored schedule.
//!
//! The operands here are deliberately tiny: the scheduler serialises
//! every lock, condvar and (strided) atomic into a decision point, so a
//! schedule space that is exhaustive at two threads must start from a
//! workload with a small synchronization footprint.

use jedd_bdd::rng::XorShift64Star;
use jedd_bdd::{Bdd, BddError, BddManager, Budget};
use jedd_sync::model::{self, Config, TrackedCell};
use std::sync::Mutex as StdMutex;

const NBITS: usize = 14;

/// A small union-of-minterms BDD; big enough to split at the forced
/// cutoff, small enough that one apply has a bounded lock footprint.
fn dense(mgr: &BddManager, terms: usize, seed: u64) -> Bdd {
    let mut rng = XorShift64Star::new(seed);
    let bits: Vec<u32> = (0..NBITS as u32).collect();
    let mut acc = mgr.constant_false();
    for _ in 0..terms {
        let value = rng.next_u64() & ((1u64 << NBITS) - 1);
        acc = acc.or(&mgr.encode_value(&bits, value));
    }
    acc
}

/// A manager forced onto the parallel path on test-sized operands.
fn manager(threads: usize) -> BddManager {
    let mgr = BddManager::new(NBITS);
    mgr.set_threads(threads);
    mgr.set_par_cutoff(2);
    mgr
}

/// `commit_par_nodes` vs. governor trip, explored exhaustively at two
/// threads: when a node-limit budget trips mid-operation, every
/// interleaving must (a) surface the same typed error with the
/// configured limit echoed back, and (b) leave the master arena
/// untouched by the aborted operation — the commit is skipped, so a
/// follow-up unbudgeted operation still computes the right function.
#[test]
fn governor_trip_commit_skip_is_exhaustive_at_two_threads() {
    let outcomes: StdMutex<Vec<String>> = StdMutex::new(Vec::new());
    let mut cfg = Config::dfs(1);
    cfg.yield_stride = 64; // locks/condvars still decide every time
    let report = model::check(cfg, || {
        // Operands are built at the default cutoff (sequentially — no
        // decision points), so the DFS frontier is confined to the two
        // budgeted parallel operations below.
        let mgr = BddManager::new(NBITS);
        mgr.set_threads(2);
        let f = dense(&mgr, 16, 11);
        let g = dense(&mgr, 16, 12);
        mgr.set_par_cutoff(2);
        // GC first so the dead construction intermediates cannot bail the
        // ladder out, then set a node ceiling right at the live count: the
        // conjunction's reservations blow through it at the `cmk`
        // allocation point, the governor trips, and the reserved block is
        // discarded without touching the master arena.
        mgr.gc();
        mgr.set_budget(Budget::unlimited().with_max_live_nodes(mgr.live_nodes() + 2));
        // The union allocates genuinely new structure (the operands are
        // disjoint minterm sets), so the workers trip within their first
        // few reservations — keeping the DFS frontier small.
        let trip = match f.try_or(&g) {
            Err(BddError::NodeLimit { limit, .. }) => format!("node-limit {limit}"),
            Err(e) => format!("unexpected error {e}"),
            Ok(_) => "no trip".to_string(),
        };
        // Commit-skip invariant: the same union, unbudgeted, must now
        // succeed on the surviving arena. Run it sequentially (cutoff
        // back up) so verification adds no decision points of its own.
        mgr.set_budget(Budget::unlimited());
        mgr.set_par_cutoff(1 << 20);
        let ok = f.or(&g).satcount();
        outcomes.lock().unwrap().push(format!("{trip}; or={ok}"));
    });
    report.assert_clean();
    assert!(report.complete, "DFS must exhaust the bounded schedule space");
    assert!(report.schedules >= 2, "the sweep should branch, got {}", report.schedules);
    let outcomes = outcomes.into_inner().unwrap();
    assert_eq!(outcomes.len() as u64, report.schedules);
    let first = &outcomes[0];
    assert!(first.starts_with("node-limit"), "budget must trip: {first}");
    for o in &outcomes {
        assert_eq!(o, first, "every schedule must reach the identical outcome");
    }
}

/// The determinism contract under adversarial PCT schedules: the
/// parallel kernel computes the same function as the sequential
/// reference on every explored interleaving, at both thread counts.
#[test]
fn parallel_apply_matches_sequential_on_every_schedule() {
    let reference = {
        let mgr = manager(1);
        let f = dense(&mgr, 30, 5);
        let g = dense(&mgr, 30, 6);
        (f.and(&g).satcount(), f.xor(&g).satcount())
    };
    for threads in [2usize, 4] {
        let mut cfg = Config::pct(0xC0FF_EE00 + threads as u64, 12, 3);
        cfg.yield_stride = 64;
        let report = model::check(cfg, || {
            let mgr = manager(threads);
            let f = dense(&mgr, 30, 5);
            let g = dense(&mgr, 30, 6);
            assert_eq!(f.and(&g).satcount(), reference.0, "and @ {threads} threads");
            assert_eq!(f.xor(&g).satcount(), reference.1, "xor @ {threads} threads");
        });
        report.assert_clean();
        assert_eq!(report.schedules, 12);
    }
}

/// Batch Condvar wakeups: the DAG scheduler parks workers on `ready_cv`
/// when the queue is empty and notifies as dependencies resolve. Under
/// priority-preemption schedules (notifier descheduled at the worst
/// moment, waiter woken late) no wakeup may be lost and every root must
/// still resolve to the sequential value.
#[test]
fn batch_condvar_wakeups_survive_adversarial_schedules() {
    let reference: Vec<f64> = {
        let mgr = manager(1);
        let roots = batch_workload(&mgr);
        roots.iter().map(|b| b.satcount()).collect()
    };
    let mut cfg = Config::pct(0xBA7C4, 10, 4);
    cfg.yield_stride = 64;
    let report = model::check(cfg, || {
        let mgr = manager(2);
        let roots = batch_workload(&mgr);
        let got: Vec<f64> = roots.iter().map(|b| b.satcount()).collect();
        assert_eq!(got, reference, "batch roots diverged from the sequential run");
    });
    report.assert_clean();
    assert_eq!(report.schedules, 10);
}

/// A small dependency DAG: two independent conjunctions feeding a
/// quantified combination, so the batch scheduler has both ready
/// parallelism and a join that must wait on `ready_cv`.
fn batch_workload(mgr: &BddManager) -> Vec<Bdd> {
    let f = dense(mgr, 20, 21);
    let g = dense(mgr, 20, 22);
    let h = dense(mgr, 20, 23);
    let cube = mgr.cube(&[10, 12]);
    let mut b = mgr.batch();
    let tf = b.leaf(&f);
    let tg = b.leaf(&g);
    let th = b.leaf(&h);
    let left = b.and(tf, tg);
    let right = b.xor(tg, th);
    let top = b.or(left, right);
    let ex = b.exists(top, &cube);
    b.run(&[left, right, ex])
}

/// The intentionally racy mutation: two scope threads bump a
/// [`TrackedCell`] without a lock. Both layers of the harness must
/// convict it — the vector-clock detector reports the race, and the
/// bounded-exhaustive sweep *witnesses* the lost update (a final value
/// of 1) that the race makes possible.
#[test]
fn injected_racy_increment_is_convicted_by_both_layers() {
    let finals: StdMutex<Vec<u32>> = StdMutex::new(Vec::new());
    let report = model::check(Config::dfs(2), || {
        let cell = TrackedCell::new(0u32);
        jedd_sync::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let v = cell.get();
                    cell.set(v + 1);
                });
            }
        });
        finals.lock().unwrap().push(cell.get());
    });
    assert!(report.complete, "the two-increment protocol is tiny; DFS must finish");
    assert!(!report.races.is_empty(), "the vector-clock detector must fire");
    let finals = finals.into_inner().unwrap();
    assert!(finals.contains(&1), "the exhaustive sweep must witness the lost update");
    assert!(finals.contains(&2), "...and the correct outcome");
    assert!(finals.iter().all(|&v| v == 1 || v == 2));
}

/// The same protocol with the cell guarded by a shim mutex: the
/// detector must stay quiet and DFS must prove the lost update gone.
#[test]
fn guarded_increment_is_race_free_and_exact() {
    let finals: StdMutex<Vec<u32>> = StdMutex::new(Vec::new());
    let report = model::check(Config::dfs(2), || {
        let cell = jedd_sync::Mutex::new(0u32);
        jedd_sync::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let mut v = cell.lock();
                    *v += 1;
                });
            }
        });
        finals.lock().unwrap().push(*cell.lock());
    });
    report.assert_clean();
    assert!(report.complete);
    let finals = finals.into_inner().unwrap();
    assert!(finals.iter().all(|&v| v == 2), "mutual exclusion must make 2 the only outcome");
}

/// Scheduler counters flow into `KernelStats`: after a model sweep the
/// snapshot must report the schedules just explored.
#[test]
fn kernel_stats_carry_scheduler_counters() {
    let mgr = manager(2);
    let before = mgr.kernel_stats().sched_schedules;
    let report = model::check(Config::random(7, 4), || {
        let m = manager(2);
        let f = dense(&m, 20, 1);
        let g = dense(&m, 20, 2);
        let _ = f.and(&g);
    });
    report.assert_clean();
    let after = mgr.kernel_stats().sched_schedules;
    assert!(
        after >= before + 4,
        "KernelStats must absorb the sweep: before={before} after={after}"
    );
}
