//! Tests for the disk-backed node pager: block-codec properties
//! (round-trip, exhaustive corruption and truncation sweeps), eviction
//! policy (clock determinism, pin protocol), stats invariants, and the
//! paged-vs-resident kernel contract — at any cache size a paged manager
//! produces tuple-identical (in fact node-id-identical) results.

use jedd_bdd::pager::{
    decode_block, encode_block, BlockEntry, BlockError, PageError, Pager, PagerFaults,
    BLOCK_BYTES, BLOCK_NODES, ENTRY_BYTES, HEADER_BYTES,
};
use jedd_bdd::rng::XorShift64Star;
use jedd_bdd::{Bdd, BddError, BddManager};

fn random_entry(rng: &mut XorShift64Star) -> BlockEntry {
    BlockEntry {
        level: rng.next_u64() as u32,
        bot: rng.next_u64() as u32,
        low: rng.next_u64() as u32,
        high: rng.next_u64() as u32,
        next: rng.next_u64() as u32,
        // The mark bit shares the ext_refs word, so counts stay below 2^31.
        ext_refs: rng.next_u64() as u32 & 0x7fff_ffff,
        mark: rng.next_u64() & 1 == 1,
    }
}

fn random_batch(rng: &mut XorShift64Star, len: usize) -> Vec<BlockEntry> {
    (0..len).map(|_| random_entry(rng)).collect()
}

// ---------------------------------------------------------------------
// Block codec properties.
// ---------------------------------------------------------------------

#[test]
fn codec_round_trips_random_batches() {
    let mut rng = XorShift64Star::new(0xb10c);
    for case in 0..64usize {
        // Cover the empty block, the full block, and random lengths.
        let len = match case {
            0 => 0,
            1 => BLOCK_NODES,
            _ => rng.gen_range(0..(BLOCK_NODES as u64 + 1)) as usize,
        };
        let index = rng.next_u64() as u32;
        let entries = random_batch(&mut rng, len);
        let bytes = encode_block(index, &entries);
        assert_eq!(bytes.len(), BLOCK_BYTES, "blocks are fixed-size frames");
        let back = decode_block(index, &bytes).expect("clean block decodes");
        assert_eq!(back, entries, "case {case}: round-trip mismatch");
    }
}

#[test]
fn codec_rejects_every_single_byte_corruption() {
    // A full block, so the payload (and therefore CRC coverage) spans the
    // whole frame and the sweep is exhaustive over every stored byte.
    let mut rng = XorShift64Star::new(0xc0de);
    let entries = random_batch(&mut rng, BLOCK_NODES);
    let clean = encode_block(7, &entries);
    for at in 0..BLOCK_BYTES {
        let mut bytes = clean.clone();
        bytes[at] ^= 1 << (at % 8);
        let err = decode_block(7, &bytes)
            .expect_err(&format!("flip at byte {at} must not decode"));
        // Every corruption class maps to the expected typed error.
        match at {
            0..=3 => assert_eq!(err, BlockError::BadMagic, "byte {at}"),
            4..=7 => assert!(
                matches!(err, BlockError::BadVersion(_)),
                "byte {at}: {err:?}"
            ),
            8..=11 => assert!(
                matches!(err, BlockError::WrongBlock { expected: 7, .. }),
                "byte {at}: {err:?}"
            ),
            12..=15 => assert!(
                // A flipped length word is impossible outright, promises
                // more bytes than the frame holds, or shortens the payload
                // out from under its checksum.
                matches!(
                    err,
                    BlockError::BadLength(_)
                        | BlockError::Truncated { .. }
                        | BlockError::ChecksumMismatch
                ),
                "byte {at}: {err:?}"
            ),
            _ => assert_eq!(err, BlockError::ChecksumMismatch, "byte {at}"),
        }
    }
}

#[test]
fn codec_rejects_every_truncation_length() {
    let mut rng = XorShift64Star::new(0x7a11);
    let entries = random_batch(&mut rng, BLOCK_NODES);
    let clean = encode_block(3, &entries);
    for len in 0..BLOCK_BYTES {
        let err = decode_block(3, &clean[..len])
            .expect_err(&format!("{len}-byte prefix must not decode"));
        match err {
            BlockError::Truncated { expected, actual } => {
                assert_eq!(actual, len);
                assert!(expected > len, "length {len}: expected {expected}");
            }
            other => panic!("length {len}: wrong error {other:?}"),
        }
    }
    // Sanity: the header geometry the sweep relies on.
    assert_eq!(HEADER_BYTES + BLOCK_NODES * ENTRY_BYTES, BLOCK_BYTES);
}

// ---------------------------------------------------------------------
// Eviction policy.
// ---------------------------------------------------------------------

/// Fills `pager` with `blocks` full blocks of distinct entries.
fn fill_blocks(pager: &mut Pager, blocks: usize) {
    for id in 0..blocks * BLOCK_NODES {
        let e = BlockEntry {
            level: id as u32,
            bot: id as u32,
            low: !(id as u32),
            high: id as u32 ^ 0x5555_5555,
            next: id as u32 ^ 0xaaaa_aaaa,
            ext_refs: (id % 7) as u32,
            mark: id % 3 == 0,
        };
        assert_eq!(pager.push_entry(e).expect("push"), id as u32);
    }
}

/// Runs a fixed access trace and returns the resident-set snapshot after
/// every access, plus the final stats.
fn run_trace(budget: usize, trace: &[usize]) -> (Vec<Vec<bool>>, jedd_bdd::pager::PageStats) {
    let mut pager = Pager::new(budget, None).expect("pager");
    fill_blocks(&mut pager, 4);
    let mut snapshots = Vec::new();
    for &block in trace {
        let id = block * BLOCK_NODES + 5;
        let e = pager.entry(id).expect("entry");
        assert_eq!(e.level, id as u32, "paged entry corrupted");
        snapshots.push((0..4).map(|b| pager.is_resident(b)).collect());
    }
    (snapshots, pager.stats())
}

#[test]
fn clock_hand_is_deterministic_on_a_fixed_trace() {
    let trace = [1, 2, 3, 1, 0, 2, 3, 3, 1, 2, 0, 1];
    let (snap_a, stats_a) = run_trace(2, &trace);
    let (snap_b, stats_b) = run_trace(2, &trace);
    // Two pagers fed the same trace evolve identically: same resident
    // sets after every access, same fault/eviction counters.
    assert_eq!(snap_a, snap_b);
    assert_eq!(stats_a, stats_b);
    assert!(stats_a.page_faults > 0, "budget 2 over 4 blocks must fault");
    assert!(stats_a.evictions > 0, "budget 2 over 4 blocks must evict");
    // Block 0 holds the terminals' permanent pin, so it is never evicted.
    for snap in &snap_a {
        assert!(snap[0], "block 0 evicted despite its pin");
    }
    // The block just accessed is always resident afterwards.
    for (snap, &block) in snap_a.iter().zip(&trace) {
        assert!(snap[block], "accessed block {block} not resident");
    }
}

#[test]
fn pinned_frames_survive_any_access_pressure() {
    let mut pager = Pager::new(2, None).expect("pager");
    fill_blocks(&mut pager, 4);
    pager.entry(BLOCK_NODES + 1).expect("fault block 1 in");
    pager.pin(1).expect("pin resident block");
    assert_eq!(pager.pin_count(1), 1);
    // Hammer the other blocks; the pinned frame must never leave.
    for round in 0..8 {
        for block in [2usize, 3, 2, 3] {
            pager.entry(block * BLOCK_NODES).expect("entry");
            assert!(pager.is_resident(1), "round {round}: pinned block evicted");
        }
    }
    pager.unpin(1);
    assert_eq!(pager.pin_count(1), 0);
    // Unpinned, the frame is evictable again under pressure.
    for block in [2usize, 3, 2, 3] {
        pager.entry(block * BLOCK_NODES).expect("entry");
    }
    assert!(!pager.is_resident(1), "unpinned block survived eviction");
    let s = pager.stats();
    assert_eq!(s.page_faults, s.page_reads);
    assert!(s.evictions <= s.page_writes);
}

#[test]
fn failed_eviction_write_parks_a_typed_sticky_error() {
    let mut pager = Pager::new(2, None).expect("pager");
    fill_blocks(&mut pager, 3);
    assert!(pager.take_sticky().is_none());
    // Kill the next page write (the one the coming eviction issues),
    // leaving a torn half-block prefix behind. Ordinals are relative to
    // installation, so 1 means "the very next write from now".
    pager.set_faults(PagerFaults::kill_write(1, BLOCK_BYTES as u64 / 2));
    // Fault a cold block in (after the fill only block 0, pinned, and
    // the tail block 2 are resident); making room needs an eviction
    // write, which dies. The victim must stay resident (over budget) and
    // the entry still reads correctly — a failed eviction never loses
    // nodes.
    assert!(!pager.is_resident(1), "block 1 should be cold after fill");
    let id = BLOCK_NODES + 9;
    let e = pager.entry(id).expect("entry survives failed eviction");
    assert_eq!(e.level, id as u32);
    let sticky = pager.take_sticky().expect("eviction failure parked");
    assert!(
        matches!(sticky, PageError::Killed { at: "page-write", .. }),
        "{sticky:?}"
    );
    assert_eq!(sticky.kind(), "killed");
    assert!(pager.take_sticky().is_none(), "sticky error is taken once");
    // The pager keeps answering correctly after the fault is cleared.
    for id in [5usize, BLOCK_NODES + 4, 2 * BLOCK_NODES + 11] {
        assert_eq!(pager.entry(id).expect("entry").level, id as u32);
    }
}

// ---------------------------------------------------------------------
// Paged-vs-resident kernel contract and stats invariants.
// ---------------------------------------------------------------------

const NVARS: usize = 16;

fn random_values(rng: &mut XorShift64Star, count: usize) -> Vec<u64> {
    let mut out: Vec<u64> = (0..count)
        .map(|_| rng.gen_range(0..1u64 << NVARS))
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

fn build_set(m: &BddManager, bits: &[u32], values: &[u64]) -> Bdd {
    let mut acc = m.constant_false();
    for &v in values {
        acc = acc.or(&m.encode_value(bits, v));
    }
    acc
}

/// Runs the same operation mix on one manager and returns the results.
fn workload(m: &BddManager, gc: bool) -> Vec<Bdd> {
    m.set_threads(1);
    let bits: Vec<u32> = (0..NVARS as u32).collect();
    let mut rng = XorShift64Star::new(0x9a6e);
    let a = build_set(m, &bits, &random_values(&mut rng, 120));
    let b = build_set(m, &bits, &random_values(&mut rng, 120));
    let cube = m.cube(&bits[..6]);
    let mut out = vec![
        a.or(&b),
        a.and(&b),
        a.diff(&b),
        a.xor(&b),
        a.ite(&b, &b.not()),
        a.exists(&cube),
        a.and_exists(&b, &cube),
    ];
    if gc {
        // Churn: drop intermediates, collect, keep operating on the
        // survivors so eviction interleaves with the free list.
        m.gc();
        out.push(out[0].diff(&out[1]));
        m.gc();
    }
    out
}

#[test]
fn paged_managers_match_resident_at_any_cache_size() {
    let bits: Vec<u32> = (0..NVARS as u32).collect();
    let resident = BddManager::new(NVARS);
    let expect = workload(&resident, true);
    // Tiny (thrashing), medium, and unbounded resident-frame budgets.
    for frames in [2usize, 16, 0] {
        let paged = BddManager::new_paged(NVARS, frames);
        assert!(paged.is_paged());
        let got = workload(&paged, true);
        assert_eq!(got.len(), expect.len());
        for (g, e) in got.iter().zip(&expect) {
            assert_eq!(
                g.satcount_exact(),
                e.satcount_exact(),
                "frames {frames}: satcount diverged"
            );
            assert_eq!(
                g.sat_assignments(&bits),
                e.sat_assignments(&bits),
                "frames {frames}: tuples diverged"
            );
            // Stronger than the tuple contract: at one thread a paged
            // manager allocates in the identical order, so node ids match.
            assert_eq!(g.root_id(), e.root_id(), "frames {frames}: ids diverged");
            assert_eq!(g.node_count(), e.node_count(), "frames {frames}");
        }
        let stats = paged.kernel_stats();
        if frames == 2 {
            assert!(
                stats.page_faults > 0,
                "a thrashing cache must fault cold blocks in"
            );
            assert!(stats.page_evictions > 0, "a thrashing cache must evict");
        }
        if frames == 0 {
            assert_eq!(stats.page_evictions, 0, "unbounded budget never evicts");
        }
    }
}

#[test]
fn kernel_page_stats_hold_their_invariants_across_gc() {
    let paged = BddManager::new_paged(NVARS, 3);
    let check = |s: jedd_bdd::KernelStats, when: &str| {
        assert_eq!(s.page_faults, s.page_reads, "{when}: faults != reads");
        assert!(
            s.page_evictions <= s.page_writes,
            "{when}: evictions {} > writes {}",
            s.page_evictions,
            s.page_writes
        );
        assert!(s.page_max_resident <= 3, "{when}: over budget");
    };
    let _kept = workload(&paged, false);
    let before = paged.kernel_stats();
    check(before, "after workload");
    assert!(before.page_faults > 0, "3 frames must fault");
    paged.gc();
    let after = paged.kernel_stats();
    check(after, "after gc");
    // Counters are monotone across collection (GC scans fault blocks in,
    // it never resets paging history).
    assert!(after.page_faults >= before.page_faults);
    assert!(after.page_reads >= before.page_reads);
    assert!(after.page_writes >= before.page_writes);
    assert!(after.page_evictions >= before.page_evictions);
    assert!(after.page_max_resident >= before.page_max_resident);
    // A resident manager reports all-zero paging counters.
    let resident = BddManager::new(NVARS);
    let _r = workload(&resident, false);
    let s = resident.kernel_stats();
    assert_eq!(
        (s.page_faults, s.page_reads, s.page_writes, s.page_evictions),
        (0, 0, 0, 0)
    );
}

#[test]
fn torn_page_surfaces_as_a_typed_error_never_a_wrong_answer() {
    let paged = BddManager::new_paged(NVARS, 2);
    let kept = workload(&paged, false);
    let page_file = paged.page_file().expect("paged manager has a page file");
    // Corrupt one payload byte in every block on disk. Resident frames
    // are unaffected until rewritten, but with 2 frames the kept BDDs
    // span several cold blocks, so a fault must hit corruption.
    let mut bytes = std::fs::read(&page_file).expect("read page file");
    assert!(bytes.len() >= 3 * BLOCK_BYTES, "workload spans 3+ blocks");
    let mut block = 0;
    while (block + 1) * BLOCK_BYTES <= bytes.len() {
        bytes[block * BLOCK_BYTES + HEADER_BYTES + 1] ^= 0x40;
        block += 1;
    }
    std::fs::write(&page_file, &bytes).expect("write corruption");
    let err = paged
        .try_page_in(&kept[0])
        .expect_err("paging corrupt blocks in must fail");
    match err {
        BddError::Page { kind, .. } => assert_eq!(kind, "checksum"),
        other => panic!("wrong error: {other}"),
    }
    // The full typed error is parked for whoever wants the details.
    let full = paged.take_page_error().expect("parked page error");
    assert_eq!(full.kind(), "checksum");
    assert!(matches!(full, PageError::Corrupt { .. }), "{full:?}");
    assert!(
        paged.take_page_error().is_none(),
        "taking the error un-poisons the manager"
    );
    // Fallible ops on cold operands also report typed errors afterwards
    // (the corruption is still on disk) instead of wrong answers.
    let again = kept[0].try_and(&kept[1]);
    if let Err(e) = again {
        assert!(matches!(e, BddError::Page { .. }), "{e}");
        let _ = paged.take_page_error();
    }
}
