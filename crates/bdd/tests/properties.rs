//! Property-based tests for the BDD kernel: every BDD operation is checked
//! against a brute-force truth-table model over a small variable universe.

use jedd_bdd::{Bdd, BddManager, Permutation, ZddManager};
use proptest::prelude::*;

const NVARS: usize = 6;

/// A random boolean-expression AST evaluated both as a BDD and as a truth
/// table.
#[derive(Clone, Debug)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Const(bool),
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0u32..NVARS as u32).prop_map(Expr::Var),
        any::<bool>().prop_map(Expr::Const),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

fn eval(e: &Expr, bits: u32) -> bool {
    match e {
        Expr::Var(v) => (bits >> v) & 1 == 1,
        Expr::Not(a) => !eval(a, bits),
        Expr::And(a, b) => eval(a, bits) && eval(b, bits),
        Expr::Or(a, b) => eval(a, bits) || eval(b, bits),
        Expr::Xor(a, b) => eval(a, bits) != eval(b, bits),
        Expr::Const(c) => *c,
    }
}

fn build(mgr: &BddManager, e: &Expr) -> Bdd {
    match e {
        Expr::Var(v) => mgr.var(*v),
        Expr::Not(a) => build(mgr, a).not(),
        Expr::And(a, b) => build(mgr, a).and(&build(mgr, b)),
        Expr::Or(a, b) => build(mgr, a).or(&build(mgr, b)),
        Expr::Xor(a, b) => build(mgr, a).xor(&build(mgr, b)),
        Expr::Const(true) => mgr.constant_true(),
        Expr::Const(false) => mgr.constant_false(),
    }
}

fn truth_table(mgr: &BddManager, f: &Bdd) -> Vec<bool> {
    let vars: Vec<u32> = (0..NVARS as u32).collect();
    let mut table = vec![false; 1 << NVARS];
    f.foreach_sat(&vars, |a| {
        let mut bits = 0u32;
        for (i, &b) in a.iter().enumerate() {
            if b {
                bits |= 1 << vars[i];
            }
        }
        table[bits as usize] = true;
        true
    });
    let _ = mgr;
    table
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bdd_matches_truth_table(e in expr_strategy()) {
        let mgr = BddManager::new(NVARS);
        let f = build(&mgr, &e);
        let table = truth_table(&mgr, &f);
        for bits in 0..(1u32 << NVARS) {
            prop_assert_eq!(table[bits as usize], eval(&e, bits), "at assignment {:06b}", bits);
        }
    }

    #[test]
    fn satcount_matches_model_count(e in expr_strategy()) {
        let mgr = BddManager::new(NVARS);
        let f = build(&mgr, &e);
        let models = (0..(1u32 << NVARS)).filter(|&b| eval(&e, b)).count();
        prop_assert_eq!(f.satcount(), models as f64);
    }

    #[test]
    fn exists_matches_model(e in expr_strategy(), var in 0u32..NVARS as u32) {
        let mgr = BddManager::new(NVARS);
        let f = build(&mgr, &e);
        let g = f.exists(&mgr.cube(&[var]));
        for bits in 0..(1u32 << NVARS) {
            let lo = bits & !(1 << var);
            let hi = bits | (1 << var);
            let expect = eval(&e, lo) || eval(&e, hi);
            let table = truth_table(&mgr, &g);
            prop_assert_eq!(table[bits as usize], expect);
        }
    }

    #[test]
    fn and_exists_is_fused(a in expr_strategy(), b in expr_strategy(), v1 in 0u32..NVARS as u32, v2 in 0u32..NVARS as u32) {
        let mgr = BddManager::new(NVARS);
        let f = build(&mgr, &a);
        let g = build(&mgr, &b);
        let cube = mgr.cube(&[v1, v2]);
        prop_assert_eq!(f.and_exists(&g, &cube), f.and(&g).exists(&cube));
    }

    #[test]
    fn replace_shifts_semantics(e in expr_strategy()) {
        // Shift all variables up by NVARS in a 2*NVARS manager.
        let mgr = BddManager::new(2 * NVARS);
        let f = build(&mgr, &e);
        let pairs: Vec<(u32, u32)> = (0..NVARS as u32).map(|v| (v, v + NVARS as u32)).collect();
        let perm = Permutation::from_pairs(&pairs);
        let g = f.replace(&perm);
        // Check the support moved entirely.
        for v in g.support() {
            prop_assert!(v >= NVARS as u32);
        }
        // Round-trip restores f.
        prop_assert_eq!(g.replace(&perm.inverse()), f);
    }

    #[test]
    fn ite_matches_model(a in expr_strategy(), b in expr_strategy(), c in expr_strategy()) {
        let mgr = BddManager::new(NVARS);
        let f = build(&mgr, &a);
        let g = build(&mgr, &b);
        let h = build(&mgr, &c);
        let r = f.ite(&g, &h);
        let table = truth_table(&mgr, &r);
        for bits in 0..(1u32 << NVARS) {
            let expect = if eval(&a, bits) { eval(&b, bits) } else { eval(&c, bits) };
            prop_assert_eq!(table[bits as usize], expect);
        }
    }

    #[test]
    fn gc_is_transparent(e in expr_strategy()) {
        let mgr = BddManager::new(NVARS);
        let f = build(&mgr, &e);
        let count_before = f.satcount();
        let shape_before = f.shape();
        mgr.gc();
        prop_assert_eq!(f.satcount(), count_before);
        prop_assert_eq!(f.shape(), shape_before);
        // Rebuilding the same expression yields the identical node.
        let f2 = build(&mgr, &e);
        prop_assert_eq!(f, f2);
    }

    #[test]
    fn zdd_set_algebra(sets_a in proptest::collection::vec(proptest::collection::vec(0u32..8, 0..4), 0..8),
                       sets_b in proptest::collection::vec(proptest::collection::vec(0u32..8, 0..4), 0..8)) {
        use std::collections::BTreeSet;
        let z = ZddManager::new(8);
        let norm = |sets: &Vec<Vec<u32>>| -> BTreeSet<BTreeSet<u32>> {
            sets.iter().map(|s| s.iter().copied().collect()).collect()
        };
        let (ma, mb) = (norm(&sets_a), norm(&sets_b));
        let a = z.family(&sets_a);
        let b = z.family(&sets_b);
        let check = |zid, model: BTreeSet<BTreeSet<u32>>| {
            let got: BTreeSet<BTreeSet<u32>> = z
                .sets(zid)
                .into_iter()
                .map(|s| s.into_iter().collect())
                .collect();
            got == model
        };
        prop_assert!(check(z.union(a, b), ma.union(&mb).cloned().collect()));
        prop_assert!(check(z.intersect(a, b), ma.intersection(&mb).cloned().collect()));
        prop_assert!(check(z.diff(a, b), ma.difference(&mb).cloned().collect()));
        prop_assert_eq!(z.count(a), ma.len() as f64);
    }
}
