//! Property-style tests for the BDD kernel: randomly generated boolean
//! expressions are checked against a brute-force truth-table model over a
//! small variable universe. Generation is seeded with the in-tree PRNG so
//! every run exercises the same cases.

use jedd_bdd::rng::XorShift64Star;
use jedd_bdd::{Bdd, BddManager, Permutation, ZddManager};

const NVARS: usize = 6;
const CASES: u64 = 128;

/// A random boolean-expression AST evaluated both as a BDD and as a truth
/// table.
#[derive(Clone, Debug)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Const(bool),
}

fn random_expr(rng: &mut XorShift64Star, depth: u32) -> Expr {
    if depth == 0 || rng.gen_bool(0.3) {
        return if rng.gen_bool(0.8) {
            Expr::Var(rng.gen_range(0..NVARS as u64) as u32)
        } else {
            Expr::Const(rng.gen_bool(0.5))
        };
    }
    match rng.gen_range(0..4) {
        0 => Expr::Not(Box::new(random_expr(rng, depth - 1))),
        1 => Expr::And(
            Box::new(random_expr(rng, depth - 1)),
            Box::new(random_expr(rng, depth - 1)),
        ),
        2 => Expr::Or(
            Box::new(random_expr(rng, depth - 1)),
            Box::new(random_expr(rng, depth - 1)),
        ),
        _ => Expr::Xor(
            Box::new(random_expr(rng, depth - 1)),
            Box::new(random_expr(rng, depth - 1)),
        ),
    }
}

fn eval(e: &Expr, bits: u32) -> bool {
    match e {
        Expr::Var(v) => (bits >> v) & 1 == 1,
        Expr::Not(a) => !eval(a, bits),
        Expr::And(a, b) => eval(a, bits) && eval(b, bits),
        Expr::Or(a, b) => eval(a, bits) || eval(b, bits),
        Expr::Xor(a, b) => eval(a, bits) != eval(b, bits),
        Expr::Const(c) => *c,
    }
}

fn build(mgr: &BddManager, e: &Expr) -> Bdd {
    match e {
        Expr::Var(v) => mgr.var(*v),
        Expr::Not(a) => build(mgr, a).not(),
        Expr::And(a, b) => build(mgr, a).and(&build(mgr, b)),
        Expr::Or(a, b) => build(mgr, a).or(&build(mgr, b)),
        Expr::Xor(a, b) => build(mgr, a).xor(&build(mgr, b)),
        Expr::Const(true) => mgr.constant_true(),
        Expr::Const(false) => mgr.constant_false(),
    }
}

fn truth_table(f: &Bdd) -> Vec<bool> {
    let vars: Vec<u32> = (0..NVARS as u32).collect();
    let mut table = vec![false; 1 << NVARS];
    f.foreach_sat(&vars, |a| {
        let mut bits = 0u32;
        for (i, &b) in a.iter().enumerate() {
            if b {
                bits |= 1 << vars[i];
            }
        }
        table[bits as usize] = true;
        true
    });
    table
}

#[test]
fn bdd_matches_truth_table() {
    let mut rng = XorShift64Star::new(0xbdd1);
    for case in 0..CASES {
        let e = random_expr(&mut rng, 4);
        let mgr = BddManager::new(NVARS);
        let f = build(&mgr, &e);
        let table = truth_table(&f);
        for bits in 0..(1u32 << NVARS) {
            assert_eq!(
                table[bits as usize],
                eval(&e, bits),
                "case {case} at assignment {bits:06b}"
            );
        }
    }
}

#[test]
fn satcount_matches_model_count() {
    let mut rng = XorShift64Star::new(0xbdd2);
    for _ in 0..CASES {
        let e = random_expr(&mut rng, 4);
        let mgr = BddManager::new(NVARS);
        let f = build(&mgr, &e);
        let models = (0..(1u32 << NVARS)).filter(|&b| eval(&e, b)).count();
        assert_eq!(f.satcount(), models as f64);
    }
}

#[test]
fn exists_matches_model() {
    let mut rng = XorShift64Star::new(0xbdd3);
    for _ in 0..CASES {
        let e = random_expr(&mut rng, 4);
        let var = rng.gen_range(0..NVARS as u64) as u32;
        let mgr = BddManager::new(NVARS);
        let f = build(&mgr, &e);
        let g = f.exists(&mgr.cube(&[var]));
        let table = truth_table(&g);
        for bits in 0..(1u32 << NVARS) {
            let lo = bits & !(1 << var);
            let hi = bits | (1 << var);
            let expect = eval(&e, lo) || eval(&e, hi);
            assert_eq!(table[bits as usize], expect);
        }
    }
}

#[test]
fn and_exists_is_fused() {
    let mut rng = XorShift64Star::new(0xbdd4);
    for _ in 0..CASES {
        let a = random_expr(&mut rng, 4);
        let b = random_expr(&mut rng, 4);
        let v1 = rng.gen_range(0..NVARS as u64) as u32;
        let v2 = rng.gen_range(0..NVARS as u64) as u32;
        let mgr = BddManager::new(NVARS);
        let f = build(&mgr, &a);
        let g = build(&mgr, &b);
        let cube = mgr.cube(&[v1, v2]);
        assert_eq!(f.and_exists(&g, &cube), f.and(&g).exists(&cube));
    }
}

#[test]
fn replace_shifts_semantics() {
    let mut rng = XorShift64Star::new(0xbdd5);
    for _ in 0..CASES {
        let e = random_expr(&mut rng, 4);
        // Shift all variables up by NVARS in a 2*NVARS manager.
        let mgr = BddManager::new(2 * NVARS);
        let f = build(&mgr, &e);
        let pairs: Vec<(u32, u32)> = (0..NVARS as u32).map(|v| (v, v + NVARS as u32)).collect();
        let perm = Permutation::from_pairs(&pairs);
        let g = f.replace(&perm);
        // Check the support moved entirely.
        for v in g.support() {
            assert!(v >= NVARS as u32);
        }
        // Round-trip restores f.
        assert_eq!(g.replace(&perm.inverse()), f);
    }
}

/// Truth table of `g` over the first `2 * NVARS` variables.
fn wide_truth_table(g: &Bdd) -> Vec<bool> {
    let vars: Vec<u32> = (0..2 * NVARS as u32).collect();
    let mut table = vec![false; 1 << (2 * NVARS)];
    g.foreach_sat(&vars, |a| {
        let mut bits = 0u32;
        for (i, &b) in a.iter().enumerate() {
            if b {
                bits |= 1 << vars[i];
            }
        }
        table[bits as usize] = true;
        true
    });
    table
}

/// A uniformly random full permutation of the `2 * NVARS` variables
/// (Fisher–Yates over the in-tree PRNG), expressed as pairs.
fn random_full_permutation(rng: &mut XorShift64Star) -> Permutation {
    let n = 2 * NVARS as u32;
    let mut targets: Vec<u32> = (0..n).collect();
    rng.shuffle(&mut targets);
    let pairs: Vec<(u32, u32)> = (0..n).map(|v| (v, targets[v as usize])).collect();
    Permutation::try_from_pairs(&pairs).expect("a bijection is always valid")
}

/// A random partial injective map: each of the first NVARS variables is
/// independently remapped (or not) to a distinct target drawn from the
/// whole 2*NVARS universe.
fn random_partial_map(rng: &mut XorShift64Star) -> Permutation {
    let n = 2 * NVARS as u32;
    let mut free: Vec<u32> = (0..n).collect();
    rng.shuffle(&mut free);
    let mut pairs = Vec::new();
    for v in 0..NVARS as u32 {
        if rng.gen_bool(0.6) {
            pairs.push((v, free.pop().expect("2*NVARS targets for NVARS sources")));
        }
    }
    Permutation::try_from_pairs(&pairs).expect("distinct targets")
}

/// The direct `mk`-based replace path must agree with the seed's
/// HashMap + ite-rebuild algorithm — node-for-node — on random functions
/// under both full permutations and partial injective maps, and both must
/// implement the paper's semantics: `g(y) = f(x)` where `x_v = y_{perm(v)}`.
#[test]
fn replace_direct_path_matches_rebuild_oracle() {
    let mut rng = XorShift64Star::new(0xbdda);
    for case in 0..CASES {
        let e = random_expr(&mut rng, 4);
        let mgr = BddManager::new(2 * NVARS);
        let f = build(&mgr, &e);
        let perm = if case % 2 == 0 {
            random_full_permutation(&mut rng)
        } else {
            random_partial_map(&mut rng)
        };
        // A partial map may collide with an unmapped support variable;
        // both paths must then reject with the same error.
        let direct = match (f.try_replace(&perm), f.try_replace_rebuild(&perm)) {
            (Ok(d), Ok(r)) => {
                assert_eq!(d, r, "case {case}: paths diverge on {perm:?}");
                d
            }
            (Err(a), Err(b)) => {
                assert_eq!(a, b, "case {case}: paths reject differently");
                continue;
            }
            (d, r) => panic!("case {case}: one path failed: {d:?} vs {r:?}"),
        };
        let table = wide_truth_table(&direct);
        for bits in 0..(1u32 << (2 * NVARS)) {
            // g(y) = f(x) with x_v = y_{perm(v)}: variable v of f reads
            // the bit the permutation moved it to.
            let mut x = 0u32;
            for v in 0..NVARS as u32 {
                if (bits >> perm.apply(v)) & 1 == 1 {
                    x |= 1 << v;
                }
            }
            assert_eq!(
                table[bits as usize],
                eval(&e, x),
                "case {case} at assignment {bits:012b}"
            );
        }
    }
}

/// Invalid permutations must surface as equal errors from both paths,
/// never as panics.
#[test]
fn replace_paths_agree_on_rejection() {
    let mgr = BddManager::new(2 * NVARS);
    let f = mgr.var(0).and(&mgr.var(1));
    // Collides with var 1, which is in the support.
    let collide = Permutation::try_from_pairs(&[(0, 1)]).expect("pairs are injective");
    assert_eq!(f.try_replace(&collide), f.try_replace_rebuild(&collide));
    assert!(f.try_replace(&collide).is_err());
}

#[test]
fn ite_matches_model() {
    let mut rng = XorShift64Star::new(0xbdd6);
    for _ in 0..CASES {
        let a = random_expr(&mut rng, 3);
        let b = random_expr(&mut rng, 3);
        let c = random_expr(&mut rng, 3);
        let mgr = BddManager::new(NVARS);
        let f = build(&mgr, &a);
        let g = build(&mgr, &b);
        let h = build(&mgr, &c);
        let r = f.ite(&g, &h);
        let table = truth_table(&r);
        for bits in 0..(1u32 << NVARS) {
            let expect = if eval(&a, bits) {
                eval(&b, bits)
            } else {
                eval(&c, bits)
            };
            assert_eq!(table[bits as usize], expect);
        }
    }
}

#[test]
fn gc_is_transparent() {
    let mut rng = XorShift64Star::new(0xbdd7);
    for _ in 0..CASES {
        let e = random_expr(&mut rng, 4);
        let mgr = BddManager::new(NVARS);
        let f = build(&mgr, &e);
        let count_before = f.satcount();
        let shape_before = f.shape();
        mgr.gc();
        assert_eq!(f.satcount(), count_before);
        assert_eq!(f.shape(), shape_before);
        // Rebuilding the same expression yields the identical node.
        let f2 = build(&mgr, &e);
        assert_eq!(f, f2);
    }
}

#[test]
fn zdd_set_algebra() {
    use std::collections::BTreeSet;
    let mut rng = XorShift64Star::new(0xbdd8);
    let random_family = |rng: &mut XorShift64Star| -> Vec<Vec<u32>> {
        (0..rng.gen_range(0..8))
            .map(|_| {
                (0..rng.gen_range(0..4))
                    .map(|_| rng.gen_range(0..8) as u32)
                    .collect()
            })
            .collect()
    };
    for _ in 0..CASES {
        let sets_a = random_family(&mut rng);
        let sets_b = random_family(&mut rng);
        let z = ZddManager::new(8);
        let norm = |sets: &Vec<Vec<u32>>| -> BTreeSet<BTreeSet<u32>> {
            sets.iter().map(|s| s.iter().copied().collect()).collect()
        };
        let (ma, mb) = (norm(&sets_a), norm(&sets_b));
        let a = z.family(&sets_a);
        let b = z.family(&sets_b);
        let check = |zid, model: BTreeSet<BTreeSet<u32>>| {
            let got: BTreeSet<BTreeSet<u32>> = z
                .sets(zid)
                .into_iter()
                .map(|s| s.into_iter().collect())
                .collect();
            got == model
        };
        assert!(check(z.union(a, b), ma.union(&mb).cloned().collect()));
        assert!(check(z.intersect(a, b), ma.intersection(&mb).cloned().collect()));
        assert!(check(z.diff(a, b), ma.difference(&mb).cloned().collect()));
        assert_eq!(z.count(a), ma.len() as f64);
    }
}
