//! Stress tests for the kernel's memory management: automatic GC
//! triggering, unique-table growth, cache invalidation across
//! collections, and heavy churn with live roots.

use jedd_bdd::{BddManager, Permutation};

/// Builds a moderately large BDD (a comparator-like function).
fn big_function(m: &BddManager, shift: u64) -> jedd_bdd::Bdd {
    let bits: Vec<u32> = (0..20).collect();
    let mut acc = m.constant_false();
    for k in 0..200u64 {
        acc = acc.or(&m.encode_value(&bits, (k * 5003 + shift) % (1 << 20)));
    }
    acc
}

#[test]
fn automatic_gc_triggers_under_churn() {
    let m = BddManager::new(20);
    let keep = big_function(&m, 0);
    let count_before = keep.satcount();
    // Allocate and drop lots of garbage; the arena should not grow without
    // bound because maybe_gc fires between top-level operations.
    for round in 1..60u64 {
        let junk = big_function(&m, round * 977);
        let mixed = junk.xor(&keep);
        drop(mixed);
        drop(junk);
    }
    let stats = m.kernel_stats();
    assert!(
        stats.gc_runs >= 1,
        "expected at least one automatic collection, stats: {stats:?}"
    );
    assert!(stats.gc_reclaimed > 0);
    // The kept function survived every collection intact.
    assert_eq!(keep.satcount(), count_before);
}

#[test]
fn unique_table_grows_and_stays_canonical() {
    let m = BddManager::new(24);
    m.set_gc_enabled(false);
    let bits: Vec<u32> = (0..24).collect();
    let mut acc = m.constant_false();
    for k in 0..2000u64 {
        acc = acc.or(&m.encode_value(&bits, (k * 7919) % (1 << 24)));
    }
    assert_eq!(acc.satcount(), 2000.0);
    // Canonicity after many table growths: rebuilding one of the encoded
    // values yields a node already in `acc`'s closure.
    let probe = m.encode_value(&bits, 7919);
    assert_eq!(probe.and(&acc), probe);
    m.set_gc_enabled(true);
}

#[test]
fn results_stable_across_manual_gcs() {
    let m = BddManager::new(16);
    let bits: Vec<u32> = (0..16).collect();
    let a = big16(&m, 1);
    let b = big16(&m, 2);
    let and1 = a.and(&b);
    m.gc();
    // Recompute after collection: cache was cleared, result must be the
    // same canonical node.
    let and2 = a.and(&b);
    assert_eq!(and1, and2);
    let _ = bits;

    fn big16(m: &BddManager, seed: u64) -> jedd_bdd::Bdd {
        let bits: Vec<u32> = (0..16).collect();
        let mut acc = m.constant_false();
        for k in 0..300u64 {
            acc = acc.or(&m.encode_value(&bits, (k * 31 + seed * 7) % (1 << 16)));
        }
        acc
    }
}

#[test]
fn deep_replace_chain_with_gc() {
    // Repeatedly move a relation back and forth between two blocks while
    // garbage accumulates; semantics must hold throughout.
    let m = BddManager::new(32);
    let left: Vec<u32> = (0..16).collect();
    let right: Vec<u32> = (16..32).collect();
    let to_right = Permutation::from_pairs(
        &left.iter().copied().zip(right.iter().copied()).collect::<Vec<_>>(),
    );
    let to_left = to_right.inverse();
    let mut f = m.constant_false();
    for k in 0..100u64 {
        f = f.or(&m.encode_value(&left, k * 523 % (1 << 16)));
    }
    let original = f.clone();
    for _ in 0..25 {
        f = f.replace(&to_right);
        f = f.replace(&to_left);
    }
    assert_eq!(f, original);
    m.gc();
    assert_eq!(f.satcount(), original.satcount());
}

#[test]
fn thousands_of_live_handles() {
    // Many external handles at once: refcounts and GC must respect all.
    let m = BddManager::new(12);
    let bits: Vec<u32> = (0..12).collect();
    let handles: Vec<jedd_bdd::Bdd> = (0..3000u64)
        .map(|k| m.encode_value(&bits, k % (1 << 12)))
        .collect();
    m.gc();
    for (k, h) in handles.iter().enumerate() {
        assert_eq!(h.satcount(), 1.0, "handle {k} damaged by GC");
    }
}

#[test]
fn cache_hit_rate_is_nontrivial() {
    // Re-running the same op mix should mostly hit the operation cache.
    let m = BddManager::new(16);
    let a = m.var(0).xor(&m.var(5)).xor(&m.var(10));
    let b = m.var(3).or(&m.var(7));
    for _ in 0..50 {
        let _ = a.and(&b);
        let _ = a.or(&b);
        let _ = a.xor(&b);
    }
    let stats = m.kernel_stats();
    assert!(
        stats.cache_hits * 2 > stats.cache_lookups,
        "expected a cache-dominated workload: {stats:?}"
    );
}
