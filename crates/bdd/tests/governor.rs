//! Tests for the resource governor: budgets, the GC/reorder recovery
//! ladder, cooperative cancellation, and fault injection.

use jedd_bdd::rng::XorShift64Star;
use jedd_bdd::{Bdd, BddError, BddManager, Budget, CancelToken, FailPlan};
use std::time::{Duration, Instant};

/// A dense BDD (a union of random minterms over `nbits` variables) whose
/// pairwise conjunctions take well over `Budget::CHECK_INTERVAL` recursion
/// steps, so periodic deadline/cancellation probes are guaranteed to fire.
fn dense(mgr: &BddManager, nbits: usize, terms: usize, seed: u64) -> Bdd {
    let mut rng = XorShift64Star::new(seed);
    let bits: Vec<u32> = (0..nbits as u32).collect();
    let mut acc = mgr.constant_false();
    for _ in 0..terms {
        let value = rng.next_u64() & ((1u64 << nbits) - 1);
        acc = acc.or(&mgr.encode_value(&bits, value));
    }
    acc
}

#[test]
fn unbudgeted_try_ops_agree_with_plain_ops() {
    let mgr = BddManager::new(8);
    let f = mgr.var(0).xor(&mgr.var(3));
    let g = mgr.var(1).or(&mgr.nvar(5));
    assert!(!mgr.budget().is_limited());
    assert_eq!(f.try_and(&g).unwrap(), f.and(&g));
    assert_eq!(f.try_or(&g).unwrap(), f.or(&g));
    assert_eq!(f.try_xor(&g).unwrap(), f.xor(&g));
    assert_eq!(f.try_not().unwrap(), f.not());
    assert_eq!(
        f.try_exists(&mgr.cube(&[0])).unwrap(),
        f.exists(&mgr.cube(&[0]))
    );
}

#[test]
fn step_limit_fires_and_reports_counts() {
    let mgr = BddManager::new(24);
    let f = dense(&mgr, 24, 200, 1);
    let g = dense(&mgr, 24, 200, 2);
    mgr.set_budget(Budget::unlimited().with_max_steps(100));
    match f.try_and(&g) {
        Err(BddError::StepLimit { steps, limit }) => {
            assert_eq!(limit, 100);
            assert!(steps > limit);
        }
        other => panic!("expected StepLimit, got {other:?}"),
    }
    assert!(mgr.kernel_stats().budget_failures >= 1);
    // Lifting the budget lets the same operation complete.
    mgr.set_budget(Budget::unlimited());
    let r = f.try_and(&g).unwrap();
    assert_eq!(r, f.and(&g));
}

#[test]
fn step_counter_resets_per_operation() {
    let mgr = BddManager::new(16);
    let f = mgr.var(0).xor(&mgr.var(1)).xor(&mgr.var(2));
    let g = mgr.var(3).xor(&mgr.var(4));
    mgr.set_budget(Budget::unlimited().with_max_steps(500));
    // Many small operations in sequence: each is far below the limit, so
    // none may fail even though the total step count exceeds it.
    for _ in 0..100 {
        f.try_and(&g).unwrap();
        f.try_xor(&g).unwrap();
    }
}

/// Two overlapping equality relations (x = y and y = z) whose conjunction
/// takes a couple of thousand recursion steps — comfortably past
/// `Budget::CHECK_INTERVAL`, so deadline/cancellation probes fire.
fn equality_chain(mgr: &BddManager) -> (Bdd, Bdd) {
    let xs: Vec<u32> = (0..8).collect();
    let ys: Vec<u32> = (8..16).collect();
    let zs: Vec<u32> = (16..24).collect();
    (mgr.equal_vectors(&xs, &ys), mgr.equal_vectors(&ys, &zs))
}

#[test]
fn deadline_fires_on_expensive_op() {
    let mgr = BddManager::new(24);
    let (f, g) = equality_chain(&mgr);
    mgr.set_budget(Budget::unlimited().with_deadline(Instant::now()));
    match f.try_and(&g) {
        Err(BddError::Deadline) => {}
        other => panic!("expected Deadline, got {other:?}"),
    }
    mgr.set_budget(Budget::unlimited().with_timeout(Duration::from_secs(3600)));
    assert_eq!(f.try_and(&g).unwrap(), {
        mgr.set_budget(Budget::unlimited());
        f.and(&g)
    });
}

#[test]
fn cancellation_is_observed() {
    let mgr = BddManager::new(24);
    let (f, g) = equality_chain(&mgr);
    let token = CancelToken::new();
    mgr.set_budget(Budget::unlimited().with_cancel(token.clone()));
    // Not cancelled: completes.
    let r = f.try_and(&g).unwrap();
    let r_count = r.satcount();
    // Cancelled: the next expensive operation observes the token. GC now
    // keeps cache entries whose nodes survive, so the result handle is
    // dropped first — its death makes the sweep evict the (f, g) entry
    // and forces a real recomputation.
    drop(r);
    mgr.gc();
    token.cancel();
    match f.try_and(&g) {
        Err(BddError::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    // Reset revives the manager.
    token.reset();
    assert_eq!(f.try_and(&g).unwrap().satcount(), r_count);
}

#[test]
fn cache_entries_with_live_nodes_survive_gc() {
    let mgr = BddManager::new(24);
    let (f, g) = equality_chain(&mgr);
    // Populate the cache and keep every participant (operands and result)
    // externally referenced across the collection.
    let r = f.try_and(&g).unwrap();
    let before = mgr.kernel_stats();
    mgr.gc();
    let swept = mgr.kernel_stats();
    assert!(swept.cache_sweeps > before.cache_sweeps, "gc must sweep the cache");
    assert!(swept.cache_entries_kept > 0, "live entries must survive the sweep");
    // Replaying the operation now answers from the surviving cache: hits
    // grow, and the top-level entry resolves without a single new node.
    let nodes_before = swept.nodes_created;
    let r2 = f.try_and(&g).unwrap();
    let after = mgr.kernel_stats();
    assert_eq!(r2, r);
    assert!(
        after.cache_hits > swept.cache_hits,
        "surviving entries must hit after gc ({} -> {})",
        swept.cache_hits,
        after.cache_hits
    );
    assert_eq!(
        after.nodes_created, nodes_before,
        "a fully cached replay must allocate nothing"
    );
}

#[test]
fn cache_sweep_never_resurrects_freed_node_ids() {
    let mgr = BddManager::new(24);
    // Several rounds of: cache operations on short-lived functions, drop
    // them, collect (freeing their ids), then build fresh functions that
    // reuse those ids. A stale cache entry surviving its nodes would make
    // some later operation return a structurally wrong result.
    for round in 0..6u64 {
        {
            let junk_a = dense(&mgr, 24, 30, 1000 + round);
            let junk_b = dense(&mgr, 24, 30, 2000 + round);
            let _ = junk_a.try_and(&junk_b).unwrap();
            let _ = junk_a.try_or(&junk_b).unwrap();
        }
        mgr.gc();
        // Fresh functions now occupy recycled ids. Verify semantics
        // against a clean manager that never went through the cycle.
        let clean = BddManager::new(24);
        let fa = dense(&mgr, 24, 20, 3000 + round);
        let fb = dense(&mgr, 24, 20, 4000 + round);
        let ca = dense(&clean, 24, 20, 3000 + round);
        let cb = dense(&clean, 24, 20, 4000 + round);
        assert_eq!(
            fa.try_and(&fb).unwrap().satcount(),
            ca.and(&cb).satcount(),
            "round {round}: and diverged after id reuse"
        );
        assert_eq!(
            fa.try_xor(&fb).unwrap().satcount(),
            ca.xor(&cb).satcount(),
            "round {round}: xor diverged after id reuse"
        );
    }
    let stats = mgr.kernel_stats();
    assert!(
        stats.cache_entries_swept > 0,
        "the rounds above must actually have evicted dead entries"
    );
}

#[test]
fn node_limit_recovers_via_gc_retry() {
    let mgr = BddManager::new(16);
    let keep_a = dense(&mgr, 16, 40, 7);
    let keep_b = dense(&mgr, 16, 40, 8);
    // Pile up garbage: these intermediates die at the end of the scope but
    // stay in the arena until a collection runs.
    {
        let mut junk = mgr.constant_false();
        for i in 0..60 {
            junk = junk.or(&dense(&mgr, 16, 20, 100 + i));
        }
    }
    let live_with_garbage = mgr.live_nodes();
    // A budget the *live* data fits comfortably, but the garbage-laden
    // arena does not: the first attempt must hit NodeLimit and the ladder's
    // GC retry must save it.
    mgr.set_budget(Budget::unlimited().with_max_live_nodes(live_with_garbage));
    let before = mgr.kernel_stats();
    let r = keep_a.try_or(&keep_b).expect("GC retry should recover");
    let after = mgr.kernel_stats();
    assert!(
        after.ladder_gc_retries > before.ladder_gc_retries,
        "expected the recovery ladder's GC rung to run"
    );
    assert_eq!(after.budget_failures, before.budget_failures);
    mgr.set_budget(Budget::unlimited());
    assert_eq!(r, keep_a.or(&keep_b));
}

#[test]
fn node_limit_recovers_via_reorder_retry() {
    // equal_vectors over block-ordered variables is exponential in the
    // sequential order but linear once sifting interleaves the blocks: GC
    // alone cannot shrink the live data, only the reorder rung can.
    let mgr = BddManager::new(16);
    let xs: Vec<u32> = (0..8).collect();
    let ys: Vec<u32> = (8..16).collect();
    let eq = mgr.equal_vectors(&xs, &ys);
    mgr.gc();
    let live_before = mgr.live_nodes();
    assert!(live_before > 100, "sequential order should be large");
    mgr.set_budget(Budget::unlimited().with_max_live_nodes(live_before));
    let before = mgr.kernel_stats();
    let r = eq
        .try_and(&mgr.try_var(0).expect("var allocation within ladder"))
        .expect("reorder retry should recover");
    let after = mgr.kernel_stats();
    assert!(
        after.ladder_reorder_retries > before.ladder_reorder_retries,
        "expected the recovery ladder's reorder rung to run"
    );
    mgr.set_budget(Budget::unlimited());
    assert_eq!(r, eq.and(&mgr.var(0)));
    assert!(mgr.live_nodes() < live_before);
}

#[test]
fn node_limit_fails_after_ladder_and_arena_stays_consistent() {
    let mgr = BddManager::new(16);
    let f = dense(&mgr, 16, 60, 9);
    let g = dense(&mgr, 16, 60, 10);
    let f_count = f.satcount();
    mgr.gc();
    // Impossible budget: far below even the compacted live size.
    mgr.set_budget(Budget::unlimited().with_max_live_nodes(8));
    match f.try_or(&g) {
        Err(BddError::NodeLimit { live, limit }) => {
            assert_eq!(limit, 8);
            assert!(live >= limit);
        }
        other => panic!("expected NodeLimit, got {other:?}"),
    }
    assert!(mgr.kernel_stats().budget_failures >= 1);
    // The failed operation must not have corrupted anything.
    mgr.set_budget(Budget::unlimited());
    mgr.gc();
    assert_eq!(f.satcount(), f_count);
    assert_eq!(f.try_or(&g).unwrap(), f.or(&g));
}

#[test]
fn injected_alloc_failure_leaves_kernel_invariants_intact() {
    let mgr = BddManager::new(12);
    let f = dense(&mgr, 12, 30, 11);
    let g = dense(&mgr, 12, 30, 12);
    let vars: Vec<u32> = (0..12).collect();
    let f_sats = f.sat_assignments(&vars);
    mgr.gc();
    let live_clean = mgr.live_nodes();

    // Fail the 5th allocation after the plan is installed; the conjunction
    // needs far more, so it must abort mid-recursion.
    mgr.set_fail_plan(Some(FailPlan::fail_alloc_at(5)));
    match f.try_and(&g) {
        Err(BddError::FaultInjected { kind, at }) => {
            assert_eq!(kind, "alloc");
            assert_eq!(at, 5);
        }
        other => panic!("expected FaultInjected, got {other:?}"),
    }
    mgr.set_fail_plan(None);

    // Invariant 1: externally referenced BDDs are untouched.
    assert_eq!(f.sat_assignments(&vars), f_sats);
    // Invariant 2: the orphaned partial results carry no references, so a
    // collection returns the arena to its pre-failure size.
    mgr.gc();
    assert_eq!(mgr.live_nodes(), live_clean);
    // Invariant 3: the unique table still canonicalises — rebuilding an
    // existing function finds the identical node.
    let f2 = dense(&mgr, 12, 30, 11);
    assert_eq!(f2, f);
    // Invariant 4: the aborted operation runs correctly afterwards.
    let r = f.try_and(&g).unwrap();
    assert_eq!(r, f.and(&g));
}

#[test]
fn injected_alloc_failure_fires_exactly_once() {
    let mgr = BddManager::new(12);
    let f = dense(&mgr, 12, 30, 13);
    let g = dense(&mgr, 12, 30, 14);
    mgr.set_fail_plan(Some(FailPlan::fail_alloc_at(3)));
    assert!(f.try_or(&g).is_err());
    // The counter has moved past the trigger point: later operations on
    // the same plan succeed (one-shot semantics).
    let r = f.try_xor(&g).unwrap();
    mgr.set_fail_plan(None);
    assert_eq!(r, f.xor(&g));
}

#[test]
fn skipped_cache_inserts_do_not_change_results() {
    let plain = BddManager::new(14);
    let lossy = BddManager::new(14);
    lossy.set_fail_plan(Some(FailPlan::skip_cache_insert_every(3)));
    let fp = dense(&plain, 14, 50, 15);
    let gp = dense(&plain, 14, 50, 16);
    let fl = dense(&lossy, 14, 50, 15);
    let gl = dense(&lossy, 14, 50, 16);
    let vars: Vec<u32> = (0..14).collect();
    assert_eq!(
        fp.and(&gp).sat_assignments(&vars),
        fl.try_and(&gl).unwrap().sat_assignments(&vars)
    );
    assert_eq!(
        fp.exists(&plain.cube(&[0, 5])).sat_assignments(&vars),
        fl.try_exists(&lossy.cube(&[0, 5]))
            .unwrap()
            .sat_assignments(&vars)
    );
}

#[test]
fn reorder_is_exempt_from_budgets() {
    let mgr = BddManager::new(16);
    let xs: Vec<u32> = (0..8).collect();
    let ys: Vec<u32> = (8..16).collect();
    let eq = mgr.equal_vectors(&xs, &ys);
    mgr.gc();
    // Even under an impossible budget, explicit reordering must succeed
    // (it is the recovery mechanism, so it cannot itself be governed).
    mgr.set_budget(Budget::unlimited().with_max_live_nodes(4));
    let (before, after) = mgr.reorder_sift();
    assert!(after <= before);
    mgr.set_budget(Budget::unlimited());
    assert_eq!(eq, mgr.equal_vectors(&xs, &ys));
}

#[test]
#[should_panic(expected = "exhausted its resource budget")]
fn infallible_api_panics_on_exhaustion() {
    let mgr = BddManager::new(24);
    let f = dense(&mgr, 24, 200, 17);
    let g = dense(&mgr, 24, 200, 18);
    mgr.set_budget(Budget::unlimited().with_max_steps(50));
    let _ = f.and(&g);
}
