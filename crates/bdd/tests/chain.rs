//! Differential tests for the chain-reduced (CBDD/CZDD) kernel modes
//! against the plain managers, plus the offline order-search lab.

use jedd_bdd::rng::XorShift64Star;
use jedd_bdd::{BddManager, Permutation, ZddManager};

const NVARS: usize = 16;

fn random_values(rng: &mut XorShift64Star, count: usize) -> Vec<u64> {
    let mut out: Vec<u64> = (0..count)
        .map(|_| rng.gen_range(0..1u64 << NVARS))
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Builds the set-of-minterms BDD for `values` in `m`.
fn build_set(m: &BddManager, bits: &[u32], values: &[u64]) -> jedd_bdd::Bdd {
    let mut acc = m.constant_false();
    for &v in values {
        acc = acc.or(&m.encode_value(bits, v));
    }
    acc
}

#[test]
fn cbdd_matches_bdd_on_random_sets() {
    let bits: Vec<u32> = (0..NVARS as u32).collect();
    for seed in 0..6u64 {
        let mut rng = XorShift64Star::new(seed * 0x9e37 + 1);
        let plain = BddManager::new(NVARS);
        let chain = BddManager::new_chained(NVARS);
        assert!(chain.chain_mode() && !plain.chain_mode());

        let va = random_values(&mut rng, 24);
        let vb = random_values(&mut rng, 24);
        let pa = build_set(&plain, &bits, &va);
        let pb = build_set(&plain, &bits, &vb);
        let ca = build_set(&chain, &bits, &va);
        let cb = build_set(&chain, &bits, &vb);

        for (p, c) in [
            (pa.or(&pb), ca.or(&cb)),
            (pa.and(&pb), ca.and(&cb)),
            (pa.diff(&pb), ca.diff(&cb)),
            (pa.xor(&pb), ca.xor(&cb)),
            (pa.ite(&pb, &pb.not()), ca.ite(&cb, &cb.not())),
        ] {
            assert_eq!(p.satcount_exact(), c.satcount_exact(), "seed {seed}");
            assert_eq!(
                p.sat_assignments(&bits),
                c.sat_assignments(&bits),
                "seed {seed}"
            );
            assert!(
                c.node_count() <= p.node_count(),
                "seed {seed}: chain {} > plain {}",
                c.node_count(),
                p.node_count()
            );
        }
        assert_eq!(pa.is_subset(&pb), ca.is_subset(&cb), "seed {seed}");
        assert_eq!(
            pa.is_subset(&pa.or(&pb)),
            ca.is_subset(&ca.or(&cb)),
            "seed {seed}"
        );
    }
}

#[test]
fn cbdd_quantification_and_replace_match() {
    let bits: Vec<u32> = (0..NVARS as u32).collect();
    let quant: Vec<u32> = vec![1, 4, 9, 12];
    let perm = Permutation::from_pairs(&[(0, 15), (15, 0), (3, 7), (7, 3)]);
    for seed in 0..6u64 {
        let mut rng = XorShift64Star::new(seed * 0x51ed + 3);
        let plain = BddManager::new(NVARS);
        let chain = BddManager::new_chained(NVARS);
        let va = random_values(&mut rng, 20);
        let vb = random_values(&mut rng, 20);
        let pa = build_set(&plain, &bits, &va);
        let pb = build_set(&plain, &bits, &vb);
        let ca = build_set(&chain, &bits, &va);
        let cb = build_set(&chain, &bits, &vb);

        let p_cube = plain.cube(&quant);
        let c_cube = chain.cube(&quant);
        let p_ex = pa.exists(&p_cube);
        let c_ex = ca.exists(&c_cube);
        assert_eq!(
            p_ex.sat_assignments(&bits),
            c_ex.sat_assignments(&bits),
            "exists, seed {seed}"
        );
        let p_ae = pa.and_exists(&pb, &p_cube);
        let c_ae = ca.and_exists(&cb, &c_cube);
        assert_eq!(
            p_ae.sat_assignments(&bits),
            c_ae.sat_assignments(&bits),
            "and_exists, seed {seed}"
        );
        let p_fa = pa.forall(&p_cube);
        let c_fa = ca.forall(&c_cube);
        assert_eq!(
            p_fa.sat_assignments(&bits),
            c_fa.sat_assignments(&bits),
            "forall, seed {seed}"
        );
        let p_rp = pa.replace(&perm);
        let c_rp = ca.replace(&perm);
        assert_eq!(
            p_rp.sat_assignments(&bits),
            c_rp.sat_assignments(&bits),
            "replace, seed {seed}"
        );
        let c_rb = ca.try_replace_rebuild(&perm).unwrap();
        assert_eq!(c_rp, c_rb, "replace oracle, seed {seed}");
        assert_eq!(
            pa.cofactor(&[(2, true), (9, false)]).sat_assignments(&bits),
            ca.cofactor(&[(2, true), (9, false)]).sat_assignments(&bits),
            "cofactor, seed {seed}"
        );
    }
}

#[test]
fn cbdd_witnesses_and_dot() {
    let chain = BddManager::new_chained(12);
    let bits: Vec<u32> = (0..12).collect();
    // A single sparse minterm forces long chains.
    let f = chain.encode_value(&bits, 1);
    let sat = f.one_sat().expect("satisfiable");
    let mut cube = chain.constant_true();
    for (v, val) in &sat {
        cube = cube.and(&if *val { chain.var(*v) } else { chain.nvar(*v) });
    }
    assert_eq!(cube.and(&f), cube);
    let dot = f.to_dot("chain");
    assert!(dot.contains(".."), "chain interval label expected: {dot}");
    let stats = chain.kernel_stats();
    assert!(stats.chain_nodes_created > 0, "chains must form");
    assert!(stats.chain_len_max >= 2);
}

#[test]
fn chain_reduction_shrinks_sparse_cubes() {
    // A long run of negated variables ending in one positive literal is
    // the CBDD sweet spot: the whole spine collapses to one chain node.
    const N: usize = 24;
    let plain = BddManager::new(N);
    let chain = BddManager::new_chained(N);
    let cube = |m: &BddManager| {
        let mut f = m.constant_true();
        for v in 0..N as u32 - 1 {
            f = f.and(&m.nvar(v));
        }
        f.and(&m.var(N as u32 - 1))
    };
    let p = cube(&plain);
    let c = cube(&chain);
    assert_eq!(p.satcount_exact(), c.satcount_exact());
    assert_eq!(p.node_count(), N, "plain spine is one node per level");
    assert_eq!(c.node_count(), 1, "chain collapses the spine to one node");
    // An OR of two such tails still shrinks dramatically.
    let p2 = p.or(&plain.encode_value(&(0..N as u32).collect::<Vec<_>>(), 0));
    let c2 = c.or(&chain.encode_value(&(0..N as u32).collect::<Vec<_>>(), 0));
    assert_eq!(p2.satcount_exact(), c2.satcount_exact());
    assert!(
        c2.node_count() * 2 < p2.node_count(),
        "sparse union must shrink: chain {} plain {}",
        c2.node_count(),
        p2.node_count()
    );
}

#[test]
fn chain_export_round_trips_across_modes() {
    let bits: Vec<u32> = (0..NVARS as u32).collect();
    let mut rng = XorShift64Star::new(0xC0FFEE);
    let values = random_values(&mut rng, 30);
    let chain = BddManager::new_chained(NVARS);
    let plain = BddManager::new(NVARS);
    let c = build_set(&chain, &bits, &values);
    let p = build_set(&plain, &bits, &values);

    // Chain -> plain: the exported table is the plain spine expansion.
    let (nodes, roots) = chain.export_nodes(&[&c]);
    let into_plain = BddManager::new(NVARS);
    let got = into_plain.import_nodes(&nodes, &roots).unwrap();
    assert_eq!(got[0].sat_assignments(&bits), p.sat_assignments(&bits));
    assert_eq!(got[0].node_count(), p.node_count(), "expansion is the plain BDD");

    // Plain -> chain: chain-aware mk re-forms the chains on import.
    let (pnodes, proots) = plain.export_nodes(&[&p]);
    let into_chain = BddManager::new_chained(NVARS);
    let got2 = into_chain.import_nodes(&pnodes, &proots).unwrap();
    assert_eq!(got2[0].sat_assignments(&bits), p.sat_assignments(&bits));
    assert_eq!(got2[0].node_count(), c.node_count(), "chains re-form");
}

#[test]
fn czdd_matches_zdd_on_random_families() {
    for seed in 0..6u64 {
        let mut rng = XorShift64Star::new(seed * 0xABCD + 7);
        let plain = ZddManager::new(NVARS);
        let chain = ZddManager::new_chained(NVARS);
        assert!(chain.chain_mode() && !plain.chain_mode());
        let fam = |rng: &mut XorShift64Star| -> Vec<Vec<u32>> {
            (0..12)
                .map(|_| {
                    let mask = rng.gen_range(0..1u64 << NVARS);
                    (0..NVARS as u32).filter(|b| (mask >> b) & 1 == 1).collect()
                })
                .collect()
        };
        let sa = fam(&mut rng);
        let sb = fam(&mut rng);
        let pa = plain.family(&sa);
        let pb = plain.family(&sb);
        let ca = chain.family(&sa);
        let cb = chain.family(&sb);
        assert_eq!(plain.sets(pa), chain.sets(ca), "family, seed {seed}");
        assert!(
            chain.node_count(ca) <= plain.node_count(pa),
            "seed {seed}: czdd {} > zdd {}",
            chain.node_count(ca),
            plain.node_count(pa)
        );

        let pairs = [
            (plain.union(pa, pb), chain.union(ca, cb)),
            (plain.intersect(pa, pb), chain.intersect(ca, cb)),
            (plain.diff(pa, pb), chain.diff(ca, cb)),
        ];
        for (i, &(p, c)) in pairs.iter().enumerate() {
            assert_eq!(plain.sets(p), chain.sets(c), "op {i}, seed {seed}");
            assert_eq!(plain.count(p), chain.count(c), "count {i}, seed {seed}");
            assert!(
                chain.node_count(c) <= plain.node_count(p),
                "op {i}, seed {seed}"
            );
        }
        for var in [0u32, 5, 11, 15] {
            assert_eq!(
                plain.sets(plain.subset0(pa, var)),
                chain.sets(chain.subset0(ca, var)),
                "subset0 v{var}, seed {seed}"
            );
            assert_eq!(
                plain.sets(plain.subset1(pa, var)),
                chain.sets(chain.subset1(ca, var)),
                "subset1 v{var}, seed {seed}"
            );
            assert_eq!(
                plain.sets(plain.change(pa, var)),
                chain.sets(chain.change(ca, var)),
                "change v{var}, seed {seed}"
            );
            assert_eq!(
                plain.sets(plain.abstract_var(pa, var)),
                chain.sets(chain.abstract_var(ca, var)),
                "abstract v{var}, seed {seed}"
            );
        }
    }
}

#[test]
fn czdd_dont_care_chains_shrink() {
    // A family of all subsets of {0..n-1} crossed with {n} is one long
    // don't-care chain in a CZDD.
    const N: u32 = 16;
    let plain = ZddManager::new(N as usize + 1);
    let chain = ZddManager::new_chained(N as usize + 1);
    let mut all: Vec<Vec<u32>> = vec![vec![]];
    for v in 0..N {
        let mut next = all.clone();
        for s in &all {
            let mut t = s.clone();
            t.push(v);
            next.push(t);
        }
        all = next;
        if all.len() > 4096 {
            break;
        }
    }
    for s in &mut all {
        s.push(N);
    }
    let p = plain.family(&all);
    let c = chain.family(&all);
    assert_eq!(plain.count(p), chain.count(c));
    assert!(
        chain.node_count(c) < plain.node_count(p),
        "don't-care chain must shrink: czdd {} zdd {}",
        chain.node_count(c),
        plain.node_count(p)
    );
}

#[test]
fn czdd_export_round_trips_across_modes() {
    let chain = ZddManager::new_chained(10);
    let plain = ZddManager::new(10);
    let sets: Vec<Vec<u32>> = vec![
        vec![9],
        vec![0, 9],
        vec![1, 9],
        vec![0, 1, 9],
        vec![2, 5, 7],
    ];
    let c = chain.family(&sets);
    let p = plain.family(&sets);
    let (nodes, roots) = chain.export_nodes(&[c]);
    let into_plain = ZddManager::new(10);
    let got = into_plain.import_nodes(&nodes, &roots).unwrap();
    assert_eq!(into_plain.sets(got[0]), plain.sets(p));
    let (pnodes, proots) = plain.export_nodes(&[p]);
    let into_chain = ZddManager::new_chained(10);
    let got2 = into_chain.import_nodes(&pnodes, &proots).unwrap();
    assert_eq!(into_chain.sets(got2[0]), chain.sets(c));
    assert_eq!(into_chain.node_count(got2[0]), chain.node_count(c));
}

#[test]
fn order_search_beats_bad_blocked_order() {
    // Blocked equality is the classic exponential-order case; the search
    // must land near the interleaved linear-size order.
    const BITS: u32 = 8;
    let m = BddManager::new((2 * BITS) as usize);
    let xs: Vec<u32> = (0..BITS).collect();
    let ys: Vec<u32> = (BITS..2 * BITS).collect();
    let f = m.equal_vectors(&xs, &ys);
    let count_before_search = f.satcount_exact();
    let rounds = std::env::var("JEDD_ORDER_SEARCH_ROUNDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(2);
    let (before, after) = m.order_search(rounds, 0xBEEF);
    assert!(
        after * 10 < before,
        "order search must collapse blocked equality: {before} -> {after}"
    );
    assert_eq!(f.satcount_exact(), count_before_search, "function preserved");
    assert!(m.kernel_stats().sift_sweeps >= 1, "sweeps are counted");
}

#[test]
fn chain_managers_are_order_static() {
    let m = BddManager::new_chained(8);
    let bits: Vec<u32> = (0..8).collect();
    let f = build_set(&m, &bits, &[1, 2, 128, 129]);
    let (b, a) = m.reorder_sift();
    assert_eq!(b, a, "reorder degrades to a collection");
    let (b2, a2) = m.order_search(3, 42);
    assert_eq!(b2, a2, "order search degrades to a collection");
    assert_eq!(m.kernel_stats().sift_sweeps, 0, "no sweeps in chain mode");
    assert_eq!(f.satcount_exact(), Some(4));
}

#[test]
fn chained_manager_accepts_learned_order() {
    // The learned-order workflow: declare the order on a fresh chain
    // manager, then build; results must match a plain manager under the
    // same order.
    const BITS: u32 = 6;
    let order: Vec<u32> = (0..BITS).flat_map(|i| [i, i + BITS]).collect();
    let chain = BddManager::new_chained((2 * BITS) as usize);
    chain.set_order(&order).unwrap();
    let plain = BddManager::new((2 * BITS) as usize);
    plain.set_order(&order).unwrap();
    let xs: Vec<u32> = (0..BITS).collect();
    let ys: Vec<u32> = (BITS..2 * BITS).collect();
    let fc = chain.equal_vectors(&xs, &ys);
    let fp = plain.equal_vectors(&xs, &ys);
    assert_eq!(fc.satcount_exact(), fp.satcount_exact());
    assert!(fc.node_count() <= fp.node_count());
}

#[test]
fn op_shape_stats_recorded() {
    let m = BddManager::new(8);
    let f = m.var(0).or(&m.var(7));
    let g = m.var(3).and(&f);
    let _ = g.exists(&m.cube(&[3]));
    let stats = m.kernel_stats();
    assert!(stats.op_span_samples >= 3, "apply/exists entries sampled");
    assert!(stats.op_span_max as usize <= m.num_vars());
    assert!(stats.level_activity.iter().sum::<u64>() > 0);
}
