//! Tests for dynamic variable reordering (sifting): function preservation,
//! handle stability, and actual size reduction on order-sensitive
//! functions.

use jedd_bdd::{BddManager, Permutation};

/// The classic order-sensitive function: x0*x1 + x2*x3 + ... built under a
/// bad order (all "left" variables first).
fn bad_order_products(m: &BddManager, pairs: usize) -> jedd_bdd::Bdd {
    // Variables 0..pairs are the "left" operands, pairs..2*pairs "right".
    let mut acc = m.constant_false();
    for i in 0..pairs as u32 {
        acc = acc.or(&m.var(i).and(&m.var(pairs as u32 + i)));
    }
    acc
}

#[test]
fn sifting_shrinks_product_sum() {
    let pairs = 7;
    let m = BddManager::new(2 * pairs);
    let f = bad_order_products(&m, pairs);
    let before_nodes = f.node_count();
    let before_count = f.satcount();
    let (b, a) = m.reorder_sift();
    assert!(b >= before_nodes);
    assert!(
        a < b / 2,
        "sifting should cut the exponential order at least in half: {b} -> {a}"
    );
    // Handles still valid, same function.
    assert_eq!(f.satcount(), before_count);
    assert!(f.node_count() < before_nodes);
    // The interleaved order pairs left/right variables adjacently.
    let order = m.current_order();
    assert_eq!(order.len(), 2 * pairs);
}

#[test]
fn sifting_preserves_all_semantics() {
    let m = BddManager::new(12);
    let bits: Vec<u32> = (0..12).collect();
    let values: Vec<u64> = (0..150u64).map(|k| (k * 2654435761) % 4096).collect();
    let mut f = m.constant_false();
    for &v in &values {
        f = f.or(&m.encode_value(&bits, v));
    }
    let g = m.var(0).biimp(&m.var(6));
    let fg = f.and(&g);
    let (count_f, count_g, count_fg) = (f.satcount(), g.satcount(), fg.satcount());

    m.reorder_sift();

    // Counts unchanged.
    assert_eq!(f.satcount(), count_f);
    assert_eq!(g.satcount(), count_g);
    assert_eq!(fg.satcount(), count_fg);
    // Tuple membership unchanged (checked through enumeration, which maps
    // variables through the new order).
    let mut seen: Vec<u64> = Vec::new();
    f.foreach_sat(&bits, |a| {
        let mut v = 0u64;
        for &b in a {
            v = (v << 1) | u64::from(b);
        }
        seen.push(v);
        true
    });
    seen.sort_unstable();
    seen.dedup();
    let mut expect: Vec<u64> = values.clone();
    expect.sort_unstable();
    expect.dedup();
    assert_eq!(seen, expect);
    // Fresh operations agree with pre-reorder results.
    assert_eq!(f.and(&g), fg);
    // encode_value still finds the same tuples.
    for &v in values.iter().take(10) {
        let t = m.encode_value(&bits, v);
        assert_eq!(t.and(&f), t);
    }
}

#[test]
fn sifting_then_replace_roundtrip() {
    let m = BddManager::new(16);
    let left: Vec<u32> = (0..8).collect();
    let right: Vec<u32> = (8..16).collect();
    let f = m.equal_vectors(&left, &right);
    m.reorder_sift();
    // A full exchange permutation (left <-> right in both directions).
    let exchange: Vec<(u32, u32)> = left
        .iter()
        .copied()
        .zip(right.iter().copied())
        .flat_map(|(l, r)| [(l, r), (r, l)])
        .collect();
    let p_exchange = Permutation::from_pairs(&exchange);
    // equal_vectors is symmetric under the exchange.
    assert_eq!(f.replace(&p_exchange), f);
    // A one-directional rename round-trips on a left-only function.
    let p = Permutation::from_pairs(
        &left.iter().copied().zip(right.iter().copied()).collect::<Vec<_>>(),
    );
    let g = m.encode_value(&left, 37);
    let h = g.replace(&p);
    assert_eq!(h.replace(&p.inverse()), g);
}

#[test]
fn sifting_idempotent_at_fixpoint() {
    let m = BddManager::new(10);
    let f = bad_order_products(&m, 5);
    let (_, after1) = m.reorder_sift();
    let (before2, after2) = m.reorder_sift();
    assert_eq!(after1, before2);
    assert!(after2 <= before2, "second sift cannot grow the table");
    let _ = f;
}

#[test]
fn order_and_level_queries_consistent() {
    let m = BddManager::new(6);
    let _f = bad_order_products(&m, 3);
    m.reorder_sift();
    let order = m.current_order();
    for (level, &var) in order.iter().enumerate() {
        assert_eq!(m.level_of_var(var), level as u32);
    }
    // The order is a permutation of all variables.
    let mut sorted = order.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..6).collect::<Vec<u32>>());
}

#[test]
fn empty_and_tiny_managers() {
    let m = BddManager::new(0);
    assert_eq!(m.reorder_sift(), (0, 0));
    let m1 = BddManager::new(1);
    let f = m1.var(0);
    let (b, a) = m1.reorder_sift();
    assert_eq!((b, a), (1, 1));
    assert_eq!(f.satcount(), 1.0);
}
