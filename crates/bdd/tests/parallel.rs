//! Differential, determinism and stress tests for the parallel apply
//! engine: the same operations must produce the same functions (the same
//! satisfying assignments) at every thread count, race-free
//! `KernelStats`, and a unique table that stays consistent under
//! concurrent growth with GCs between operations. Node-*id* determinism
//! is only promised at threads = 1; the shared concurrent unique table
//! hands out fresh ids in CAS order, so ids may differ run to run at
//! higher counts while the functions never do.

use jedd_bdd::rng::XorShift64Star;
use jedd_bdd::{Bdd, BddManager, Permutation};

const NBITS: usize = 24;

/// A dense BDD (a union of random minterms) big enough to clear the test
/// cutoff, so top-level operations take the parallel path.
fn dense(mgr: &BddManager, terms: usize, seed: u64) -> Bdd {
    let mut rng = XorShift64Star::new(seed);
    let bits: Vec<u32> = (0..NBITS as u32).collect();
    let mut acc = mgr.constant_false();
    for _ in 0..terms {
        let value = rng.next_u64() & ((1u64 << NBITS) - 1);
        acc = acc.or(&mgr.encode_value(&bits, value));
    }
    acc
}

/// A fixed workload hitting every parallelised operation: the binary ops,
/// quantification, the fused relational product and replace.
fn workload(mgr: &BddManager) -> Vec<Bdd> {
    let f = dense(mgr, 300, 1);
    let g = dense(mgr, 300, 2);
    let h = dense(mgr, 300, 3);
    // Quantified / moved variables sit below the top levels: splitting
    // stops above the first such level, so deep cubes and permutations
    // leave room for the plan to fan out.
    let cube = mgr.cube(&[12, 15, 18, 21]);
    let swap = Permutation::from_pairs(&[(16, 20), (20, 16), (17, 21), (21, 17)]);
    let shift = Permutation::from_pairs(&[(20, 22), (21, 23), (22, 20), (23, 21)]);
    vec![
        f.and(&g),
        f.or(&h),
        f.diff(&g),
        g.xor(&h),
        f.exists(&cube),
        f.and_exists(&g, &cube),
        f.replace(&swap),
        h.replace(&shift),
    ]
}

fn manager(threads: usize) -> BddManager {
    let mgr = BddManager::new(NBITS);
    mgr.set_threads(threads);
    // Force parallel engagement on test-sized operands.
    mgr.set_par_cutoff(32);
    mgr
}

#[test]
fn parallel_results_match_sequential() {
    let m1 = manager(1);
    let m4 = manager(4);
    let r1 = workload(&m1);
    let r4 = workload(&m4);
    let vars: Vec<u32> = (0..NBITS as u32).collect();
    for (a, b) in r1.iter().zip(r4.iter()) {
        assert_eq!(a.satcount(), b.satcount());
        assert_eq!(a.sat_assignments(&vars), b.sat_assignments(&vars));
    }
    assert_eq!(m1.kernel_stats().par_ops, 0, "threads=1 must stay sequential");
    assert!(
        m4.kernel_stats().par_ops >= 6,
        "the workload should engage the parallel engine, got {} par ops",
        m4.kernel_stats().par_ops
    );
}

#[test]
fn functions_identical_across_thread_counts() {
    // The determinism contract of the shared-table kernel: identical
    // *functions* at every thread count. Ids are allowed to differ (fresh
    // ids are handed out in CAS order), but the satisfying assignments —
    // and therefore every relation's tuples — must coincide, and after a
    // full GC the canonical live DAGs have the same size.
    let vars: Vec<u32> = (0..NBITS as u32).collect();
    let m2 = manager(2);
    let r2 = workload(&m2);
    let base: Vec<_> = r2.iter().map(|f| f.sat_assignments(&vars)).collect();
    for threads in [4, 8] {
        let m = manager(threads);
        let r = workload(&m);
        for (i, (a, b)) in base.iter().zip(r.iter()).enumerate() {
            assert_eq!(
                *a,
                b.sat_assignments(&vars),
                "workload item {i} diverged at {threads} threads"
            );
        }
        m2.gc();
        m.gc();
        assert_eq!(m2.live_nodes(), m.live_nodes());
    }
}

#[test]
fn live_nodes_identical_after_gc_vs_sequential() {
    // Sequential and parallel runs differ in which garbage intermediates
    // the master arena ever saw, but the live functions are identical, so
    // after a full collection the canonical live DAGs coincide.
    let m1 = manager(1);
    let m4 = manager(4);
    let r1 = workload(&m1);
    let r4 = workload(&m4);
    m1.gc();
    m4.gc();
    assert_eq!(m1.live_nodes(), m4.live_nodes());
    drop(r1);
    drop(r4);
}

#[test]
fn kernel_stats_invariants_survive_worker_merge() {
    // Per-worker counters are merged by summation after the join; no
    // interleaving may make hits overtake lookups, globally or per op.
    let m4 = manager(4);
    let r = workload(&m4);
    // Re-run some operations so the shared parallel cache produces hits.
    let f = dense(&m4, 300, 1);
    let g = dense(&m4, 300, 2);
    let _ = f.and(&g);
    let _ = f.and(&g);
    let s = m4.kernel_stats();
    assert!(s.cache_lookups >= s.cache_hits);
    for (i, op) in s.per_op_cache.iter().enumerate() {
        assert!(
            op.lookups >= op.hits,
            "per-op cache invariant violated for {}",
            jedd_bdd::KernelStats::CACHE_OP_NAMES[i]
        );
    }
    assert!(s.par_ops > 0);
    assert!(s.par_tasks >= 2 * s.par_ops, "every parallel op splits into >= 2 tasks");
    assert!(s.par_shared_nodes > 0);
    assert!(s.par_threads_effective >= 1);
    drop(r);
}

#[test]
fn budget_types_cross_thread_boundaries() {
    // The types handed to workers (budgets, cancellation, error values,
    // merged stats) must stay Send + Sync; a regression here breaks the
    // worker spawn without a clear message.
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<jedd_bdd::KernelStats>();
    assert_send_sync::<jedd_bdd::BddError>();
    assert_send_sync::<jedd_bdd::Budget>();
    assert_send_sync::<jedd_bdd::CancelToken>();
}

/// Stress: four workers hammering mk/apply with forced parallel
/// engagement on every operation, concurrent scratch-shard growth, and a
/// stop-the-world GC between rounds. "No lost nodes" is checked by
/// running a second collection immediately after the first: if the sweep
/// or the import phase ever dropped or duplicated a reachable node, the
/// recount would disagree and the second GC would reclaim something.
///
/// Run with `cargo test -- --ignored` or `./ci.sh --stress`.
#[test]
#[ignore]
fn stress_concurrent_growth_and_gc() {
    let mgr = BddManager::new(NBITS);
    mgr.set_threads(4);
    mgr.set_par_cutoff(2);
    let vars: Vec<u32> = (0..NBITS as u32).collect();
    let mut rng = XorShift64Star::new(0xfeed);
    for round in 0..12u64 {
        let f = dense(&mgr, 900, round * 7 + 1);
        let g = dense(&mgr, 900, round * 7 + 2);
        let union = f.or(&g);
        let inter = f.and(&g);
        let d = union.diff(&inter);
        // Inclusion-exclusion ties the three parallel results together.
        assert_eq!(
            union.satcount() + inter.satcount(),
            f.satcount() + g.satcount(),
            "round {round}: |f∪g| + |f∩g| != |f| + |g|"
        );
        assert_eq!(d.satcount(), f.xor(&g).satcount(), "round {round}");
        let cube_vars: Vec<u32> = (0..4).map(|_| rng.gen_range(0..NBITS as u64) as u32).collect();
        let e = union.exists(&mgr.cube(&cube_vars));
        assert!(e.satcount() >= union.satcount());
        // Quiesced safepoint: all workers joined, so a full collection
        // must leave a consistent table...
        mgr.gc();
        // ...and everything reachable must have survived it.
        assert_eq!(mgr.gc(), 0, "round {round}: second GC reclaimed nodes");
        assert_eq!(d.sat_assignments(&vars).len(), d.satcount() as usize);
    }
    let s = mgr.kernel_stats();
    assert!(s.par_ops >= 36, "stress must keep the pool busy, got {}", s.par_ops);
}
