//! Deterministic crash injection for the store, the filesystem-level
//! counterpart of the kernel's `FailPlan`.
//!
//! A [`StoreFaults`] plan names a precise point in the checkpoint I/O
//! schedule — the Nth snapshot write truncated after a byte count, the Nth
//! atomic rename suppressed, the Nth log append torn — and the store then
//! returns [`crate::StoreError::Killed`] from that operation, leaving the
//! directory in exactly the state a power cut at that instant would. The
//! crash-recovery fuzz drives every kill point and asserts resume lands
//! tuple-identical to an uninterrupted run.

/// One scheduled kill: the `at`-th occurrence (1-based) of an I/O
/// operation dies after `after_bytes` bytes have reached the file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Kill {
    /// Which occurrence of the operation to kill (1-based, counted from
    /// plan installation).
    pub at: u64,
    /// How many bytes of the payload land on disk before the crash.
    pub after_bytes: u64,
}

/// A crash-injection plan over the store's I/O schedule. All hooks are
/// independent; `None` disables a hook.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreFaults {
    /// Tear the Nth snapshot *temp-file* write: the temp file is left
    /// truncated and never renamed, so the previous snapshot (if any)
    /// stays intact.
    pub snapshot_kill: Option<Kill>,
    /// Crash before the Nth atomic rename (1-based): the temp file is
    /// complete and durable, but the final name still points at the old
    /// content (or does not exist).
    pub rename_kill: Option<u64>,
    /// Tear the Nth log append: the record's prefix lands on disk as a
    /// torn tail the reader must skip with a warning.
    pub log_kill: Option<Kill>,
    /// Tear the Nth pager eviction write of a *paged* run: the block's
    /// prefix lands in the page file as a torn frame. Armed on the
    /// kernel's pager (see [`StoreFaults::pager_faults`]) by the first
    /// checkpoint of a paged universe, so the kill lands mid-eviction
    /// inside a later fixpoint round.
    pub page_write_kill: Option<Kill>,
}

impl StoreFaults {
    /// A plan tearing the `n`-th snapshot write after `bytes` bytes.
    pub fn kill_snapshot(n: u64, bytes: u64) -> StoreFaults {
        StoreFaults {
            snapshot_kill: Some(Kill {
                at: n,
                after_bytes: bytes,
            }),
            ..StoreFaults::default()
        }
    }

    /// A plan crashing before the `n`-th rename.
    pub fn kill_rename(n: u64) -> StoreFaults {
        StoreFaults {
            rename_kill: Some(n),
            ..StoreFaults::default()
        }
    }

    /// A plan tearing the `n`-th log append after `bytes` bytes.
    pub fn kill_log(n: u64, bytes: u64) -> StoreFaults {
        StoreFaults {
            log_kill: Some(Kill {
                at: n,
                after_bytes: bytes,
            }),
            ..StoreFaults::default()
        }
    }

    /// A plan tearing the `n`-th pager eviction write after `bytes`
    /// bytes.
    pub fn kill_page_write(n: u64, bytes: u64) -> StoreFaults {
        StoreFaults {
            page_write_kill: Some(Kill {
                at: n,
                after_bytes: bytes,
            }),
            ..StoreFaults::default()
        }
    }

    /// The kernel-pager share of this plan, in the pager's own fault
    /// vocabulary, or `None` when the plan has no pager kill.
    pub fn pager_faults(&self) -> Option<jedd_bdd::pager::PagerFaults> {
        self.page_write_kill
            .map(|k| jedd_bdd::pager::PagerFaults::kill_write(k.at, k.after_bytes))
    }
}

/// Runtime state of a plan: occurrence counters beside the schedule.
#[derive(Debug, Default)]
pub(crate) struct FaultClock {
    plan: StoreFaults,
    snapshots: u64,
    renames: u64,
    appends: u64,
    pager_armed: bool,
}

impl FaultClock {
    pub(crate) fn install(&mut self, plan: StoreFaults) {
        *self = FaultClock {
            plan,
            ..FaultClock::default()
        };
    }

    /// Counts a snapshot write; returns the byte cap if this one dies.
    pub(crate) fn snapshot_cap(&mut self) -> Option<u64> {
        self.snapshots += 1;
        match self.plan.snapshot_kill {
            Some(k) if k.at == self.snapshots => Some(k.after_bytes),
            _ => None,
        }
    }

    /// Counts a rename; `true` if the crash lands just before it.
    pub(crate) fn rename_dies(&mut self) -> bool {
        self.renames += 1;
        self.plan.rename_kill == Some(self.renames)
    }

    /// Counts a log append; returns the byte cap if this one tears.
    pub(crate) fn append_cap(&mut self) -> Option<u64> {
        self.appends += 1;
        match self.plan.log_kill {
            Some(k) if k.at == self.appends => Some(k.after_bytes),
            _ => None,
        }
    }

    /// Hands the plan's pager kill out exactly once, so the checkpointer
    /// arms the kernel's pager on the first checkpoint of a paged run
    /// and re-checkpointing never rewinds the kill schedule.
    pub(crate) fn take_pager_faults(&mut self) -> Option<jedd_bdd::pager::PagerFaults> {
        if self.pager_armed {
            return None;
        }
        self.pager_armed = true;
        self.plan.pager_faults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_fires_at_scheduled_occurrence() {
        let mut c = FaultClock::default();
        c.install(StoreFaults::kill_snapshot(2, 17));
        assert_eq!(c.snapshot_cap(), None);
        assert_eq!(c.snapshot_cap(), Some(17));
        assert_eq!(c.snapshot_cap(), None);
        assert!(!c.rename_dies());

        c.install(StoreFaults::kill_rename(1));
        assert!(c.rename_dies());
        assert!(!c.rename_dies());

        c.install(StoreFaults::kill_log(1, 3));
        assert_eq!(c.append_cap(), Some(3));
        assert_eq!(c.append_cap(), None);
    }
}
