//! Checkpoint orchestration: when to checkpoint, how a checkpoint commits,
//! and how a crashed run resumes.
//!
//! A checkpoint is two steps in write-ahead order: first the snapshot file
//! lands under its sequence-numbered name via atomic rename, then one
//! [`LogRecord`] referencing it is appended to `checkpoint.log`. Only the
//! log append commits the checkpoint — a crash between the two leaves an
//! orphaned snapshot the log never mentions, and the previous committed
//! checkpoint remains the resume point. Pruning keeps the two most recent
//! snapshots so that exact window always has a fallback.
//!
//! [`resume_latest_bdd`]/[`resume_latest_zdd`] walk the committed records
//! newest-first and return the first whose snapshot still loads cleanly,
//! logging a warning for each corrupt or missing one they skip.

use crate::error::StoreError;
use crate::faults::{FaultClock, StoreFaults};
use crate::io::{truncate_synced, write_atomic};
use crate::snapshot::{
    encode_bdd_snapshot, encode_zdd_snapshot, load_bdd_snapshot, load_zdd_snapshot, BACKEND_BDD,
    BACKEND_ZDD,
};
use crate::wal::{append_record, read_records, read_records_prefix, LogRecord};
use jedd_bdd::{ZddId, ZddManager};
use jedd_core::{Relation, Universe, UniverseStats};
use std::path::{Path, PathBuf};

/// File name of the write-ahead checkpoint log inside a checkpoint
/// directory.
pub const LOG_FILE: &str = "checkpoint.log";

/// When the driver should cut a checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint after every `every_rounds` completed fixpoint rounds
    /// (0 disables round-driven checkpoints).
    pub every_rounds: u64,
    /// Checkpoint the last good state when a round dies with
    /// `ResourceExhausted`.
    pub on_exhausted: bool,
    /// Checkpoint the last good state on cooperative cancellation.
    pub on_cancel: bool,
}

impl Default for CheckpointPolicy {
    /// Every round, plus on exhaustion and on cancellation.
    fn default() -> CheckpointPolicy {
        CheckpointPolicy {
            every_rounds: 1,
            on_exhausted: true,
            on_cancel: true,
        }
    }
}

impl CheckpointPolicy {
    /// A policy checkpointing every `n` rounds (and on both failure kinds).
    pub fn every(n: u64) -> CheckpointPolicy {
        CheckpointPolicy {
            every_rounds: n,
            ..CheckpointPolicy::default()
        }
    }
}

/// Everything a checkpoint records besides the relations themselves.
#[derive(Clone, Copy, Debug)]
pub struct CheckpointMeta<'a> {
    /// The analysis writing the checkpoint.
    pub analysis: &'a str,
    /// Fixpoint rounds completed at this state.
    pub round: u64,
    /// Analysis-specific phase scalar (0 when unused).
    pub phase: u32,
    /// Analysis-specific auxiliary word (0 when unused).
    pub aux: u64,
    /// Driver RNG word (0 when unused).
    pub rng: u64,
}

/// Writes checkpoints into one directory with write-ahead ordering,
/// sequence numbering, crash injection and pruning.
#[derive(Debug)]
pub struct Checkpointer {
    dir: PathBuf,
    policy: CheckpointPolicy,
    faults: FaultClock,
    next_seq: u64,
}

impl Checkpointer {
    /// Opens (creating if needed) a checkpoint directory. The next
    /// sequence number continues after the newest committed record, so a
    /// resumed run never reuses a sequence number. A torn tail left by a
    /// crash mid-append is truncated away first — otherwise every record
    /// appended after the tear would be committed but invisible, since the
    /// reader stops at the first bad frame.
    pub fn create(dir: &Path, policy: CheckpointPolicy) -> Result<Checkpointer, StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::Io {
            op: "create checkpoint directory",
            path: dir.to_path_buf(),
            source: e,
        })?;
        let log = dir.join(LOG_FILE);
        let (records, valid_len) = read_records_prefix(&log)?;
        if truncate_synced(&log, valid_len)? {
            eprintln!(
                "jedd-store: warning: {}: truncated torn log tail to {valid_len} byte(s)",
                log.display()
            );
        }
        let next_seq = records.iter().map(|r| r.seq + 1).max().unwrap_or(0);
        Ok(Checkpointer {
            dir: dir.to_path_buf(),
            policy,
            faults: FaultClock::default(),
            next_seq,
        })
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The active policy.
    pub fn policy(&self) -> CheckpointPolicy {
        self.policy
    }

    /// Installs a crash-injection plan; occurrence counters restart at
    /// zero.
    pub fn set_faults(&mut self, faults: StoreFaults) {
        self.faults.install(faults);
    }

    /// Whether the policy asks for a checkpoint after `rounds_done`
    /// completed rounds.
    pub fn due_after_round(&self, rounds_done: u64) -> bool {
        self.policy.every_rounds != 0 && rounds_done.is_multiple_of(self.policy.every_rounds)
    }

    fn commit(
        &mut self,
        meta: &CheckpointMeta<'_>,
        backend: u8,
        bytes: Vec<u8>,
        stats: UniverseStats,
    ) -> Result<u64, StoreError> {
        let seq = self.next_seq;
        let snapshot = format!("snap-{seq}");
        let snap_cap = self.faults.snapshot_cap();
        let rename_dies = self.faults.rename_dies();
        write_atomic(&self.dir.join(&snapshot), &bytes, snap_cap, rename_dies)?;
        let record = LogRecord {
            seq,
            analysis: meta.analysis.to_string(),
            round: meta.round,
            phase: meta.phase,
            aux: meta.aux,
            snapshot,
            backend,
            rng: meta.rng,
            auto_replaces: stats.auto_replaces,
            relational_ops: stats.relational_ops,
        };
        let append_cap = self.faults.append_cap();
        append_record(&self.dir.join(LOG_FILE), &record, append_cap)?;
        self.next_seq = seq + 1;
        self.prune(seq);
        Ok(seq)
    }

    /// Deletes snapshots older than the previous committed one (keeping
    /// `seq` and `seq - 1`), plus any leftover temp file below the window.
    /// Scans the actual `snap-*` directory entries rather than counting
    /// sequence numbers down, so gaps in the history (a failed commit that
    /// left no file) don't shadow older snapshots from reclamation. Best
    /// effort; a failed delete never fails the checkpoint.
    fn prune(&self, seq: u64) {
        let keep_from = seq.saturating_sub(1);
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(rest) = name.strip_prefix("snap-") else {
                continue;
            };
            let stem = rest.strip_suffix(".tmp").unwrap_or(rest);
            if stem.parse::<u64>().is_ok_and(|s| s < keep_from) {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }

    /// Commits a checkpoint of BDD-backed relations sharing `universe`.
    /// Returns the sequence number.
    ///
    /// # Errors
    ///
    /// I/O failures and injected kills ([`StoreError::Killed`]); on any
    /// error the previous committed checkpoint is untouched.
    pub fn checkpoint_bdd(
        &mut self,
        meta: &CheckpointMeta<'_>,
        universe: &Universe,
        relations: &[(&str, &Relation)],
    ) -> Result<u64, StoreError> {
        // Arm any scheduled pager kill on this universe's kernel (once):
        // the first checkpoint of a paged run is the earliest point the
        // checkpointer sees the manager, and the kill then fires during a
        // later round's eviction write.
        if let Some(pf) = self.faults.take_pager_faults() {
            universe.bdd_manager().set_pager_faults(pf);
        }
        let bytes = encode_bdd_snapshot(universe, relations);
        self.commit(meta, BACKEND_BDD, bytes, universe.stats())
    }

    /// Commits a checkpoint of named ZDD roots. Returns the sequence
    /// number.
    ///
    /// # Errors
    ///
    /// Same as [`Checkpointer::checkpoint_bdd`].
    pub fn checkpoint_zdd(
        &mut self,
        meta: &CheckpointMeta<'_>,
        manager: &ZddManager,
        roots: &[(&str, ZddId)],
    ) -> Result<u64, StoreError> {
        let bytes = encode_zdd_snapshot(manager, roots);
        self.commit(meta, BACKEND_ZDD, bytes, UniverseStats::default())
    }
}

/// A loaded BDD resume point: the committed record plus the rebuilt state.
pub struct BddResumePoint {
    /// The log record that committed this checkpoint.
    pub record: LogRecord,
    /// The rebuilt universe, with profiler counters restored from the
    /// record.
    pub universe: Universe,
    /// The relations, in snapshot order.
    pub relations: Vec<(String, Relation)>,
}

impl BddResumePoint {
    /// The relation with the given name, if present.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| r)
    }
}

/// A loaded ZDD resume point.
pub struct ZddResumePoint {
    /// The log record that committed this checkpoint.
    pub record: LogRecord,
    /// The rebuilt manager.
    pub manager: ZddManager,
    /// The named roots, in snapshot order.
    pub roots: Vec<(String, ZddId)>,
}

impl ZddResumePoint {
    /// The root with the given name, if present.
    pub fn root(&self, name: &str) -> Option<ZddId> {
        self.roots.iter().find(|(n, _)| n == name).map(|&(_, r)| r)
    }
}

/// Whether a snapshot name read from the log may be joined onto the
/// checkpoint directory. The log is on-disk content and therefore
/// untrusted like everything else the store reads; a tampered record
/// naming `../../x` must not reach files outside the directory.
fn snapshot_name_is_safe(name: &str) -> bool {
    !name.is_empty() && name != "." && name != ".." && !name.contains(['/', '\\'])
}

/// Validates `record.snapshot` and joins it onto `dir`, or skips the
/// record (with the standard warning) by returning `None`.
fn safe_snapshot_path(dir: &Path, record: &LogRecord) -> Option<PathBuf> {
    if snapshot_name_is_safe(&record.snapshot) {
        return Some(dir.join(&record.snapshot));
    }
    let err = StoreError::Malformed {
        path: dir.join(LOG_FILE),
        reason: format!(
            "snapshot name {:?} escapes the checkpoint directory",
            record.snapshot
        ),
    };
    skip_warning(dir, record, &err);
    None
}

fn skip_warning(dir: &Path, record: &LogRecord, err: &StoreError) {
    eprintln!(
        "jedd-store: warning: checkpoint seq {} in {} is not loadable ({err}); falling back to the previous one",
        record.seq,
        dir.display()
    );
}

/// Loads the newest resumable BDD checkpoint from `dir`, skipping records
/// whose snapshot is corrupt, torn or of the wrong backend (each with a
/// warning on stderr).
///
/// # Errors
///
/// [`StoreError::NoCheckpoint`] when no committed record's snapshot loads;
/// [`StoreError::Io`] only if the log itself is unreadable.
pub fn resume_latest_bdd(dir: &Path) -> Result<BddResumePoint, StoreError> {
    let records = read_records(&dir.join(LOG_FILE))?;
    for record in records.into_iter().rev() {
        if record.backend != BACKEND_BDD {
            continue;
        }
        let Some(snap_path) = safe_snapshot_path(dir, &record) else {
            continue;
        };
        match load_bdd_snapshot(&snap_path) {
            Ok(snap) => {
                snap.universe.restore_stats(UniverseStats {
                    auto_replaces: record.auto_replaces,
                    relational_ops: record.relational_ops,
                });
                return Ok(BddResumePoint {
                    record,
                    universe: snap.universe,
                    relations: snap.relations,
                });
            }
            Err(e) => skip_warning(dir, &record, &e),
        }
    }
    Err(StoreError::NoCheckpoint {
        dir: dir.to_path_buf(),
    })
}

/// Loads the newest resumable ZDD checkpoint from `dir`; the ZDD analogue
/// of [`resume_latest_bdd`].
///
/// # Errors
///
/// Same as [`resume_latest_bdd`].
pub fn resume_latest_zdd(dir: &Path) -> Result<ZddResumePoint, StoreError> {
    let records = read_records(&dir.join(LOG_FILE))?;
    for record in records.into_iter().rev() {
        if record.backend != BACKEND_ZDD {
            continue;
        }
        let Some(snap_path) = safe_snapshot_path(dir, &record) else {
            continue;
        };
        match load_zdd_snapshot(&snap_path) {
            Ok(snap) => {
                return Ok(ZddResumePoint {
                    record,
                    manager: snap.manager,
                    roots: snap.roots,
                })
            }
            Err(e) => skip_warning(dir, &record, &e),
        }
    }
    Err(StoreError::NoCheckpoint {
        dir: dir.to_path_buf(),
    })
}
