//! The write-ahead checkpoint log.
//!
//! The log is an append-only sequence of self-framing records, one per
//! committed checkpoint. Each record carries everything the resume path
//! needs besides the snapshot itself: the sequence number, the analysis
//! name, the fixpoint round counter, a phase scalar and an auxiliary word
//! (analysis-specific loop position), the snapshot file name, the backend
//! tag, the RNG word, and the universe profiler counters.
//!
//! A record is framed as `marker u32 · payload-length u32 · payload CRC32
//! · payload`. Appends are fsynced; a crash mid-append leaves a torn tail
//! that fails the length or checksum test, and [`read_records`] stops
//! there with a logged warning rather than an error — everything before
//! the tear is still a valid checkpoint history.

use crate::crc32::crc32;
use crate::error::StoreError;
use crate::io::append_synced;
use std::path::Path;

/// Per-record frame marker (`"JLOG"` little-endian).
const MARKER: u32 = u32::from_le_bytes(*b"JLOG");

/// One committed checkpoint, as recorded in the log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogRecord {
    /// Monotonic checkpoint sequence number (also names the snapshot).
    pub seq: u64,
    /// Which analysis wrote the checkpoint (e.g. `"pointsto"`).
    pub analysis: String,
    /// The fixpoint round counter at the checkpoint (rounds completed).
    pub round: u64,
    /// Analysis-specific phase scalar (e.g. which of sideeffect's two
    /// closure passes is running); 0 when unused.
    pub phase: u32,
    /// Analysis-specific auxiliary word (e.g. the points-to propagation
    /// mode); 0 when unused.
    pub aux: u64,
    /// File name of the snapshot this record commits, relative to the
    /// checkpoint directory.
    pub snapshot: String,
    /// Backend tag of the snapshot ([`crate::BACKEND_BDD`] or
    /// [`crate::BACKEND_ZDD`]).
    pub backend: u8,
    /// The driver's RNG word at the checkpoint, so resumed runs keep the
    /// same stochastic decisions.
    pub rng: u64,
    /// `UniverseStats::auto_replaces` at the checkpoint.
    pub auto_replaces: u64,
    /// `UniverseStats::relational_ops` at the checkpoint.
    pub relational_ops: u64,
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

impl LogRecord {
    fn encode_payload(&self) -> Vec<u8> {
        let mut p = Vec::new();
        put_u64(&mut p, self.seq);
        put_str(&mut p, &self.analysis);
        put_u64(&mut p, self.round);
        p.extend_from_slice(&self.phase.to_le_bytes());
        put_u64(&mut p, self.aux);
        put_str(&mut p, &self.snapshot);
        p.push(self.backend);
        put_u64(&mut p, self.rng);
        put_u64(&mut p, self.auto_replaces);
        put_u64(&mut p, self.relational_ops);
        p
    }

    /// The framed on-disk bytes of this record.
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(12 + payload.len());
        out.extend_from_slice(&MARKER.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    fn decode_payload(p: &[u8]) -> Option<LogRecord> {
        let mut pos = 0usize;
        let u64_at = |pos: &mut usize| -> Option<u64> {
            let b = p.get(*pos..*pos + 8)?;
            *pos += 8;
            Some(u64::from_le_bytes(b.try_into().ok()?))
        };
        let str_at = |pos: &mut usize| -> Option<String> {
            let b = p.get(*pos..*pos + 4)?;
            let len = u32::from_le_bytes(b.try_into().ok()?) as usize;
            *pos += 4;
            let s = p.get(*pos..*pos + len)?;
            *pos += len;
            String::from_utf8(s.to_vec()).ok()
        };
        let seq = u64_at(&mut pos)?;
        let analysis = str_at(&mut pos)?;
        let round = u64_at(&mut pos)?;
        let phase = u32::from_le_bytes(p.get(pos..pos + 4)?.try_into().ok()?);
        pos += 4;
        let aux = u64_at(&mut pos)?;
        let snapshot = str_at(&mut pos)?;
        let backend = *p.get(pos)?;
        pos += 1;
        let rng = u64_at(&mut pos)?;
        let auto_replaces = u64_at(&mut pos)?;
        let relational_ops = u64_at(&mut pos)?;
        if pos != p.len() {
            return None;
        }
        Some(LogRecord {
            seq,
            analysis,
            round,
            phase,
            aux,
            snapshot,
            backend,
            rng,
            auto_replaces,
            relational_ops,
        })
    }
}

/// Appends one record to the log file, fsynced. `kill_after` tears the
/// append (crash injection).
pub(crate) fn append_record(
    path: &Path,
    record: &LogRecord,
    kill_after: Option<u64>,
) -> Result<(), StoreError> {
    append_synced(path, &record.encode(), kill_after)
}

/// Reads every intact record from the log, oldest first.
///
/// A missing file is an empty history. A torn or corrupt tail —
/// short frame, bad marker, length past end-of-file, checksum mismatch,
/// unparseable payload — ends the scan with a warning on stderr; the
/// records before it are returned. Only an OS-level read failure is an
/// error.
pub fn read_records(path: &Path) -> Result<Vec<LogRecord>, StoreError> {
    read_records_prefix(path).map(|(records, _)| records)
}

/// [`read_records`] plus the byte length of the valid record prefix, so a
/// writer reopening the log can truncate a torn tail before appending.
/// Without that truncation, records appended after the tear would sit
/// behind bytes the reader always stops at — committed but invisible.
pub fn read_records_prefix(path: &Path) -> Result<(Vec<LogRecord>, u64), StoreError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => {
            return Err(StoreError::Io {
                op: "read checkpoint log",
                path: path.to_path_buf(),
                source: e,
            })
        }
    };
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let warn = |what: &str| {
            eprintln!(
                "jedd-store: warning: {}: {what} at byte {pos}; ignoring the log tail ({} record(s) kept)",
                path.display(),
                records.len()
            );
        };
        let Some(frame) = bytes.get(pos..pos + 12) else {
            warn("torn record frame");
            break;
        };
        if u32::from_le_bytes(frame[0..4].try_into().unwrap()) != MARKER {
            warn("bad record marker");
            break;
        }
        let len = u32::from_le_bytes(frame[4..8].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(frame[8..12].try_into().unwrap());
        let Some(payload) = bytes.get(pos + 12..pos + 12 + len) else {
            warn("torn record payload");
            break;
        };
        if crc32(payload) != crc {
            warn("record checksum mismatch");
            break;
        }
        let Some(record) = LogRecord::decode_payload(payload) else {
            warn("unparseable record payload");
            break;
        };
        records.push(record);
        pos += 12 + len;
    }
    Ok((records, pos as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64) -> LogRecord {
        LogRecord {
            seq,
            analysis: "pointsto".into(),
            round: seq * 3,
            phase: 1,
            aux: 7,
            snapshot: format!("snap-{seq}"),
            backend: 0,
            rng: 0xdead_beef,
            auto_replaces: 11,
            relational_ops: 42,
        }
    }

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("jedd-store-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d.join("checkpoint.log")
    }

    #[test]
    fn log_round_trips() {
        let p = tmpfile("roundtrip");
        for seq in 0..3 {
            append_record(&p, &rec(seq), None).unwrap();
        }
        let got = read_records(&p).unwrap();
        assert_eq!(got, vec![rec(0), rec(1), rec(2)]);
        let _ = std::fs::remove_dir_all(p.parent().unwrap());
    }

    #[test]
    fn missing_log_is_empty_history() {
        let p = tmpfile("missing");
        assert_eq!(read_records(&p.join("nope")).unwrap(), Vec::new());
        let _ = std::fs::remove_dir_all(p.parent().unwrap());
    }

    #[test]
    fn torn_tail_is_skipped_with_prefix_kept() {
        let p = tmpfile("torn");
        append_record(&p, &rec(0), None).unwrap();
        append_record(&p, &rec(1), None).unwrap();
        // Tear the third append after 5 bytes.
        let e = append_record(&p, &rec(2), Some(5)).unwrap_err();
        assert!(matches!(e, StoreError::Killed { at: "log-append" }));
        let got = read_records(&p).unwrap();
        assert_eq!(got, vec![rec(0), rec(1)]);
        let _ = std::fs::remove_dir_all(p.parent().unwrap());
    }

    #[test]
    fn prefix_offset_tracks_the_valid_records() {
        let p = tmpfile("prefix");
        append_record(&p, &rec(0), None).unwrap();
        let clean_len = std::fs::metadata(&p).unwrap().len();
        let (recs, off) = read_records_prefix(&p).unwrap();
        assert_eq!(recs, vec![rec(0)]);
        assert_eq!(off, clean_len, "clean log: offset is the file length");
        // A torn append extends the file but not the valid prefix.
        let _ = append_record(&p, &rec(1), Some(5)).unwrap_err();
        assert!(std::fs::metadata(&p).unwrap().len() > clean_len);
        let (recs, off) = read_records_prefix(&p).unwrap();
        assert_eq!(recs, vec![rec(0)]);
        assert_eq!(off, clean_len, "torn log: offset stops before the tear");
        let _ = std::fs::remove_dir_all(p.parent().unwrap());
    }

    #[test]
    fn corrupt_record_ends_scan_without_error() {
        let p = tmpfile("corrupt");
        append_record(&p, &rec(0), None).unwrap();
        append_record(&p, &rec(1), None).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        let first_len = rec(0).encode().len();
        // Flip a byte inside the second record's payload.
        let idx = first_len + 20;
        bytes[idx] ^= 0xff;
        std::fs::write(&p, &bytes).unwrap();
        let got = read_records(&p).unwrap();
        assert_eq!(got, vec![rec(0)]);
        let _ = std::fs::remove_dir_all(p.parent().unwrap());
    }
}
