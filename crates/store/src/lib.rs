//! Crash-safe persistence for Jedd relations: checksummed snapshots, a
//! write-ahead checkpoint log, and resume of interrupted fixpoint runs.
//!
//! This crate is the durability layer below the analyses (paper §6 runs
//! hours-long BDD analyses; losing one to a crash is expensive). It has
//! three pieces:
//!
//! - **Snapshots** ([`encode_bdd_snapshot`]/[`decode_bdd_snapshot`], and
//!   the ZDD analogues): a versioned, length-prefixed, CRC32-checksummed
//!   binary image of a set of relations sharing one manager — the
//!   variable order, the universe registries, a children-first node table
//!   and per-relation roots. Decoding validates everything before
//!   touching a manager and returns typed [`StoreError`]s, never panics;
//!   round trips are node-id-identical under the same order.
//! - **The checkpoint log** ([`LogRecord`], [`read_records`]): an
//!   append-only, fsynced record stream committing snapshots in
//!   write-ahead order. Torn tails are skipped with a warning.
//! - **Checkpoint orchestration** ([`Checkpointer`],
//!   [`CheckpointPolicy`], [`resume_latest_bdd`]/[`resume_latest_zdd`]):
//!   sequence numbering, atomic-rename commits, pruning to the last two
//!   snapshots, and newest-first resume that falls back across corrupt
//!   checkpoints.
//!
//! Crash injection ([`StoreFaults`]) kills the I/O protocol at precise
//! points so the recovery path is tested against every torn state a real
//! power cut could leave.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod crc32;
mod error;
mod faults;
mod io;
mod snapshot;
mod wal;

pub use checkpoint::{
    resume_latest_bdd, resume_latest_zdd, BddResumePoint, CheckpointMeta, CheckpointPolicy,
    Checkpointer, ZddResumePoint, LOG_FILE,
};
pub use error::StoreError;
pub use faults::{Kill, StoreFaults};
pub use snapshot::{
    decode_bdd_snapshot, decode_order_record, decode_zdd_snapshot, encode_bdd_snapshot,
    encode_order_record, encode_zdd_snapshot, load_bdd_snapshot, load_order_record,
    load_zdd_snapshot, save_order_record, snapshot_backend, BddSnapshot, OrderRecord, ZddSnapshot,
    BACKEND_BDD, BACKEND_CBDD, BACKEND_CZDD, BACKEND_ORDER, BACKEND_ZDD,
};
pub use wal::{read_records, read_records_prefix, LogRecord};
