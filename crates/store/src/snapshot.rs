//! The snapshot format: a versioned, length-prefixed, CRC32-checksummed
//! binary serialization of a set of relations sharing one manager.
//!
//! A BDD snapshot is self-contained: it carries the variable order, the
//! universe's domain/attribute/physical-domain registries, a
//! topologically-ordered (children-first, dddmp-style) node table shared
//! by all relations, and each relation's name, schema and root slot.
//! Decoding replays the registrations into a fresh [`Universe`] in the
//! original order — ids are sequential registry indices, so they come out
//! identical — installs the saved variable order, and re-interns the node
//! table, which rebuilds hash-consing: round-tripped relations are
//! node-id-identical under the same order.
//!
//! A ZDD snapshot carries the node table and named roots only (the ZDD
//! kernel has no universe layer).
//!
//! File layout: `magic "JSNP" · version u32 · backend u8 · payload-length
//! u64 · payload CRC32 · payload`. All integers little-endian. The single
//! checksum covers the whole payload, so any torn or flipped byte is
//! detected before a single field is interpreted; every rejection is a
//! typed [`StoreError`], never a panic.

use crate::crc32::crc32;
use crate::error::StoreError;
use jedd_bdd::{ExportedNode, ZddId, ZddManager};
use jedd_core::{AttrId, DomainId, PhysDomId, Relation, Universe};
use std::path::Path;

const MAGIC: &[u8; 4] = b"JSNP";
const VERSION: u32 = 1;
/// Backend tag of a BDD (relation) snapshot.
pub const BACKEND_BDD: u8 = 0;
/// Backend tag of a ZDD snapshot.
pub const BACKEND_ZDD: u8 = 1;
/// Backend tag of a chain-reduced BDD (CBDD) relation snapshot. The
/// payload format is identical to [`BACKEND_BDD`] (the node table is the
/// plain spine expansion); the tag tells the decoder to rebuild into a
/// chain-reduced universe.
pub const BACKEND_CBDD: u8 = 2;
/// Backend tag of a chain-reduced ZDD (CZDD) snapshot; payload format as
/// [`BACKEND_ZDD`], rebuilt into a chain-reduced manager.
pub const BACKEND_CZDD: u8 = 3;
/// Tag of a learned variable-order record (see [`OrderRecord`]): not a
/// node snapshot but a per-analysis `level -> variable` table persisted by
/// the order-search lab so warm runs skip sifting entirely.
pub const BACKEND_ORDER: u8 = 4;
const HEADER_LEN: usize = 4 + 4 + 1 + 8 + 4;
/// Sanity cap on the variable count a snapshot may declare; real
/// universes are orders of magnitude below this.
const MAX_VARS: u32 = 1 << 24;

// ---------------------------------------------------------------- writing

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Wraps a payload in the magic/version/length/checksum frame.
fn frame(backend: u8, payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, VERSION);
    put_u8(&mut out, backend);
    put_u64(&mut out, payload.len() as u64);
    put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    out
}

// ---------------------------------------------------------------- reading

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    path: &'a Path,
}

impl<'a> Cursor<'a> {
    fn malformed(&self, reason: impl Into<String>) -> StoreError {
        StoreError::Malformed {
            path: self.path.to_path_buf(),
            reason: reason.into(),
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], StoreError> {
        if self.bytes.len() - self.pos < n {
            return Err(self.malformed(format!("{what} runs past the payload end")));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, StoreError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn str(&mut self, what: &str) -> Result<String, StoreError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.malformed(format!("{what} is not UTF-8")))
    }

    /// A count followed by that many fixed-size entries must fit in the
    /// remaining payload; checked before allocating.
    fn count(&mut self, entry_size: usize, what: &str) -> Result<usize, StoreError> {
        let n = self.u32(what)? as usize;
        if n.saturating_mul(entry_size) > self.bytes.len() - self.pos {
            return Err(self.malformed(format!("{what} count exceeds the payload")));
        }
        Ok(n)
    }

    fn done(&self) -> Result<(), StoreError> {
        if self.pos != self.bytes.len() {
            return Err(self.malformed("trailing bytes after the last field"));
        }
        Ok(())
    }
}

/// Validates the frame and returns `(backend, payload)`.
fn unframe<'a>(bytes: &'a [u8], path: &Path) -> Result<(u8, &'a [u8]), StoreError> {
    let header_err = |reason| StoreError::BadHeader {
        path: path.to_path_buf(),
        reason,
    };
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::Truncated {
            path: path.to_path_buf(),
            expected: HEADER_LEN as u64,
            actual: bytes.len() as u64,
        });
    }
    if &bytes[0..4] != MAGIC {
        return Err(header_err("wrong magic"));
    }
    if u32::from_le_bytes(bytes[4..8].try_into().unwrap()) != VERSION {
        return Err(header_err("unsupported version"));
    }
    let backend = bytes[8];
    if backend > BACKEND_ORDER {
        return Err(header_err("unknown backend tag"));
    }
    let payload_len = u64::from_le_bytes(bytes[9..17].try_into().unwrap());
    let actual = (bytes.len() - HEADER_LEN) as u64;
    if actual < payload_len {
        return Err(StoreError::Truncated {
            path: path.to_path_buf(),
            expected: payload_len,
            actual,
        });
    }
    if actual > payload_len {
        return Err(StoreError::Malformed {
            path: path.to_path_buf(),
            reason: "trailing bytes after the framed payload".into(),
        });
    }
    let crc = u32::from_le_bytes(bytes[17..21].try_into().unwrap());
    let payload = &bytes[HEADER_LEN..];
    if crc32(payload) != crc {
        return Err(StoreError::ChecksumMismatch {
            path: path.to_path_buf(),
        });
    }
    Ok((backend, payload))
}

/// The backend tag of an encoded snapshot, after full frame validation.
pub fn snapshot_backend(bytes: &[u8], path: &Path) -> Result<u8, StoreError> {
    unframe(bytes, path).map(|(b, _)| b)
}

// ------------------------------------------------------------ BDD encode

fn put_nodes(out: &mut Vec<u8>, nodes: &[ExportedNode]) {
    put_u32(out, nodes.len() as u32);
    for n in nodes {
        put_u32(out, n.var);
        put_u32(out, n.low);
        put_u32(out, n.high);
    }
}

fn take_nodes(c: &mut Cursor<'_>) -> Result<Vec<ExportedNode>, StoreError> {
    let n = c.count(12, "node table")?;
    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        nodes.push(ExportedNode {
            var: c.u32("node var")?,
            low: c.u32("node low slot")?,
            high: c.u32("node high slot")?,
        });
    }
    Ok(nodes)
}

/// Serializes a universe and a set of its relations as a framed BDD
/// snapshot.
///
/// # Panics
///
/// Panics if a relation belongs to a different universe than `universe` —
/// a caller bug, consistent with the relational layer's cross-universe
/// panics.
pub fn encode_bdd_snapshot(universe: &Universe, relations: &[(&str, &Relation)]) -> Vec<u8> {
    let mgr = universe.bdd_manager();
    for (name, r) in relations {
        assert!(
            mgr.owns(r.bdd()),
            "snapshot relation {name} belongs to a different universe"
        );
    }
    let mut p = Vec::new();
    // Variable order.
    let order = mgr.current_order();
    put_u32(&mut p, order.len() as u32);
    for v in &order {
        put_u32(&mut p, *v);
    }
    // Domains.
    put_u32(&mut p, universe.num_domains() as u32);
    for i in 0..universe.num_domains() as u32 {
        let d = DomainId::from_index(i);
        put_str(&mut p, &universe.domain_name(d));
        put_u64(&mut p, universe.domain_size(d));
        let elements = universe.domain_elements(d);
        put_u32(&mut p, elements.len() as u32);
        for e in &elements {
            put_str(&mut p, e);
        }
    }
    // Attributes.
    put_u32(&mut p, universe.num_attributes() as u32);
    for i in 0..universe.num_attributes() as u32 {
        let a = AttrId::from_index(i);
        put_str(&mut p, &universe.attribute_name(a));
        put_u32(&mut p, universe.attribute_domain(a).index());
    }
    // Physical domains.
    put_u32(&mut p, universe.num_physdoms() as u32);
    for i in 0..universe.num_physdoms() as u32 {
        let pd = PhysDomId::from_index(i);
        put_str(&mut p, &universe.physdom_name(pd));
        let bits = universe.physdom_bits(pd);
        put_u32(&mut p, bits.len() as u32);
        for b in &bits {
            put_u32(&mut p, *b);
        }
        put_u8(&mut p, universe.physdom_is_anonymous(pd) as u8);
    }
    // Shared node table and per-relation roots.
    let roots: Vec<&jedd_bdd::Bdd> = relations.iter().map(|(_, r)| r.bdd()).collect();
    let (nodes, slots) = mgr.export_nodes(&roots);
    put_nodes(&mut p, &nodes);
    put_u32(&mut p, relations.len() as u32);
    for ((name, r), slot) in relations.iter().zip(&slots) {
        put_str(&mut p, name);
        put_u32(&mut p, r.schema().len() as u32);
        for &(a, pd) in r.schema() {
            put_u32(&mut p, a.index());
            put_u32(&mut p, pd.index());
        }
        put_u32(&mut p, *slot);
    }
    // The node table is the plain spine expansion either way; the tag
    // records which kernel to rebuild into. (A `Backend::Czdd` universe
    // runs on the chained kernel, so it round-trips as CBDD — the ZDD
    // storage-accounting choice is not part of the persisted data.)
    let tag = if mgr.chain_mode() {
        BACKEND_CBDD
    } else {
        BACKEND_BDD
    };
    frame(tag, p)
}

// ------------------------------------------------------------ BDD decode

/// A decoded BDD snapshot: a freshly rebuilt universe and the relations it
/// carried, by name.
pub struct BddSnapshot {
    /// The rebuilt universe (fresh manager, saved order installed,
    /// registries replayed in original id order).
    pub universe: Universe,
    /// The relations, in snapshot order.
    pub relations: Vec<(String, Relation)>,
}

impl BddSnapshot {
    /// The relation with the given name, if present.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| r)
    }
}

/// Decodes a framed BDD snapshot, rebuilding the universe and relations.
/// `path` labels errors only; pass the file the bytes came from.
///
/// # Errors
///
/// Any frame violation ([`StoreError::Truncated`],
/// [`StoreError::ChecksumMismatch`], [`StoreError::BadHeader`]),
/// [`StoreError::Malformed`] for structural violations, or
/// [`StoreError::Import`]/[`StoreError::Restore`] when kernel or
/// relational validation rejects the content.
pub fn decode_bdd_snapshot(bytes: &[u8], path: &Path) -> Result<BddSnapshot, StoreError> {
    let (backend, payload) = unframe(bytes, path)?;
    if backend != BACKEND_BDD && backend != BACKEND_CBDD {
        return Err(StoreError::BadHeader {
            path: path.to_path_buf(),
            reason: "not a BDD snapshot",
        });
    }
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
        path,
    };
    // Variable order (its length is the variable count).
    let num_vars = c.count(4, "variable order")? as u32;
    if num_vars > MAX_VARS {
        return Err(c.malformed("implausible variable count"));
    }
    let mut order = Vec::with_capacity(num_vars as usize);
    for _ in 0..num_vars {
        order.push(c.u32("order entry")?);
    }
    // Registries.
    struct Dom {
        name: String,
        size: u64,
        elements: Vec<String>,
    }
    let n_domains = c.count(4, "domain registry")?;
    let mut domains = Vec::with_capacity(n_domains);
    for _ in 0..n_domains {
        let name = c.str("domain name")?;
        let size = c.u64("domain size")?;
        if size == 0 {
            return Err(c.malformed(format!("domain {name} has size 0")));
        }
        let n_elems = c.count(4, "element labels")?;
        let mut elements = Vec::with_capacity(n_elems);
        for _ in 0..n_elems {
            elements.push(c.str("element label")?);
        }
        if !elements.is_empty() && elements.len() as u64 != size {
            return Err(c.malformed(format!("domain {name}: label count != size")));
        }
        domains.push(Dom {
            name,
            size,
            elements,
        });
    }
    let n_attrs = c.count(8, "attribute registry")?;
    let mut attrs = Vec::with_capacity(n_attrs);
    for _ in 0..n_attrs {
        let name = c.str("attribute name")?;
        let dom = c.u32("attribute domain")?;
        if dom as usize >= n_domains {
            return Err(c.malformed(format!("attribute {name}: domain index out of range")));
        }
        attrs.push((name, dom));
    }
    let n_phys = c.count(9, "physical-domain registry")?;
    let mut phys = Vec::with_capacity(n_phys);
    for _ in 0..n_phys {
        let name = c.str("physical-domain name")?;
        let n_bits = c.count(4, "physical-domain bits")?;
        let mut bits = Vec::with_capacity(n_bits);
        for _ in 0..n_bits {
            bits.push(c.u32("bit index")?);
        }
        let anonymous = c.u8("anonymous flag")? != 0;
        phys.push((name, bits, anonymous));
    }
    // Node table and relations.
    let nodes = take_nodes(&mut c)?;
    let n_rels = c.count(9, "relation directory")?;
    struct Rel {
        name: String,
        schema: Vec<(u32, u32)>,
        slot: u32,
    }
    let mut rels = Vec::with_capacity(n_rels);
    for _ in 0..n_rels {
        let name = c.str("relation name")?;
        let n_schema = c.count(8, "relation schema")?;
        let mut schema = Vec::with_capacity(n_schema);
        for _ in 0..n_schema {
            let a = c.u32("schema attribute")?;
            let pd = c.u32("schema physical domain")?;
            if a as usize >= n_attrs {
                return Err(c.malformed(format!("relation {name}: attribute index out of range")));
            }
            if pd as usize >= n_phys {
                return Err(c.malformed(format!(
                    "relation {name}: physical-domain index out of range"
                )));
            }
            schema.push((a, pd));
        }
        let slot = c.u32("relation root slot")?;
        rels.push(Rel { name, schema, slot });
    }
    c.done()?;

    // Rebuild: fresh manager, saved order, registries replayed in id order.
    // The tag — not the ambient JEDD_CHAIN environment — decides the
    // kernel, so snapshots decode identically everywhere.
    let universe = Universe::new_with_backend(if backend == BACKEND_CBDD {
        jedd_core::Backend::Cbdd
    } else {
        jedd_core::Backend::Bdd
    });
    let mgr = universe.bdd_manager();
    mgr.add_vars(num_vars as usize);
    mgr.set_order(&order)?;
    for d in &domains {
        if d.elements.is_empty() {
            universe.add_domain(&d.name, d.size);
        } else {
            let refs: Vec<&str> = d.elements.iter().map(|s| s.as_str()).collect();
            universe.add_domain_with_elements(&d.name, &refs);
        }
    }
    for (name, dom) in &attrs {
        universe.add_attribute(name, DomainId::from_index(*dom));
    }
    for (name, bits, anonymous) in &phys {
        universe.restore_physical_domain(name, bits, *anonymous)?;
    }
    let slots: Vec<u32> = rels.iter().map(|r| r.slot).collect();
    let handles = mgr.import_nodes(&nodes, &slots)?;
    let mut relations = Vec::with_capacity(rels.len());
    for (r, bdd) in rels.into_iter().zip(handles) {
        let schema: Vec<(AttrId, PhysDomId)> = r
            .schema
            .iter()
            .map(|&(a, pd)| (AttrId::from_index(a), PhysDomId::from_index(pd)))
            .collect();
        let rel = Relation::from_parts(&universe, &schema, bdd)?;
        relations.push((r.name, rel));
    }
    Ok(BddSnapshot {
        universe,
        relations,
    })
}

// ------------------------------------------------------------ ZDD codec

/// A decoded ZDD snapshot: a fresh manager and the named roots it carried.
pub struct ZddSnapshot {
    /// The rebuilt manager (node ids are allocation-ordered and stable,
    /// so a re-export is byte-identical).
    pub manager: ZddManager,
    /// The named roots, in snapshot order.
    pub roots: Vec<(String, ZddId)>,
}

impl ZddSnapshot {
    /// The root with the given name, if present.
    pub fn root(&self, name: &str) -> Option<ZddId> {
        self.roots.iter().find(|(n, _)| n == name).map(|&(_, r)| r)
    }
}

/// Serializes named ZDD roots as a framed ZDD snapshot.
pub fn encode_zdd_snapshot(manager: &ZddManager, roots: &[(&str, ZddId)]) -> Vec<u8> {
    let mut p = Vec::new();
    put_u32(&mut p, manager.num_vars() as u32);
    let ids: Vec<ZddId> = roots.iter().map(|&(_, id)| id).collect();
    let (nodes, slots) = manager.export_nodes(&ids);
    put_nodes(&mut p, &nodes);
    put_u32(&mut p, roots.len() as u32);
    for ((name, _), slot) in roots.iter().zip(&slots) {
        put_str(&mut p, name);
        put_u32(&mut p, *slot);
    }
    let tag = if manager.chain_mode() {
        BACKEND_CZDD
    } else {
        BACKEND_ZDD
    };
    frame(tag, p)
}

/// Decodes a framed ZDD snapshot into a fresh manager.
///
/// # Errors
///
/// Same classes as [`decode_bdd_snapshot`].
pub fn decode_zdd_snapshot(bytes: &[u8], path: &Path) -> Result<ZddSnapshot, StoreError> {
    let (backend, payload) = unframe(bytes, path)?;
    if backend != BACKEND_ZDD && backend != BACKEND_CZDD {
        return Err(StoreError::BadHeader {
            path: path.to_path_buf(),
            reason: "not a ZDD snapshot",
        });
    }
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
        path,
    };
    let num_vars = c.u32("variable count")?;
    if num_vars > MAX_VARS {
        return Err(c.malformed("implausible variable count"));
    }
    let nodes = take_nodes(&mut c)?;
    let n_roots = c.count(8, "root directory")?;
    let mut named = Vec::with_capacity(n_roots);
    for _ in 0..n_roots {
        let name = c.str("root name")?;
        let slot = c.u32("root slot")?;
        named.push((name, slot));
    }
    c.done()?;
    let manager = if backend == BACKEND_CZDD {
        ZddManager::new_chained(num_vars as usize)
    } else {
        ZddManager::new(num_vars as usize)
    };
    let slots: Vec<u32> = named.iter().map(|&(_, s)| s).collect();
    let ids = manager.import_nodes(&nodes, &slots)?;
    let roots = named
        .into_iter()
        .zip(ids)
        .map(|((name, _), id)| (name, id))
        .collect();
    Ok(ZddSnapshot { manager, roots })
}

// ----------------------------------------------------- learned orders

/// A persisted learned variable order: the product of the offline
/// order-search lab for one analysis, replayed on warm runs so they start
/// from a known-good order and perform zero sifting sweeps.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OrderRecord {
    /// The analysis (or benchmark) the order was learned for.
    pub analysis: String,
    /// The backend the order was learned under.
    pub backend: jedd_core::Backend,
    /// The `level -> variable` table, as accepted by
    /// `BddManager::set_order` — a permutation of `0..len`.
    pub level2var: Vec<u32>,
}

/// Serializes a learned-order record in the common JSNP frame with the
/// [`BACKEND_ORDER`] tag.
pub fn encode_order_record(record: &OrderRecord) -> Vec<u8> {
    let mut p = Vec::new();
    put_str(&mut p, &record.analysis);
    put_u8(&mut p, record.backend.tag());
    put_u32(&mut p, record.level2var.len() as u32);
    for v in &record.level2var {
        put_u32(&mut p, *v);
    }
    frame(BACKEND_ORDER, p)
}

/// Decodes a learned-order record, validating that the table is a
/// permutation.
///
/// # Errors
///
/// The frame errors of [`decode_bdd_snapshot`], a
/// [`StoreError::BadHeader`] when the tag is not [`BACKEND_ORDER`], and
/// [`StoreError::Malformed`] when the backend byte or the permutation is
/// invalid.
pub fn decode_order_record(bytes: &[u8], path: &Path) -> Result<OrderRecord, StoreError> {
    let (backend, payload) = unframe(bytes, path)?;
    if backend != BACKEND_ORDER {
        return Err(StoreError::BadHeader {
            path: path.to_path_buf(),
            reason: "not a learned-order record",
        });
    }
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
        path,
    };
    let analysis = c.str("analysis name")?;
    let backend_tag = c.u8("order backend tag")?;
    let backend = jedd_core::Backend::from_tag(backend_tag)
        .ok_or_else(|| c.malformed(format!("unknown order backend tag {backend_tag}")))?;
    let n = c.count(4, "order table")?;
    if n as u64 > MAX_VARS as u64 {
        return Err(c.malformed("implausible variable count"));
    }
    let mut level2var = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for _ in 0..n {
        let v = c.u32("order entry")?;
        if (v as usize) >= n || seen[v as usize] {
            return Err(c.malformed(format!("order table is not a permutation (entry {v})")));
        }
        seen[v as usize] = true;
        level2var.push(v);
    }
    c.done()?;
    Ok(OrderRecord {
        analysis,
        backend,
        level2var,
    })
}

/// Atomically writes a learned-order record (write to a temp file in the
/// same directory, fsync, rename).
///
/// # Errors
///
/// [`StoreError::Io`] on any filesystem failure.
pub fn save_order_record(path: &Path, record: &OrderRecord) -> Result<(), StoreError> {
    crate::io::write_atomic(path, &encode_order_record(record), None, false)
}

/// Reads and decodes a learned-order record file.
///
/// # Errors
///
/// [`StoreError::Io`] if the file is unreadable, else the decode errors.
pub fn load_order_record(path: &Path) -> Result<OrderRecord, StoreError> {
    let bytes = std::fs::read(path).map_err(|e| StoreError::Io {
        op: "read order record",
        path: path.to_path_buf(),
        source: e,
    })?;
    decode_order_record(&bytes, path)
}

// ------------------------------------------------------------- file I/O

/// Reads and decodes a BDD snapshot file.
///
/// # Errors
///
/// [`StoreError::Io`] if the file is unreadable, else the decode errors.
pub fn load_bdd_snapshot(path: &Path) -> Result<BddSnapshot, StoreError> {
    let bytes = std::fs::read(path).map_err(|e| StoreError::Io {
        op: "read snapshot",
        path: path.to_path_buf(),
        source: e,
    })?;
    decode_bdd_snapshot(&bytes, path)
}

/// Reads and decodes a ZDD snapshot file.
///
/// # Errors
///
/// [`StoreError::Io`] if the file is unreadable, else the decode errors.
pub fn load_zdd_snapshot(path: &Path) -> Result<ZddSnapshot, StoreError> {
    let bytes = std::fs::read(path).map_err(|e| StoreError::Io {
        op: "read snapshot",
        path: path.to_path_buf(),
        source: e,
    })?;
    decode_zdd_snapshot(&bytes, path)
}
