//! Durable file primitives: write-to-temp + fsync + atomic-rename, and
//! synced appends.
//!
//! The atomic-rename protocol is what makes snapshots crash-safe: the
//! final file name only ever points at a fully written, fsynced file, so a
//! crash at any byte offset leaves either the old snapshot or the new one
//! intact — never a hybrid. The injected kills model a crash by stopping
//! the protocol at the same points a power cut would.

use crate::error::StoreError;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

fn io_err(op: &'static str, path: &Path, source: std::io::Error) -> StoreError {
    StoreError::Io {
        op,
        path: path.to_path_buf(),
        source,
    }
}

/// Fsyncs the directory containing `path`, making a just-completed rename
/// or append durable against the directory entry itself being lost. Best
/// effort on filesystems that reject directory syncs.
fn sync_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if let Ok(d) = File::open(parent) {
            let _ = d.sync_all();
        }
    }
}

/// Writes `bytes` to `path` via temp file + fsync + atomic rename.
///
/// `kill_after` tears the temp-file write after that many bytes (the temp
/// file stays behind, truncated; `path` is untouched); `kill_rename`
/// crashes after the temp file is complete and synced but before the
/// rename. Both return [`StoreError::Killed`].
pub(crate) fn write_atomic(
    path: &Path,
    bytes: &[u8],
    kill_after: Option<u64>,
    kill_rename: bool,
) -> Result<(), StoreError> {
    let tmp = path.with_extension("tmp");
    let mut f = File::create(&tmp).map_err(|e| io_err("create temp for", path, e))?;
    if let Some(cap) = kill_after {
        let cap = (cap as usize).min(bytes.len());
        f.write_all(&bytes[..cap])
            .map_err(|e| io_err("write temp for", path, e))?;
        let _ = f.sync_all();
        return Err(StoreError::Killed {
            at: "snapshot-write",
        });
    }
    f.write_all(bytes)
        .map_err(|e| io_err("write temp for", path, e))?;
    f.sync_all().map_err(|e| io_err("sync temp for", path, e))?;
    drop(f);
    if kill_rename {
        return Err(StoreError::Killed { at: "rename" });
    }
    std::fs::rename(&tmp, path).map_err(|e| io_err("rename into", path, e))?;
    sync_dir(path);
    Ok(())
}

/// Truncates `path` to `len` bytes and fsyncs, discarding anything after
/// the valid prefix (a torn tail). Returns whether anything was cut; a
/// missing file or one already at (or under) `len` is a no-op.
pub(crate) fn truncate_synced(path: &Path, len: u64) -> Result<bool, StoreError> {
    let f = match OpenOptions::new().write(true).open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
        Err(e) => return Err(io_err("open for truncate", path, e)),
    };
    let actual = f
        .metadata()
        .map_err(|e| io_err("stat for truncate", path, e))?
        .len();
    if actual <= len {
        return Ok(false);
    }
    f.set_len(len).map_err(|e| io_err("truncate", path, e))?;
    f.sync_all().map_err(|e| io_err("sync", path, e))?;
    Ok(true)
}

/// Appends `bytes` to `path` (creating it if missing) and fsyncs.
///
/// `kill_after` tears the append after that many bytes, modelling a crash
/// mid-append: the file keeps its valid prefix plus a torn tail the log
/// reader skips.
pub(crate) fn append_synced(
    path: &Path,
    bytes: &[u8],
    kill_after: Option<u64>,
) -> Result<(), StoreError> {
    let mut f = OpenOptions::new()
        .append(true)
        .create(true)
        .open(path)
        .map_err(|e| io_err("open for append", path, e))?;
    if let Some(cap) = kill_after {
        let cap = (cap as usize).min(bytes.len());
        f.write_all(&bytes[..cap])
            .map_err(|e| io_err("append to", path, e))?;
        let _ = f.sync_all();
        return Err(StoreError::Killed { at: "log-append" });
    }
    f.write_all(bytes).map_err(|e| io_err("append to", path, e))?;
    f.sync_all().map_err(|e| io_err("sync", path, e))?;
    sync_dir(path);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("jedd-store-io-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn atomic_write_round_trips() {
        let d = tmpdir("atomic");
        let p = d.join("file.bin");
        write_atomic(&p, b"hello", None, false).unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"hello");
        // Overwrite is atomic too.
        write_atomic(&p, b"world!", None, false).unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"world!");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn torn_write_leaves_old_file_intact() {
        let d = tmpdir("torn");
        let p = d.join("file.bin");
        write_atomic(&p, b"old-content", None, false).unwrap();
        let e = write_atomic(&p, b"new-content", Some(4), false).unwrap_err();
        assert!(matches!(e, StoreError::Killed { at: "snapshot-write" }));
        assert_eq!(std::fs::read(&p).unwrap(), b"old-content");
        // The torn temp file is what a crash would leave.
        assert_eq!(std::fs::read(p.with_extension("tmp")).unwrap(), b"new-");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn killed_rename_leaves_old_file_intact() {
        let d = tmpdir("rename");
        let p = d.join("file.bin");
        write_atomic(&p, b"old", None, false).unwrap();
        let e = write_atomic(&p, b"new", None, true).unwrap_err();
        assert!(matches!(e, StoreError::Killed { at: "rename" }));
        assert_eq!(std::fs::read(&p).unwrap(), b"old");
        // The complete temp file survives, as after a real pre-rename crash.
        assert_eq!(std::fs::read(p.with_extension("tmp")).unwrap(), b"new");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn torn_append_keeps_valid_prefix() {
        let d = tmpdir("append");
        let p = d.join("log.bin");
        append_synced(&p, b"rec1", None).unwrap();
        let e = append_synced(&p, b"rec2", Some(2)).unwrap_err();
        assert!(matches!(e, StoreError::Killed { at: "log-append" }));
        assert_eq!(std::fs::read(&p).unwrap(), b"rec1re");
        let _ = std::fs::remove_dir_all(&d);
    }
}
