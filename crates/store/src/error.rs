//! The typed error surface of the persistent store.
//!
//! Every failure mode of the on-disk formats — I/O errors, truncation,
//! checksum mismatches, malformed structure, injected kills — is a
//! [`StoreError`] variant. The deserializers never panic on corrupt input;
//! the crash-recovery tests corrupt snapshots byte by byte to hold them to
//! that.

use std::fmt;
use std::path::PathBuf;

/// An error from the snapshot, log or checkpoint layer.
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system I/O failure.
    Io {
        /// What the store was doing (e.g. `"write snapshot"`).
        op: &'static str,
        /// The file involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The file is shorter than its own framing claims — the signature of
    /// a torn write.
    Truncated {
        /// The file involved.
        path: PathBuf,
        /// Bytes the framing promised.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The payload checksum does not match its header.
    ChecksumMismatch {
        /// The file involved.
        path: PathBuf,
    },
    /// The fixed header is unreadable: wrong magic, unsupported version,
    /// or unknown backend tag.
    BadHeader {
        /// The file involved.
        path: PathBuf,
        /// What exactly is wrong.
        reason: &'static str,
    },
    /// The payload passed its checksum but does not parse as the declared
    /// structure (only reachable for files written by a different or
    /// buggy producer).
    Malformed {
        /// The file involved.
        path: PathBuf,
        /// What exactly failed to parse.
        reason: String,
    },
    /// Rebuilding kernel state from a structurally valid snapshot failed
    /// (node-table validation in the BDD/ZDD import).
    Import(jedd_bdd::BddError),
    /// Rebuilding relational state from a structurally valid snapshot
    /// failed (universe replay or schema validation).
    Restore(jedd_core::JeddError),
    /// A resume was requested but the directory holds no loadable
    /// checkpoint at all.
    NoCheckpoint {
        /// The checkpoint directory.
        dir: PathBuf,
    },
    /// An injected fault ([`crate::StoreFaults`]) killed the process model
    /// at this point; the bytes written so far stay on disk exactly as a
    /// real crash would leave them.
    Killed {
        /// The kill point (`"snapshot-write"`, `"rename"`, `"log-append"`).
        at: &'static str,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, source } => {
                write!(f, "{op} {}: {source}", path.display())
            }
            StoreError::Truncated {
                path,
                expected,
                actual,
            } => write!(
                f,
                "{} is truncated: framing claims {expected} bytes, found {actual}",
                path.display()
            ),
            StoreError::ChecksumMismatch { path } => {
                write!(f, "{}: payload checksum mismatch", path.display())
            }
            StoreError::BadHeader { path, reason } => {
                write!(f, "{}: bad header ({reason})", path.display())
            }
            StoreError::Malformed { path, reason } => {
                write!(f, "{}: malformed payload ({reason})", path.display())
            }
            StoreError::Import(e) => write!(f, "node import rejected: {e}"),
            StoreError::Restore(e) => write!(f, "universe restore rejected: {e}"),
            StoreError::NoCheckpoint { dir } => {
                write!(f, "no loadable checkpoint in {}", dir.display())
            }
            StoreError::Killed { at } => write!(f, "injected crash at {at}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Import(e) => Some(e),
            StoreError::Restore(e) => Some(e),
            _ => None,
        }
    }
}

impl From<jedd_bdd::BddError> for StoreError {
    fn from(e: jedd_bdd::BddError) -> StoreError {
        StoreError::Import(e)
    }
}

impl From<jedd_core::JeddError> for StoreError {
    fn from(e: jedd_core::JeddError) -> StoreError {
        StoreError::Restore(e)
    }
}

impl From<jedd_bdd::pager::PageError> for StoreError {
    /// A pager failure in the same vocabulary as the store's own on-disk
    /// failures: the page file is one more checksummed format, so a torn
    /// block maps to the variant a torn snapshot would produce.
    fn from(e: jedd_bdd::pager::PageError) -> StoreError {
        use jedd_bdd::pager::{BlockError, PageError};
        match e {
            PageError::Io {
                op, path, source, ..
            } => StoreError::Io { op, path, source },
            PageError::Corrupt { path, kind, .. } => match kind {
                BlockError::ChecksumMismatch => StoreError::ChecksumMismatch { path },
                BlockError::Truncated { expected, actual } => StoreError::Truncated {
                    path,
                    expected: expected as u64,
                    actual: actual as u64,
                },
                BlockError::BadMagic => StoreError::BadHeader {
                    path,
                    reason: "bad block magic",
                },
                BlockError::BadVersion(_) => StoreError::BadHeader {
                    path,
                    reason: "unsupported block version",
                },
                BlockError::WrongBlock { .. } => StoreError::BadHeader {
                    path,
                    reason: "block index mismatch",
                },
                BlockError::BadLength(_) => StoreError::BadHeader {
                    path,
                    reason: "impossible block payload length",
                },
            },
            PageError::Killed { at, .. } => StoreError::Killed { at },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errors = [
            StoreError::Io {
                op: "write snapshot",
                path: "x".into(),
                source: std::io::Error::other("disk full"),
            },
            StoreError::Truncated {
                path: "x".into(),
                expected: 10,
                actual: 4,
            },
            StoreError::ChecksumMismatch { path: "x".into() },
            StoreError::BadHeader {
                path: "x".into(),
                reason: "wrong magic",
            },
            StoreError::Malformed {
                path: "x".into(),
                reason: "string underrun".into(),
            },
            StoreError::Import(jedd_bdd::BddError::InvalidImport {
                index: 0,
                reason: "variable out of range",
            }),
            StoreError::Restore(jedd_core::JeddError::UniverseMismatch),
            StoreError::NoCheckpoint { dir: "x".into() },
            StoreError::Killed { at: "rename" },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn page_errors_map_to_the_matching_store_variants() {
        use jedd_bdd::pager::{BlockError, PageError};
        let corrupt = |kind| PageError::Corrupt {
            block: 4,
            path: "nodes.jpgb".into(),
            kind,
        };
        assert!(matches!(
            StoreError::from(corrupt(BlockError::ChecksumMismatch)),
            StoreError::ChecksumMismatch { .. }
        ));
        assert!(matches!(
            StoreError::from(corrupt(BlockError::Truncated {
                expected: 20,
                actual: 3
            })),
            StoreError::Truncated {
                expected: 20,
                actual: 3,
                ..
            }
        ));
        assert!(matches!(
            StoreError::from(corrupt(BlockError::BadMagic)),
            StoreError::BadHeader { .. }
        ));
        assert!(matches!(
            StoreError::from(PageError::Killed {
                at: "page-write",
                block: 1
            }),
            StoreError::Killed { at: "page-write" }
        ));
        assert!(matches!(
            StoreError::from(PageError::Io {
                op: "read",
                block: 0,
                path: "nodes.jpgb".into(),
                source: std::io::Error::other("gone"),
            }),
            StoreError::Io { op: "read", .. }
        ));
    }
}
