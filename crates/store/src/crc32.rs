//! CRC32 (IEEE 802.3 polynomial), shared with the kernel crate.
//!
//! The snapshot and log formats frame every payload with this checksum so
//! torn writes and bit flips are detected before any bytes are
//! interpreted. The pager's block format (`jedd_bdd::pager`) uses the
//! same function, so there is exactly one CRC implementation in the
//! workspace; it lives in `jedd-bdd` because the kernel sits below the
//! store in the dependency order.

pub(crate) use jedd_bdd::crc32::crc32;

#[cfg(test)]
mod tests {
    use super::*;

    /// The re-export stays the real zlib/PNG/Ethernet CRC — the on-disk
    /// formats of this crate depend on the exact polynomial.
    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xe8b7_be43);
    }
}
