//! Integration tests for the persistent store: snapshot round trips,
//! byte-level corruption sweeps, and checkpoint/resume flows with
//! injected crashes.

use jedd_bdd::ZddManager;
use jedd_core::{Backend, Relation, Universe};
use jedd_store::{
    decode_bdd_snapshot, decode_order_record, decode_zdd_snapshot, encode_bdd_snapshot,
    encode_order_record, encode_zdd_snapshot, load_order_record, read_records, resume_latest_bdd,
    resume_latest_zdd, save_order_record, snapshot_backend, CheckpointMeta, CheckpointPolicy,
    Checkpointer, LogRecord, OrderRecord, StoreError, StoreFaults, BACKEND_BDD, BACKEND_CBDD,
    BACKEND_CZDD, BACKEND_ORDER, LOG_FILE,
};
use std::path::{Path, PathBuf};

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("jedd-store-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A small but structurally rich universe: named and sized domains, an
/// interleaved physical-domain pair, and two relations sharing nodes.
fn sample_universe() -> (Universe, Vec<(String, Relation)>) {
    sample_universe_with(Backend::Bdd)
}

fn sample_universe_with(backend: Backend) -> (Universe, Vec<(String, Relation)>) {
    let u = Universe::new_with_backend(backend);
    let ty = u.add_domain("Type", 5);
    let method = u.add_domain_with_elements("Method", &["main", "clone", "toString"]);
    let sub = u.add_attribute("sub", ty);
    let sup = u.add_attribute("sup", ty);
    let m = u.add_attribute("m", method);
    let pair = u.add_physical_domains_interleaved(&["T1", "T2"], 3);
    let (t1, t2) = (pair[0], pair[1]);
    let m1 = u.add_physical_domain("M1", 2);

    let edges = Relation::from_tuples(
        &u,
        &[(sub, t1), (sup, t2)],
        &[vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4]],
    )
    .unwrap();
    let declares = Relation::from_tuples(
        &u,
        &[(m, m1), (sub, t1)],
        &[vec![0, 0], vec![1, 2], vec![2, 4]],
    )
    .unwrap();
    (
        u,
        vec![
            ("edges".to_string(), edges),
            ("declares".to_string(), declares),
        ],
    )
}

fn as_refs(rels: &[(String, Relation)]) -> Vec<(&str, &Relation)> {
    rels.iter().map(|(n, r)| (n.as_str(), r)).collect()
}

#[test]
fn bdd_snapshot_round_trips_tuple_identical() {
    let (u, rels) = sample_universe();
    let bytes = encode_bdd_snapshot(&u, &as_refs(&rels));
    assert_eq!(snapshot_backend(&bytes, Path::new("mem")).unwrap(), 0);

    let snap = decode_bdd_snapshot(&bytes, Path::new("mem")).unwrap();
    assert_eq!(snap.relations.len(), rels.len());
    for (name, original) in &rels {
        let restored = snap.relation(name).expect(name);
        assert_eq!(restored.tuples(), original.tuples(), "relation {name}");
        assert_eq!(restored.schema(), original.schema(), "schema of {name}");
    }
    // Universe metadata survives: names, element labels, registries.
    assert_eq!(snap.universe.num_domains(), u.num_domains());
    assert_eq!(snap.universe.num_attributes(), u.num_attributes());
    assert_eq!(snap.universe.num_physdoms(), u.num_physdoms());
    let method = snap.universe.find_domain("Method").unwrap();
    assert_eq!(
        snap.universe.domain_elements(method),
        vec!["main", "clone", "toString"]
    );

    // Round-tripping the restored state is byte-identical: registration
    // replay plus node import rebuilds identical ids under the same order.
    let bytes2 = encode_bdd_snapshot(&snap.universe, &as_refs(&snap.relations));
    assert_eq!(bytes, bytes2, "restore is not node-id-identical");
}

#[test]
fn bdd_snapshot_round_trips_after_reorder() {
    let (u, rels) = sample_universe();
    // Sift to a (likely) different order, so the snapshot must carry it.
    u.bdd_manager().reorder_sift();
    let bytes = encode_bdd_snapshot(&u, &as_refs(&rels));
    let snap = decode_bdd_snapshot(&bytes, Path::new("mem")).unwrap();
    for (name, original) in &rels {
        assert_eq!(
            snap.relation(name).expect(name).tuples(),
            original.tuples(),
            "relation {name} after reorder"
        );
    }
    let bytes2 = encode_bdd_snapshot(&snap.universe, &as_refs(&snap.relations));
    assert_eq!(bytes, bytes2);
}

#[test]
fn zdd_snapshot_round_trips() {
    let z = ZddManager::new(8);
    let a = z.family(&[vec![0], vec![1, 2], vec![3, 5, 7]]);
    let b = z.family(&[vec![1, 2], vec![4]]);
    let bytes = encode_zdd_snapshot(&z, &[("a", a), ("b", b)]);
    assert_eq!(snapshot_backend(&bytes, Path::new("mem")).unwrap(), 1);

    let snap = decode_zdd_snapshot(&bytes, Path::new("mem")).unwrap();
    assert_eq!(snap.manager.sets(snap.root("a").unwrap()), z.sets(a));
    assert_eq!(snap.manager.sets(snap.root("b").unwrap()), z.sets(b));
    let restored: Vec<(&str, jedd_bdd::ZddId)> =
        snap.roots.iter().map(|(n, id)| (n.as_str(), *id)).collect();
    assert_eq!(encode_zdd_snapshot(&snap.manager, &restored), bytes);
}

/// The acceptance bar: flipping any single byte of a snapshot yields a
/// typed error (or, for a handful of don't-care bytes, a clean decode) —
/// never a panic, and never a silently wrong relation.
#[test]
fn single_byte_corruption_never_panics() {
    let (u, rels) = sample_universe();
    let bytes = encode_bdd_snapshot(&u, &as_refs(&rels));
    let baseline: Vec<Vec<Vec<u64>>> = rels.iter().map(|(_, r)| r.tuples()).collect();
    for i in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[i] ^= 0x20;
        match decode_bdd_snapshot(&bad, Path::new("mem")) {
            // Every corruption must be a typed error...
            Err(
                StoreError::BadHeader { .. }
                | StoreError::ChecksumMismatch { .. }
                | StoreError::Truncated { .. }
                | StoreError::Malformed { .. }
                | StoreError::Import(_)
                | StoreError::Restore(_),
            ) => {}
            Err(other) => panic!("byte {i}: unexpected error class {other}"),
            // ...except a flip that the format genuinely tolerates, which
            // must then decode to exactly the original tuples (a CRC byte
            // flip cannot land here; this arm is unreachable in practice
            // and guards against silent acceptance).
            Ok(snap) => {
                for ((_, r), want) in snap.relations.iter().zip(&baseline) {
                    assert_eq!(&r.tuples(), want, "byte {i} silently changed a relation");
                }
            }
        }
    }
}

#[test]
fn truncation_at_every_length_never_panics() {
    let (u, rels) = sample_universe();
    let bytes = encode_bdd_snapshot(&u, &as_refs(&rels));
    for len in 0..bytes.len() {
        let err = match decode_bdd_snapshot(&bytes[..len], Path::new("mem")) {
            Ok(_) => panic!("truncated prefix must not decode"),
            Err(e) => e,
        };
        assert!(
            matches!(
                err,
                StoreError::Truncated { .. } | StoreError::BadHeader { .. }
            ),
            "prefix of {len} bytes: unexpected error {err}"
        );
    }
}

#[test]
fn zdd_single_byte_corruption_never_panics() {
    let z = ZddManager::new(6);
    let a = z.family(&[vec![0, 2], vec![1], vec![3, 4, 5]]);
    let bytes = encode_zdd_snapshot(&z, &[("a", a)]);
    for i in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[i] ^= 0x20;
        if let Ok(snap) = decode_zdd_snapshot(&bad, Path::new("mem")) {
            assert_eq!(
                snap.manager.sets(snap.root("a").unwrap()),
                z.sets(a),
                "byte {i} silently changed the family"
            );
        }
    }
}

#[test]
fn checkpoint_and_resume_latest() {
    let d = tmpdir("resume");
    let (u, rels) = sample_universe();
    let mut cp = Checkpointer::create(&d, CheckpointPolicy::default()).unwrap();
    for round in 1..=3u64 {
        let meta = CheckpointMeta {
            analysis: "hierarchy",
            round,
            phase: 0,
            aux: round * 10,
            rng: 0x5eed ^ round,
        };
        cp.checkpoint_bdd(&meta, &u, &as_refs(&rels)).unwrap();
    }
    let rp = resume_latest_bdd(&d).unwrap();
    assert_eq!(rp.record.round, 3);
    assert_eq!(rp.record.aux, 30);
    assert_eq!(rp.record.analysis, "hierarchy");
    for (name, original) in &rels {
        assert_eq!(rp.relation(name).expect(name).tuples(), original.tuples());
    }
    // Stats were restored from the record.
    assert_eq!(
        rp.universe.stats().relational_ops,
        u.stats().relational_ops
    );
    // Pruning kept exactly the last two snapshots.
    assert!(!d.join("snap-0").exists());
    assert!(d.join("snap-1").exists());
    assert!(d.join("snap-2").exists());
    let _ = std::fs::remove_dir_all(&d);
}

#[test]
fn resume_skips_corrupt_newest_checkpoint() {
    let d = tmpdir("skip-corrupt");
    let (u, rels) = sample_universe();
    let mut cp = Checkpointer::create(&d, CheckpointPolicy::default()).unwrap();
    for round in 1..=2u64 {
        let meta = CheckpointMeta {
            analysis: "callgraph",
            round,
            phase: 0,
            aux: 0,
            rng: 0,
        };
        cp.checkpoint_bdd(&meta, &u, &as_refs(&rels)).unwrap();
    }
    // Corrupt the newest snapshot in place.
    let newest = d.join("snap-1");
    let mut bytes = std::fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&newest, &bytes).unwrap();

    let rp = resume_latest_bdd(&d).unwrap();
    assert_eq!(rp.record.round, 1, "should fall back to the previous seq");
    for (name, original) in &rels {
        assert_eq!(rp.relation(name).expect(name).tuples(), original.tuples());
    }
    let _ = std::fs::remove_dir_all(&d);
}

/// A kill between the snapshot write and the log append (here: torn
/// snapshot, suppressed rename, torn log append — all three flavours)
/// leaves the previous committed checkpoint resumable.
#[test]
fn kill_between_snapshot_and_commit_preserves_previous_checkpoint() {
    let plans = [
        StoreFaults::kill_snapshot(1, 10),
        StoreFaults::kill_rename(1),
        StoreFaults::kill_log(1, 3),
    ];
    for (i, plan) in plans.into_iter().enumerate() {
        let d = tmpdir(&format!("kill-{i}"));
        let (u, rels) = sample_universe();
        let mut cp = Checkpointer::create(&d, CheckpointPolicy::default()).unwrap();
        let meta = CheckpointMeta {
            analysis: "vcr",
            round: 1,
            phase: 0,
            aux: 0,
            rng: 7,
        };
        cp.checkpoint_bdd(&meta, &u, &as_refs(&rels)).unwrap();

        cp.set_faults(plan);
        let meta2 = CheckpointMeta { round: 2, ..meta };
        let err = cp.checkpoint_bdd(&meta2, &u, &as_refs(&rels)).unwrap_err();
        assert!(matches!(err, StoreError::Killed { .. }), "plan {i}: {err}");

        // A fresh process resumes from the round-1 checkpoint.
        let rp = resume_latest_bdd(&d).unwrap();
        assert_eq!(rp.record.round, 1, "plan {i}");
        for (name, original) in &rels {
            assert_eq!(rp.relation(name).expect(name).tuples(), original.tuples());
        }
        // And a reopened checkpointer continues the sequence without
        // reusing seq numbers already committed.
        let cp2 = Checkpointer::create(&d, CheckpointPolicy::default()).unwrap();
        drop(cp2);
        let _ = std::fs::remove_dir_all(&d);
    }
}

#[test]
fn zdd_checkpoint_resume_round_trips() {
    let d = tmpdir("zdd-resume");
    let z = ZddManager::new(8);
    let fam = z.family(&[vec![0, 1], vec![2, 3], vec![4]]);
    let mut cp = Checkpointer::create(&d, CheckpointPolicy::default()).unwrap();
    let meta = CheckpointMeta {
        analysis: "zdd-closure",
        round: 4,
        phase: 0,
        aux: 0,
        rng: 0,
    };
    cp.checkpoint_zdd(&meta, &z, &[("reach", fam)]).unwrap();

    let rp = resume_latest_zdd(&d).unwrap();
    assert_eq!(rp.record.round, 4);
    assert_eq!(rp.manager.sets(rp.root("reach").unwrap()), z.sets(fam));
    let _ = std::fs::remove_dir_all(&d);
}

#[test]
fn resume_from_empty_or_absent_directory_is_typed() {
    let d = tmpdir("empty");
    let err = match resume_latest_bdd(&d) {
        Ok(_) => panic!("empty dir must not resume"),
        Err(e) => e,
    };
    assert!(matches!(err, StoreError::NoCheckpoint { .. }));
    let err = match resume_latest_bdd(&d.join("does-not-exist")) {
        Ok(_) => panic!("absent dir must not resume"),
        Err(e) => e,
    };
    assert!(matches!(err, StoreError::NoCheckpoint { .. }));
    let _ = std::fs::remove_dir_all(&d);
}

#[test]
fn log_with_torn_tail_still_resumes() {
    let d = tmpdir("torn-log");
    let (u, rels) = sample_universe();
    let mut cp = Checkpointer::create(&d, CheckpointPolicy::default()).unwrap();
    let meta = CheckpointMeta {
        analysis: "sideeffect",
        round: 1,
        phase: 1,
        aux: 0,
        rng: 0,
    };
    cp.checkpoint_bdd(&meta, &u, &as_refs(&rels)).unwrap();
    // Simulate a crash mid-append of the *next* record: garbage tail.
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(d.join(LOG_FILE))
        .unwrap();
    f.write_all(b"JLOG\xff\xff").unwrap();
    drop(f);

    let rp = resume_latest_bdd(&d).unwrap();
    assert_eq!(rp.record.round, 1);
    assert_eq!(rp.record.phase, 1);
    let _ = std::fs::remove_dir_all(&d);
}

/// A crash mid-log-append, a resume, more commits, and a *second* crash:
/// reopening the directory must truncate the torn tail, or every
/// post-resume commit sits behind bytes the reader always stops at —
/// committed but invisible, and pruned out from under the reader.
#[test]
fn reopen_after_torn_append_truncates_tail_and_keeps_new_commits_visible() {
    let d = tmpdir("torn-reopen");
    let (u, rels) = sample_universe();
    let meta = CheckpointMeta {
        analysis: "pointsto",
        round: 1,
        phase: 0,
        aux: 0,
        rng: 0,
    };
    let mut cp = Checkpointer::create(&d, CheckpointPolicy::default()).unwrap();
    cp.checkpoint_bdd(&meta, &u, &as_refs(&rels)).unwrap();
    // Crash mid-append of the round-2 record.
    cp.set_faults(StoreFaults::kill_log(1, 3));
    let meta2 = CheckpointMeta { round: 2, ..meta };
    let err = cp.checkpoint_bdd(&meta2, &u, &as_refs(&rels)).unwrap_err();
    assert!(matches!(err, StoreError::Killed { at: "log-append" }));

    // The resumed process reopens the directory and commits three more
    // rounds (enough for pruning to pass over the pre-crash window).
    let mut cp2 = Checkpointer::create(&d, CheckpointPolicy::default()).unwrap();
    for round in 2..=4u64 {
        let m = CheckpointMeta { round, ..meta };
        cp2.checkpoint_bdd(&m, &u, &as_refs(&rels)).unwrap();
    }
    // Every post-crash commit is readable.
    let rounds: Vec<u64> = read_records(&d.join(LOG_FILE))
        .unwrap()
        .iter()
        .map(|r| r.round)
        .collect();
    assert_eq!(rounds, vec![1, 2, 3, 4]);
    // A second crash (plain process death) still resumes, at the newest
    // round — not NoCheckpoint, and not the stale pre-crash state.
    let rp = resume_latest_bdd(&d).unwrap();
    assert_eq!(rp.record.round, 4);
    for (name, original) in &rels {
        assert_eq!(rp.relation(name).expect(name).tuples(), original.tuples());
    }
    let _ = std::fs::remove_dir_all(&d);
}

/// Pruning reclaims stray snapshots below the keep window even when the
/// sequence history has gaps — it scans directory entries, so a missing
/// intermediate sequence doesn't shadow older files forever.
#[test]
fn prune_reclaims_snapshots_below_a_sequence_gap() {
    let d = tmpdir("prune-gap");
    let (u, rels) = sample_universe();
    let meta = CheckpointMeta {
        analysis: "hierarchy",
        round: 1,
        phase: 0,
        aux: 0,
        rng: 0,
    };
    let mut cp = Checkpointer::create(&d, CheckpointPolicy::default()).unwrap();
    for round in 1..=6u64 {
        let m = CheckpointMeta { round, ..meta };
        cp.checkpoint_bdd(&m, &u, &as_refs(&rels)).unwrap();
    }
    // Plant strays far below the keep window, with a gap above them.
    std::fs::write(d.join("snap-1"), b"stray").unwrap();
    std::fs::write(d.join("snap-0.tmp"), b"stray").unwrap();

    let m = CheckpointMeta { round: 7, ..meta };
    cp.checkpoint_bdd(&m, &u, &as_refs(&rels)).unwrap();
    assert!(!d.join("snap-1").exists(), "stray below the gap not pruned");
    assert!(!d.join("snap-0.tmp").exists(), "stray temp not pruned");
    assert!(d.join("snap-5").exists());
    assert!(d.join("snap-6").exists());
    let _ = std::fs::remove_dir_all(&d);
}

/// A tampered log record whose snapshot name points outside the
/// checkpoint directory is skipped, never followed.
#[test]
fn resume_rejects_snapshot_names_escaping_the_directory() {
    let d = tmpdir("escape");
    let ckpt = d.join("ckpt");
    std::fs::create_dir_all(&ckpt).unwrap();
    // A perfectly valid snapshot, but outside the checkpoint directory.
    let (u, rels) = sample_universe();
    std::fs::write(d.join("evil"), encode_bdd_snapshot(&u, &as_refs(&rels))).unwrap();
    let rec = LogRecord {
        seq: 0,
        analysis: "pointsto".into(),
        round: 9,
        phase: 0,
        aux: 0,
        snapshot: "../evil".into(),
        backend: BACKEND_BDD,
        rng: 0,
        auto_replaces: 0,
        relational_ops: 0,
    };
    std::fs::write(ckpt.join(LOG_FILE), rec.encode()).unwrap();
    let err = resume_latest_bdd(&ckpt).err().expect("must not resume");
    assert!(matches!(err, StoreError::NoCheckpoint { .. }), "{err}");
    let _ = std::fs::remove_dir_all(&d);
}

/// Property test: snapshots of randomly generated universes — random
/// domain sizes, physical-domain widths, schemas and tuple sets — decode
/// back tuple-identical, schema-identical, and re-encode byte-identical
/// (the node-id-identity property). Deterministically seeded so failures
/// reproduce.
#[test]
fn random_snapshot_round_trips() {
    let mut rng = jedd_bdd::rng::XorShift64Star::new(0xc0ffee);
    for case in 0..24u64 {
        let u = Universe::new();
        let ndoms = 1 + rng.gen_index(0..3);
        let doms: Vec<_> = (0..ndoms)
            .map(|i| {
                let bits = 1 + rng.gen_index(0..5);
                let d = u.add_domain(&format!("D{i}"), 1u64 << bits);
                let p = u.add_physical_domain(&format!("P{i}"), bits);
                (d, p, 1u64 << bits)
            })
            .collect();
        let nrels = 1 + rng.gen_index(0..3);
        let mut rels = Vec::new();
        for r in 0..nrels {
            let width = 1 + rng.gen_index(0..doms.len().min(3));
            let mut schema = Vec::new();
            let mut sizes = Vec::new();
            for a in 0..width {
                let (d, p, size) = doms[rng.gen_index(0..doms.len())];
                // Each attribute needs its own physical domain; reuse of a
                // physdom within one relation is a schema error, so give
                // every column a fresh one of the right width.
                let bits = size.trailing_zeros() as usize;
                let p = if schema.iter().any(|&(_, q)| q == p) {
                    u.add_physical_domain(&format!("P{r}_{a}"), bits)
                } else {
                    p
                };
                schema.push((u.add_attribute(&format!("a{r}_{a}"), d), p));
                sizes.push(size);
            }
            let ntuples = rng.gen_index(0..20);
            let tuples: Vec<Vec<u64>> = (0..ntuples)
                .map(|_| sizes.iter().map(|&s| rng.gen_range(0..s)).collect())
                .collect();
            let rel = Relation::from_tuples(&u, &schema, &tuples).unwrap();
            rels.push((format!("rel{r}"), rel));
        }
        let bytes = encode_bdd_snapshot(&u, &as_refs(&rels));
        let snap = decode_bdd_snapshot(&bytes, Path::new("mem"))
            .unwrap_or_else(|e| panic!("case {case}: decode failed: {e}"));
        for (name, original) in &rels {
            let restored = snap.relation(name).expect(name);
            assert_eq!(restored.tuples(), original.tuples(), "case {case} {name}");
            assert_eq!(restored.schema(), original.schema(), "case {case} {name}");
        }
        let bytes2 = encode_bdd_snapshot(&snap.universe, &as_refs(&snap.relations));
        assert_eq!(bytes, bytes2, "case {case}: restore not node-id-identical");
    }
}

#[test]
fn cbdd_snapshot_round_trips_and_keeps_backend() {
    let (u, rels) = sample_universe_with(Backend::Cbdd);
    assert!(u.bdd_manager().chain_mode());
    let bytes = encode_bdd_snapshot(&u, &as_refs(&rels));
    assert_eq!(
        snapshot_backend(&bytes, Path::new("mem")).unwrap(),
        BACKEND_CBDD
    );
    let snap = decode_bdd_snapshot(&bytes, Path::new("mem")).unwrap();
    assert_eq!(snap.universe.backend(), Backend::Cbdd);
    assert!(snap.universe.bdd_manager().chain_mode());
    for (name, original) in &rels {
        let restored = snap.relation(name).expect(name);
        assert_eq!(restored.tuples(), original.tuples(), "relation {name}");
        assert_eq!(restored.schema(), original.schema(), "schema of {name}");
    }
    // Re-encoding the restored state is byte-identical: the spine
    // expansion and chain re-formation are both deterministic.
    let bytes2 = encode_bdd_snapshot(&snap.universe, &as_refs(&snap.relations));
    assert_eq!(bytes, bytes2, "CBDD restore is not node-id-identical");

    // The plain-mode snapshot of the same data decodes into a plain
    // universe and carries identical tuples: the formats interconvert at
    // the tuple level, not the byte level.
    let (pu, prels) = sample_universe();
    let pbytes = encode_bdd_snapshot(&pu, &as_refs(&prels));
    assert_eq!(
        snapshot_backend(&pbytes, Path::new("mem")).unwrap(),
        BACKEND_BDD
    );
    let psnap = decode_bdd_snapshot(&pbytes, Path::new("mem")).unwrap();
    assert_eq!(psnap.universe.backend(), Backend::Bdd);
    for (name, original) in &rels {
        assert_eq!(psnap.relation(name).expect(name).tuples(), original.tuples());
    }
}

#[test]
fn czdd_snapshot_round_trips_and_keeps_backend() {
    let z = ZddManager::new_chained(8);
    let a = z.family(&[vec![0], vec![1, 2], vec![3, 5, 7]]);
    let bytes = encode_zdd_snapshot(&z, &[("a", a)]);
    assert_eq!(
        snapshot_backend(&bytes, Path::new("mem")).unwrap(),
        BACKEND_CZDD
    );
    let snap = decode_zdd_snapshot(&bytes, Path::new("mem")).unwrap();
    assert!(snap.manager.chain_mode());
    assert_eq!(snap.manager.sets(snap.root("a").unwrap()), z.sets(a));
    let restored: Vec<(&str, jedd_bdd::ZddId)> =
        snap.roots.iter().map(|(n, id)| (n.as_str(), *id)).collect();
    assert_eq!(encode_zdd_snapshot(&snap.manager, &restored), bytes);
}

#[test]
fn unknown_backend_bytes_fail_typed() {
    let (u, rels) = sample_universe();
    let bytes = encode_bdd_snapshot(&u, &as_refs(&rels));
    // Every byte value above the highest known tag must be rejected at
    // the header, before the payload is interpreted.
    for tag in (BACKEND_ORDER + 1)..=u8::MAX {
        let mut bad = bytes.clone();
        bad[8] = tag;
        let err = decode_bdd_snapshot(&bad, Path::new("mem"))
            .err()
            .unwrap_or_else(|| panic!("backend byte {tag} must not decode"));
        assert!(
            matches!(err, StoreError::BadHeader { reason, .. } if reason == "unknown backend tag"),
            "backend byte {tag}: unexpected error {err}"
        );
    }
    // Known-but-wrong tags are also typed errors (the checksum does not
    // cover the header byte, so this is a header-level rejection).
    for (tag, is_bdd) in [
        (BACKEND_CBDD, true),
        (jedd_store::BACKEND_ZDD, false),
        (BACKEND_CZDD, false),
        (BACKEND_ORDER, false),
    ] {
        let mut bad = bytes.clone();
        bad[8] = tag;
        match decode_bdd_snapshot(&bad, Path::new("mem")) {
            // CBDD shares the payload format, so redirecting the tag is a
            // legal decode into the chained kernel, tuple-identical.
            Ok(snap) if is_bdd => {
                for (name, original) in &rels {
                    assert_eq!(snap.relation(name).expect(name).tuples(), original.tuples());
                }
            }
            Ok(_) => panic!("backend byte {tag} silently decoded as BDD"),
            Err(StoreError::BadHeader { .. } | StoreError::Malformed { .. }) => {}
            Err(other) => panic!("backend byte {tag}: unexpected error class {other}"),
        }
    }
}

#[test]
fn cbdd_single_byte_corruption_never_panics() {
    let (u, rels) = sample_universe_with(Backend::Cbdd);
    let bytes = encode_bdd_snapshot(&u, &as_refs(&rels));
    let baseline: Vec<Vec<Vec<u64>>> = rels.iter().map(|(_, r)| r.tuples()).collect();
    for i in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[i] ^= 0x20;
        match decode_bdd_snapshot(&bad, Path::new("mem")) {
            Err(
                StoreError::BadHeader { .. }
                | StoreError::ChecksumMismatch { .. }
                | StoreError::Truncated { .. }
                | StoreError::Malformed { .. }
                | StoreError::Import(_)
                | StoreError::Restore(_),
            ) => {}
            Err(other) => panic!("byte {i}: unexpected error class {other}"),
            Ok(snap) => {
                for ((_, r), want) in snap.relations.iter().zip(&baseline) {
                    assert_eq!(&r.tuples(), want, "byte {i} silently changed a relation");
                }
            }
        }
    }
}

#[test]
fn order_record_round_trips_and_survives_corruption_sweep() {
    let record = OrderRecord {
        analysis: "pointsto-javac".to_string(),
        backend: Backend::Cbdd,
        level2var: vec![3, 0, 2, 1, 5, 4],
    };
    let bytes = encode_order_record(&record);
    assert_eq!(
        snapshot_backend(&bytes, Path::new("mem")).unwrap(),
        BACKEND_ORDER
    );
    let decoded = decode_order_record(&bytes, Path::new("mem")).unwrap();
    assert_eq!(decoded, record);
    // An order record is not a snapshot and vice versa.
    assert!(matches!(
        decode_bdd_snapshot(&bytes, Path::new("mem")),
        Err(StoreError::BadHeader { reason: "not a BDD snapshot", .. })
    ));
    let (u, rels) = sample_universe();
    let snap_bytes = encode_bdd_snapshot(&u, &as_refs(&rels));
    assert!(matches!(
        decode_order_record(&snap_bytes, Path::new("mem")),
        Err(StoreError::BadHeader { reason: "not a learned-order record", .. })
    ));
    // The single-byte corruption sweep extends to the new record kind: a
    // flip is a typed error or decodes to exactly the original order.
    for i in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[i] ^= 0x20;
        match decode_order_record(&bad, Path::new("mem")) {
            Err(
                StoreError::BadHeader { .. }
                | StoreError::ChecksumMismatch { .. }
                | StoreError::Truncated { .. }
                | StoreError::Malformed { .. },
            ) => {}
            Err(other) => panic!("byte {i}: unexpected error class {other}"),
            Ok(got) => assert_eq!(got, record, "byte {i} silently changed the order"),
        }
    }
}

#[test]
fn order_record_rejects_non_permutations() {
    let mut record = OrderRecord {
        analysis: "x".to_string(),
        backend: Backend::Bdd,
        level2var: vec![0, 1, 1],
    };
    let err = decode_order_record(&encode_order_record(&record), Path::new("mem"))
        .expect_err("duplicate entries must not decode");
    assert!(matches!(err, StoreError::Malformed { .. }), "{err}");
    record.level2var = vec![0, 1, 7];
    let err = decode_order_record(&encode_order_record(&record), Path::new("mem"))
        .expect_err("out-of-range entries must not decode");
    assert!(matches!(err, StoreError::Malformed { .. }), "{err}");
}

#[test]
fn order_record_file_round_trip() {
    let d = tmpdir("order-file");
    let record = OrderRecord {
        analysis: "hierarchy-jedit".to_string(),
        backend: Backend::Bdd,
        level2var: (0..32u32).rev().collect(),
    };
    let path = d.join("hierarchy-jedit.order");
    save_order_record(&path, &record).unwrap();
    assert_eq!(load_order_record(&path).unwrap(), record);
    let err = load_order_record(&d.join("absent.order"))
        .expect_err("absent file must be Io");
    assert!(matches!(err, StoreError::Io { .. }), "{err}");
    let _ = std::fs::remove_dir_all(&d);
}
