//! Machine-readable bench output without a serde dependency.
//!
//! Benches build a [`JsonObject`] of their headline numbers and call
//! [`write_section`]; when the `JEDD_BENCH_JSON` environment variable
//! names a file, the section is merged into that file as one top-level
//! key, so several bench binaries can contribute to a single report
//! (CI writes `BENCH_kernel.json` this way). With the variable unset
//! the call is a no-op and the benches stay pure timing runs.

use std::fmt::Write as _;

/// A flat JSON object built field by field. Values are emitted in
/// insertion order; keys are not deduplicated.
#[derive(Debug, Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl JsonObject {
    /// Creates an empty object.
    pub fn new() -> JsonObject {
        JsonObject::default()
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> JsonObject {
        self.fields
            .push((key.to_string(), format!("\"{}\"", escape(value))));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, value: u64) -> JsonObject {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a float field, rendered with enough precision for timings.
    pub fn float(mut self, key: &str, value: f64) -> JsonObject {
        let rendered = if value.is_finite() {
            format!("{value:.6}")
        } else {
            "null".to_string()
        };
        self.fields.push((key.to_string(), rendered));
        self
    }

    /// Adds a nested object field.
    pub fn object(mut self, key: &str, value: JsonObject) -> JsonObject {
        self.fields.push((key.to_string(), value.render()));
        self
    }

    /// Renders the object as a JSON string.
    pub fn render(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape(k), v);
        }
        out.push('}');
        out
    }
}

/// Merges `section` into the JSON report file named by the
/// `JEDD_BENCH_JSON` environment variable, under the key `name`.
///
/// Creates the file (as `{"name": {...}}`) when absent; otherwise the
/// existing top-level object is re-parsed just enough to insert or
/// replace the key. No-op when the variable is unset. I/O errors are
/// reported on stderr rather than panicking — a failed report must not
/// fail the bench.
///
/// When `JEDD_BENCH_RUN` is also set, the section is stamped with a
/// `"run"` field and any existing group carrying a *different* stamp is
/// pruned from the document. Without this, groups from renamed or
/// retired benchmarks (the old `parallel_apply` shape, say) linger in
/// `BENCH_kernel.json` forever and skew trajectory tooling; with it, the
/// first section a new run writes sweeps every stale group out.
pub fn write_section(name: &str, section: &JsonObject) {
    let Ok(path) = std::env::var("JEDD_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let run = std::env::var("JEDD_BENCH_RUN").ok().filter(|r| !r.is_empty());
    let rendered = stamp_run(&section.render(), run.as_deref());
    let merged = match std::fs::read_to_string(&path) {
        Ok(existing) => merge_into(&existing, name, &rendered, run.as_deref()),
        Err(_) => format!("{{\"{}\":{}}}\n", escape(name), rendered),
    };
    if let Err(e) = std::fs::write(&path, merged) {
        eprintln!("bench report: cannot write {path}: {e}");
    }
}

/// Prepends a `"run"` field to a rendered object, so every group records
/// which run produced it.
fn stamp_run(rendered: &str, run: Option<&str>) -> String {
    let Some(run) = run else {
        return rendered.to_string();
    };
    let inner = rendered.strip_prefix('{').unwrap_or(rendered);
    if inner == "}" {
        format!("{{\"run\":\"{}\"}}", escape(run))
    } else {
        format!("{{\"run\":\"{}\",{}", escape(run), inner)
    }
}

/// Inserts or replaces one top-level key in an existing JSON object
/// document, pruning groups stamped by other runs when `run` is set.
/// Falls back to rewriting the whole document when the existing content
/// doesn't look like an object.
fn merge_into(existing: &str, name: &str, rendered: &str, run: Option<&str>) -> String {
    let trimmed = existing.trim();
    let fresh = || format!("{{\"{}\":{}}}\n", escape(name), rendered);
    if !trimmed.starts_with('{') || !trimmed.ends_with('}') {
        return fresh();
    }
    let inner = &trimmed[1..trimmed.len() - 1];
    // Re-collect the existing top-level entries, dropping any previous
    // run of this section — and, when a run id is in force, every group
    // another run wrote — then append the new one.
    let current_stamp = run.map(|r| format!("\"run\":\"{}\"", escape(r)));
    let mut entries: Vec<&str> = Vec::new();
    for entry in split_top_level(inner) {
        let key_prefix = format!("\"{}\":", escape(name));
        if entry.trim_start().starts_with(&key_prefix) {
            continue;
        }
        if let Some(stamp) = &current_stamp {
            if !entry.contains(stamp.as_str()) {
                continue;
            }
        }
        entries.push(entry);
    }
    let mut out = String::from("{");
    for e in &entries {
        out.push_str(e.trim());
        out.push(',');
    }
    let _ = write!(out, "\"{}\":{}", escape(name), rendered);
    out.push_str("}\n");
    out
}

/// Splits the inside of a JSON object on top-level commas (commas not
/// nested in braces, brackets, or strings).
fn split_top_level(inner: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut in_string = false;
    let mut escaped = false;
    let mut start = 0usize;
    for (i, c) in inner.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '{' | '[' if !in_string => depth += 1,
            '}' | ']' if !in_string => depth -= 1,
            ',' if !in_string && depth == 0 => {
                if !inner[start..i].trim().is_empty() {
                    out.push(&inner[start..i]);
                }
                start = i + 1;
            }
            _ => {}
        }
    }
    if !inner[start..].trim().is_empty() {
        out.push(&inner[start..]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_renders_in_order() {
        let o = JsonObject::new()
            .str("name", "shift")
            .int("hits", 42)
            .float("ms", 1.25)
            .object("inner", JsonObject::new().int("n", 1));
        assert_eq!(
            o.render(),
            "{\"name\":\"shift\",\"hits\":42,\"ms\":1.250000,\"inner\":{\"n\":1}}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let o = JsonObject::new().str("k", "a\"b\\c\nd");
        assert_eq!(o.render(), "{\"k\":\"a\\\"b\\\\c\\nd\"}");
    }

    #[test]
    fn merge_adds_and_replaces_sections() {
        let first = merge_into("", "a", "{\"x\":1}", None);
        assert_eq!(first.trim(), "{\"a\":{\"x\":1}}");
        let both = merge_into(&first, "b", "{\"y\":2}", None);
        assert_eq!(both.trim(), "{\"a\":{\"x\":1},\"b\":{\"y\":2}}");
        let replaced = merge_into(&both, "a", "{\"x\":9}", None);
        assert_eq!(replaced.trim(), "{\"b\":{\"y\":2},\"a\":{\"x\":9}}");
    }

    #[test]
    fn merge_survives_commas_inside_strings() {
        let doc = "{\"a\":{\"label\":\"x,y\"}}";
        let merged = merge_into(doc, "b", "{\"n\":0}", None);
        assert_eq!(merged.trim(), "{\"a\":{\"label\":\"x,y\"},\"b\":{\"n\":0}}");
    }

    #[test]
    fn run_id_prunes_groups_from_other_runs() {
        // A report accumulated by run r1, including a group from a
        // benchmark that no longer exists (`parallel_apply`).
        let doc = "{\"parallel_apply\":{\"run\":\"r1\",\"speedup\":0.65},\
                   \"apply\":{\"run\":\"r1\",\"ms\":3}}";
        // The first section run r2 writes sweeps every r1 group out...
        let first = merge_into(doc, "apply", &stamp_run("{\"ms\":2}", Some("r2")), Some("r2"));
        assert_eq!(first.trim(), "{\"apply\":{\"run\":\"r2\",\"ms\":2}}");
        // ...and later sections of the same run accumulate normally.
        let second = merge_into(
            &first,
            "kernel_batch",
            &stamp_run("{\"ms\":5}", Some("r2")),
            Some("r2"),
        );
        assert_eq!(
            second.trim(),
            "{\"apply\":{\"run\":\"r2\",\"ms\":2},\"kernel_batch\":{\"run\":\"r2\",\"ms\":5}}"
        );
    }

    #[test]
    fn stamp_run_handles_empty_and_populated_objects() {
        assert_eq!(stamp_run("{}", Some("r")), "{\"run\":\"r\"}");
        assert_eq!(stamp_run("{\"x\":1}", Some("r")), "{\"run\":\"r\",\"x\":1}");
        assert_eq!(stamp_run("{\"x\":1}", None), "{\"x\":1}");
    }

    #[test]
    fn no_run_id_keeps_unstamped_groups() {
        // Legacy behavior without JEDD_BENCH_RUN: nothing is pruned.
        let doc = "{\"old\":{\"ms\":1}}";
        let merged = merge_into(doc, "new", "{\"ms\":2}", None);
        assert_eq!(merged.trim(), "{\"old\":{\"ms\":1},\"new\":{\"ms\":2}}");
    }
}
