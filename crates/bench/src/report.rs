//! Machine-readable bench output without a serde dependency.
//!
//! Benches build a [`JsonObject`] of their headline numbers and call
//! [`write_section`]; when the `JEDD_BENCH_JSON` environment variable
//! names a file, the section is merged into that file as one top-level
//! key, so several bench binaries can contribute to a single report
//! (CI writes `BENCH_kernel.json` this way). With the variable unset
//! the call is a no-op and the benches stay pure timing runs.

use std::fmt::Write as _;

/// A flat JSON object built field by field. Values are emitted in
/// insertion order; keys are not deduplicated.
#[derive(Debug, Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl JsonObject {
    /// Creates an empty object.
    pub fn new() -> JsonObject {
        JsonObject::default()
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> JsonObject {
        self.fields
            .push((key.to_string(), format!("\"{}\"", escape(value))));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, value: u64) -> JsonObject {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a float field, rendered with enough precision for timings.
    pub fn float(mut self, key: &str, value: f64) -> JsonObject {
        let rendered = if value.is_finite() {
            format!("{value:.6}")
        } else {
            "null".to_string()
        };
        self.fields.push((key.to_string(), rendered));
        self
    }

    /// Adds a nested object field.
    pub fn object(mut self, key: &str, value: JsonObject) -> JsonObject {
        self.fields.push((key.to_string(), value.render()));
        self
    }

    /// Renders the object as a JSON string.
    pub fn render(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape(k), v);
        }
        out.push('}');
        out
    }
}

/// Merges `section` into the JSON report file named by the
/// `JEDD_BENCH_JSON` environment variable, under the key `name`.
///
/// Creates the file (as `{"name": {...}}`) when absent; otherwise the
/// existing top-level object is re-parsed just enough to insert or
/// replace the key. No-op when the variable is unset. I/O errors are
/// reported on stderr rather than panicking — a failed report must not
/// fail the bench.
pub fn write_section(name: &str, section: &JsonObject) {
    let Ok(path) = std::env::var("JEDD_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let rendered = section.render();
    let merged = match std::fs::read_to_string(&path) {
        Ok(existing) => merge_into(&existing, name, &rendered),
        Err(_) => format!("{{\"{}\":{}}}\n", escape(name), rendered),
    };
    if let Err(e) = std::fs::write(&path, merged) {
        eprintln!("bench report: cannot write {path}: {e}");
    }
}

/// Inserts or replaces one top-level key in an existing JSON object
/// document. Falls back to rewriting the whole document when the
/// existing content doesn't look like an object.
fn merge_into(existing: &str, name: &str, rendered: &str) -> String {
    let trimmed = existing.trim();
    let fresh = || format!("{{\"{}\":{}}}\n", escape(name), rendered);
    if !trimmed.starts_with('{') || !trimmed.ends_with('}') {
        return fresh();
    }
    let inner = &trimmed[1..trimmed.len() - 1];
    // Re-collect the existing top-level entries, dropping any previous
    // run of this section, then append the new one.
    let mut entries: Vec<&str> = Vec::new();
    for entry in split_top_level(inner) {
        let key_prefix = format!("\"{}\":", escape(name));
        if entry.trim_start().starts_with(&key_prefix) {
            continue;
        }
        entries.push(entry);
    }
    let mut out = String::from("{");
    for e in &entries {
        out.push_str(e.trim());
        out.push(',');
    }
    let _ = write!(out, "\"{}\":{}", escape(name), rendered);
    out.push_str("}\n");
    out
}

/// Splits the inside of a JSON object on top-level commas (commas not
/// nested in braces, brackets, or strings).
fn split_top_level(inner: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut in_string = false;
    let mut escaped = false;
    let mut start = 0usize;
    for (i, c) in inner.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '{' | '[' if !in_string => depth += 1,
            '}' | ']' if !in_string => depth -= 1,
            ',' if !in_string && depth == 0 => {
                if !inner[start..i].trim().is_empty() {
                    out.push(&inner[start..i]);
                }
                start = i + 1;
            }
            _ => {}
        }
    }
    if !inner[start..].trim().is_empty() {
        out.push(&inner[start..]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_renders_in_order() {
        let o = JsonObject::new()
            .str("name", "shift")
            .int("hits", 42)
            .float("ms", 1.25)
            .object("inner", JsonObject::new().int("n", 1));
        assert_eq!(
            o.render(),
            "{\"name\":\"shift\",\"hits\":42,\"ms\":1.250000,\"inner\":{\"n\":1}}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let o = JsonObject::new().str("k", "a\"b\\c\nd");
        assert_eq!(o.render(), "{\"k\":\"a\\\"b\\\\c\\nd\"}");
    }

    #[test]
    fn merge_adds_and_replaces_sections() {
        let first = merge_into("", "a", "{\"x\":1}");
        assert_eq!(first.trim(), "{\"a\":{\"x\":1}}");
        let both = merge_into(&first, "b", "{\"y\":2}");
        assert_eq!(both.trim(), "{\"a\":{\"x\":1},\"b\":{\"y\":2}}");
        let replaced = merge_into(&both, "a", "{\"x\":9}");
        assert_eq!(replaced.trim(), "{\"b\":{\"y\":2},\"a\":{\"x\":9}}");
    }

    #[test]
    fn merge_survives_commas_inside_strings() {
        let doc = "{\"a\":{\"label\":\"x,y\"}}";
        let merged = merge_into(doc, "b", "{\"n\":0}");
        assert_eq!(merged.trim(), "{\"a\":{\"label\":\"x,y\"},\"b\":{\"n\":0}}");
    }
}
