//! Checkpointed analysis runs: the `--checkpoint-dir` quick-start.
//!
//! Runs one of the five analyses with crash-safe checkpointing enabled —
//! every completed fixpoint round (and any `ResourceExhausted` failure)
//! cuts a checksummed snapshot plus a write-ahead log record into the
//! given directory. A later `--resume` run loads the newest valid
//! checkpoint and drives the same fixpoint to completion.
//!
//! ```sh
//! # Run points-to under a node budget; exhaustion leaves a checkpoint.
//! cargo run --release -p jedd-bench --bin checkpointed -- \
//!     --checkpoint-dir /tmp/jedd-ckpt --analysis pointsto --max-nodes 20000
//! # Continue from the newest checkpoint, without the budget.
//! cargo run --release -p jedd-bench --bin checkpointed -- \
//!     --checkpoint-dir /tmp/jedd-ckpt --analysis pointsto --resume
//! ```

use jedd_analyses::facts::Facts;
use jedd_analyses::ir::Program;
use jedd_analyses::persist::{self, PersistError};
use jedd_analyses::pointsto::{self, CallGraphMode};
use jedd_analyses::synth::Benchmark;
use jedd_analyses::callgraph;
use jedd_core::{Budget, Relation};
use jedd_store::{CheckpointPolicy, Checkpointer};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    dir: PathBuf,
    analysis: String,
    benchmark: Benchmark,
    resume: bool,
    max_nodes: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: checkpointed --checkpoint-dir DIR [--analysis NAME] \
         [--benchmark NAME] [--resume] [--max-nodes N]\n\
         \n\
         --checkpoint-dir DIR  where snapshots and the checkpoint log live\n\
         --analysis NAME       hierarchy | vcr | callgraph | sideeffect |\n\
         \x20                     pointsto (default: pointsto)\n\
         --benchmark NAME      tiny | compress | javac | javac2 | sablecc |\n\
         \x20                     jedit (default: compress; ignored with --resume,\n\
         \x20                     the checkpoint carries its own inputs)\n\
         --resume              continue from the newest valid checkpoint\n\
         --max-nodes N         cap live BDD nodes (a fresh run that exhausts\n\
         \x20                     the cap checkpoints its last good round)"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut dir = None;
    let mut analysis = "pointsto".to_string();
    let mut benchmark = Benchmark::Compress;
    let mut resume = false;
    let mut max_nodes = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--checkpoint-dir" => dir = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--analysis" => analysis = it.next().unwrap_or_else(|| usage()),
            "--benchmark" => {
                benchmark = match it.next().unwrap_or_else(|| usage()).as_str() {
                    "tiny" => Benchmark::Tiny,
                    "compress" => Benchmark::Compress,
                    "javac" => Benchmark::Javac,
                    "javac2" => Benchmark::Javac2,
                    "sablecc" => Benchmark::Sablecc,
                    "jedit" => Benchmark::Jedit,
                    other => {
                        eprintln!("unknown benchmark: {other}");
                        usage()
                    }
                }
            }
            "--resume" => resume = true,
            "--max-nodes" => {
                max_nodes = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            _ => usage(),
        }
    }
    let Some(dir) = dir else { usage() };
    Args { dir, analysis, benchmark, resume, max_nodes }
}

/// Every receiver type at every site: a deterministic demo input for
/// virtual call resolution (real drivers feed points-to results here).
fn full_site_types(f: &Facts, p: &Program) -> Relation {
    let mut tuples = Vec::new();
    for c in &p.calls {
        for t in 0..p.types as u32 {
            tuples.push(vec![c.site as u64, t as u64]);
        }
    }
    Relation::from_tuples(&f.u, &[(f.site, f.c1), (f.ty, f.t1)], &tuples)
        .expect("site-type tuples are in range")
}

fn fresh(args: &Args, cp: &mut Checkpointer) -> Result<(&'static str, u64), PersistError> {
    let p = args.benchmark.generate();
    let f = Facts::load(&p)?;
    // Prerequisite analyses run unbudgeted; the budget (and with it the
    // chance of a checkpointed exhaustion) applies to the analysis under
    // `--analysis` only.
    let arm = |f: &Facts| {
        if let Some(n) = args.max_nodes {
            f.u.set_budget(Budget::unlimited().with_max_live_nodes(n as usize));
        }
    };
    match args.analysis.as_str() {
        "hierarchy" => {
            arm(&f);
            let h = persist::hierarchy_checkpointed(&f, cp)?;
            Ok(("subtype_of tuples", h.subtype_of.size()))
        }
        "vcr" => {
            let site_types = full_site_types(&f, &p);
            arm(&f);
            let answer = persist::vcr_checkpointed(&f, &site_types, cp)?;
            Ok(("resolved (site, method) pairs", answer.size()))
        }
        "callgraph" => {
            let ptres = pointsto::analyze(&f, CallGraphMode::OnTheFly)?;
            arm(&f);
            let cg = persist::callgraph_checkpointed(&f, &ptres.cg, cp)?;
            Ok(("reachable methods", cg.reachable.size()))
        }
        "sideeffect" => {
            let ptres = pointsto::analyze(&f, CallGraphMode::OnTheFly)?;
            let cg = callgraph::build(&f, &ptres.cg)?;
            arm(&f);
            let se = persist::sideeffect_checkpointed(&f, &ptres.pt, &cg.edges, cp)?;
            Ok(("transitive read pairs", se.reads_star.size()))
        }
        "pointsto" => {
            arm(&f);
            let r = persist::pointsto_checkpointed(&f, CallGraphMode::OnTheFly, cp)?;
            Ok(("points-to pairs", r.pt.size()))
        }
        other => {
            eprintln!("unknown analysis: {other}");
            usage()
        }
    }
}

fn resume(args: &Args, cp: &mut Checkpointer) -> Result<(&'static str, u64), PersistError> {
    // The checkpoint carries the full relation state; the resumed run gets
    // a fresh (by default unlimited) budget.
    let budget = match args.max_nodes {
        Some(n) => Budget::unlimited().with_max_live_nodes(n as usize),
        None => Budget::unlimited(),
    };
    match args.analysis.as_str() {
        "hierarchy" => {
            let (_, h) = persist::hierarchy_resume(&args.dir, budget, cp)?;
            Ok(("subtype_of tuples", h.subtype_of.size()))
        }
        "vcr" => {
            let (_, answer) = persist::vcr_resume(&args.dir, budget, cp)?;
            Ok(("resolved (site, method) pairs", answer.size()))
        }
        "callgraph" => {
            let (_, cg) = persist::callgraph_resume(&args.dir, budget, cp)?;
            Ok(("reachable methods", cg.reachable.size()))
        }
        "sideeffect" => {
            let (_, se) = persist::sideeffect_resume(&args.dir, budget, cp)?;
            Ok(("transitive read pairs", se.reads_star.size()))
        }
        "pointsto" => {
            let (_, r) = persist::pointsto_resume(&args.dir, budget, cp)?;
            Ok(("points-to pairs", r.pt.size()))
        }
        other => {
            eprintln!("unknown analysis: {other}");
            usage()
        }
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Err(e) = std::fs::create_dir_all(&args.dir) {
        eprintln!("checkpointed: cannot create {}: {e}", args.dir.display());
        return ExitCode::FAILURE;
    }
    let mut cp = match Checkpointer::create(&args.dir, CheckpointPolicy::default()) {
        Ok(cp) => cp,
        Err(e) => {
            eprintln!("checkpointed: cannot open store in {}: {e}", args.dir.display());
            return ExitCode::FAILURE;
        }
    };
    let res = if args.resume {
        resume(&args, &mut cp)
    } else {
        fresh(&args, &mut cp)
    };
    match res {
        Ok((what, n)) => {
            println!(
                "{}: {} = {} (checkpoints in {})",
                args.analysis,
                what,
                n,
                args.dir.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("checkpointed: {}: {e}", args.analysis);
            eprintln!(
                "checkpointed: if a checkpoint was cut (ResourceExhausted or \
                 cancellation), rerun with --resume to continue from it"
            );
            ExitCode::FAILURE
        }
    }
}
