//! Extension experiment: declared-type filtering (the Fig. 2 arrow from
//! the Hierarchy module into Points-to Analysis). Compares the size of the
//! points-to relation and call graph with and without the filter, and the
//! cost of applying it.
//!
//! Run with `cargo run --release -p jedd-bench --bin precision`.

use jedd_analyses::pointsto::{analyze, analyze_typed, CallGraphMode};
use jedd_analyses::synth::Benchmark;
use jedd_analyses::{facts::Facts, hierarchy};

fn main() {
    println!("Type filtering: points-to precision and cost");
    println!();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for b in [Benchmark::Compress, Benchmark::Javac, Benchmark::Sablecc] {
        let p = b.generate();
        // A failed benchmark (bad facts, exhausted budget) degrades to a
        // skipped row rather than aborting the experiment.
        let run = || -> Result<_, Box<dyn std::error::Error>> {
            let f1 = Facts::load(&p)?;
            let (untyped, t_untyped) =
                jedd_bench::timed(|| analyze(&f1, CallGraphMode::OnTheFly));
            let untyped = untyped?;
            let f2 = Facts::load(&p)?;
            let (typed, t_typed) = jedd_bench::timed(
                || -> Result<_, jedd_core::JeddError> {
                    let h = hierarchy::compute(&f2)?;
                    analyze_typed(&f2, CallGraphMode::OnTheFly, &h.subtype_of)
                },
            );
            Ok((untyped, typed?, t_untyped, t_typed))
        };
        let (untyped, typed, t_untyped, t_typed) = match run() {
            Ok(r) => r,
            Err(e) => {
                eprintln!("precision: skipping {}: {e}", b.name());
                continue;
            }
        };
        rows.push(vec![
            b.name().to_string(),
            untyped.pt.size().to_string(),
            typed.pt.size().to_string(),
            format!(
                "{:.1}%",
                100.0 * (1.0 - typed.pt.size() as f64 / untyped.pt.size() as f64)
            ),
            untyped.cg.size().to_string(),
            typed.cg.size().to_string(),
            format!("{t_untyped:.3}"),
            format!("{t_typed:.3}"),
        ]);
    }
    print!(
        "{}",
        jedd_bench::render_table(
            &[
                "Benchmark",
                "pt (untyped)",
                "pt (typed)",
                "pt removed",
                "cg (untyped)",
                "cg (typed)",
                "untyped (s)",
                "typed (s)",
            ],
            &rows
        )
    );
    println!();
    println!(
        "The typed variant consumes the Hierarchy module's subtypeOf closure\n\
         (hierarchy -> points-to arrow of the paper's Fig. 2); it can only\n\
         shrink the solution, at the cost of one intersection per step."
    );
}
