//! Regenerates the paper's §5 code-size comparison: the side-effect
//! analysis took 803 non-comment lines of Java (mostly data-structure
//! code) against 124 lines of Jedd. Here we compare the mini-Jedd sources
//! of each analysis against the explicit-set Rust implementations
//! (`baseline_sets`), the analogue of the hand-written Java.
//!
//! Run with `cargo run --release -p jedd-bench --bin table3_loc`.

fn count_rust_loc(src: &str) -> usize {
    // Non-comment, non-blank, non-test lines of the baseline module.
    let mut in_tests = false;
    src.lines()
        .map(str::trim)
        .filter(|l| {
            if l.starts_with("#[cfg(test)]") {
                in_tests = true;
            }
            !in_tests && !l.is_empty() && !l.starts_with("//") && !l.starts_with("//!")
        })
        .count()
}

fn main() {
    let baseline_src = include_str!("../../../analyses/src/baseline_sets.rs");
    let baseline_loc = count_rust_loc(baseline_src);
    println!("Code-size comparison (paper §5)");
    println!();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut jedd_total = 0usize;
    for (name, loc) in jedd_analyses::jedd_src::loc_counts() {
        jedd_total += loc;
        rows.push(vec![name.to_string(), loc.to_string()]);
    }
    rows.push(vec!["all five (mini-Jedd total)".into(), jedd_total.to_string()]);
    rows.push(vec![
        "all five (explicit-set Rust, baseline_sets.rs)".into(),
        baseline_loc.to_string(),
    ]);
    print!(
        "{}",
        jedd_bench::render_table(&["Implementation", "non-comment LoC"], &rows)
    );
    println!();
    println!(
        "Paper reference: the Java side-effect analysis was 803 lines, the\n\
         Jedd version 124. The shape to check: the relational sources are a\n\
         small fraction of the explicit-set implementation, because the BDD\n\
         relations replace hand-built set data structures."
    );
}
