//! Regenerates the paper's **Table 2**: running-time comparison of the
//! hand-coded BDD points-to analysis (the paper's C++ implementation of
//! Berndl et al.) against the Jedd relational version, on five benchmarks.
//!
//! Both versions run on the same kernel, same variable order and same
//! algorithm; the difference is the relational abstraction. The paper
//! reports 0.5–4% overhead; the property to check is that the overhead is
//! small and the two solvers agree exactly.
//!
//! Run with `cargo run --release -p jedd-bench --bin table2`.

fn main() {
    println!("Table 2: hand-coded BDD vs Jedd relational points-to analysis");
    println!("(synthetic fact bases at the paper's benchmark scales)");
    println!();
    let rows = jedd_bench::table2_rows();
    print!("{}", jedd_bench::format_table2(&rows));
    println!();
    for r in &rows {
        println!("  {}: {}", r.benchmark, r.summary);
    }
    println!();
    let worst = rows
        .iter()
        .map(|r| r.overhead_pct)
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "Paper reference: overhead of the Jedd version over hand-coded BDD\n\
         code was 0.5%–4% across javac/compress/javac2/sablecc/jedit.\n\
         Measured worst-case overhead here: {worst:+.1}%."
    );
}
