//! Regenerates the paper's **Table 1**: size of the physical-domain-
//! assignment problem for each analysis module and for all five combined —
//! relational expressions, attribute occurrences, physical domains,
//! constraint counts by type, SAT problem size, and solve time.
//!
//! Run with `cargo run --release -p jedd-bench --bin table1`.

fn main() {
    println!("Table 1: Size of physical domain assignment problem");
    println!("(mini-Jedd sources of the five analyses, solved by jedd-sat)");
    println!();
    print!("{}", jedd_bench::format_table1());
    println!();
    println!(
        "Paper reference (zchaff on a 1833 MHz Athlon): the combined row had\n\
         613 exprs / 1586 attrs, 3544 variables, ~23k clauses, 4.6 s solve\n\
         time, and each module solved in well under a second. The shape to\n\
         check: per-module problems are small and solve in milliseconds;\n\
         the combined problem is the largest but still compiles in seconds."
    );
}
