//! Shared harness code for regenerating the paper's tables and figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod criterion;
pub mod report;

use std::fmt::Write as _;
use std::time::Instant;

/// Renders an ASCII table with a header row.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for (i, w) in widths.iter().enumerate() {
            let _ = write!(out, "+{}", "-".repeat(w + 2));
            if i == ncols - 1 {
                let _ = writeln!(out, "+");
            }
        }
    };
    sep(&mut out);
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(out, "| {h:<w$} ", w = widths[i]);
    }
    let _ = writeln!(out, "|");
    sep(&mut out);
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            let _ = write!(out, "| {c:>w$} ", w = widths[i]);
        }
        let _ = writeln!(out, "|");
    }
    sep(&mut out);
    out
}

/// Times a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// The speedup-gate decision for parallelism benches: one shared CPU
/// probe instead of each bench (and `ci.sh`) sniffing `nproc` and env
/// variables on its own.
#[derive(Debug, Clone)]
pub struct GateProbe {
    /// Hardware threads the probe saw.
    pub cpus: usize,
    /// Whether the speedup assertion is armed.
    pub armed: bool,
    /// Why — recorded in the JSON report so a disarmed gate is visible.
    pub reason: String,
}

/// Probes the machine and the `JEDD_BENCH_GATE` override ("1" forces the
/// gate on, "0" forces it off, unset decides by CPU count): a wall-clock
/// speedup assertion only means something with >= 4 real CPUs.
pub fn speedup_gate() -> GateProbe {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (armed, reason) = match std::env::var("JEDD_BENCH_GATE").as_deref() {
        Ok("1") => (true, "forced on by JEDD_BENCH_GATE=1".to_string()),
        Ok("0") => (false, "forced off by JEDD_BENCH_GATE=0".to_string()),
        _ if cpus >= 4 => (true, format!("{cpus} CPUs available")),
        _ => (false, format!("only {cpus} CPU(s) available, need 4")),
    };
    GateProbe {
        cpus,
        armed,
        reason,
    }
}

/// The Table 1 rows: compiles each analysis module (and the combined
/// program) and collects its assignment-problem statistics.
pub fn table1_rows() -> Vec<(String, jedd_core::assign::AssignmentStats)> {
    let mut out = Vec::new();
    for (name, src) in jedd_analyses::jedd_src::modules() {
        let compiled = jeddc::compile(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        out.push((name.to_string(), compiled.assignment.stats));
    }
    let combined = jeddc::compile(&jedd_analyses::jedd_src::combined()).expect("combined");
    out.push(("All 5 combined".to_string(), combined.assignment.stats));
    out
}

/// Formats Table 1 in the paper's layout.
pub fn format_table1() -> String {
    let rows: Vec<Vec<String>> = table1_rows()
        .into_iter()
        .map(|(name, s)| {
            vec![
                name,
                s.exprs.to_string(),
                s.attrs.to_string(),
                s.physdoms.to_string(),
                s.conflict.to_string(),
                s.equality.to_string(),
                s.assignment.to_string(),
                s.sat_vars.to_string(),
                s.sat_clauses.to_string(),
                s.sat_literals.to_string(),
                format!("{:.3}", s.solve_seconds),
            ]
        })
        .collect();
    render_table(
        &[
            "Analysis",
            "Exprs",
            "Attrs",
            "PhysDoms",
            "Conflict",
            "Equality",
            "Assignment",
            "Variables",
            "Clauses",
            "Literals",
            "Time (s)",
        ],
        &rows,
    )
}

/// One Table 2 measurement row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Program size summary.
    pub summary: String,
    /// Hand-coded direct-BDD time (the paper's C++ column), seconds.
    pub hand_coded_s: f64,
    /// Relational-API time (the paper's Jedd column), seconds.
    pub relational_s: f64,
    /// Overhead of the relational version, percent.
    pub overhead_pct: f64,
    /// Points-to pairs found (identical for both, asserted).
    pub pt_pairs: usize,
}

/// Runs the Table 2 experiment on the five benchmarks. A benchmark whose
/// analysis fails (e.g. under an externally imposed budget) is skipped
/// with a warning on stderr rather than aborting the whole table.
pub fn table2_rows() -> Vec<Table2Row> {
    use jedd_analyses::pointsto::CallGraphMode;
    let mut out = Vec::new();
    'bench: for b in jedd_analyses::synth::Benchmark::table2() {
        let p = b.generate();
        // Best of three runs per implementation, fresh manager each run,
        // to damp allocator and cache noise.
        let mut hand_coded_s = f64::INFINITY;
        let mut raw = None;
        for _ in 0..3 {
            let (r, s) = timed(|| jedd_analyses::baseline_bdd::analyze(&p));
            hand_coded_s = hand_coded_s.min(s);
            raw = Some(r);
        }
        let Some(raw) = raw else { continue };
        let mut relational_s = f64::INFINITY;
        let mut rel = None;
        for _ in 0..3 {
            let facts = match jedd_analyses::facts::Facts::load(&p) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("table2: skipping {}: cannot load facts: {e}", b.name());
                    continue 'bench;
                }
            };
            let (r, s) = timed(|| {
                jedd_analyses::pointsto::analyze(&facts, CallGraphMode::OnTheFly)
            });
            let r = match r {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("table2: skipping {}: points-to failed: {e}", b.name());
                    continue 'bench;
                }
            };
            relational_s = relational_s.min(s);
            rel = Some(r);
        }
        let Some(rel) = rel else { continue };
        let raw_pairs = raw.pt_pairs();
        let rel_pairs: Vec<(u64, u64)> = rel
            .pt
            .tuples()
            .into_iter()
            .map(|t| (t[0], t[1]))
            .collect();
        assert_eq!(
            raw_pairs, rel_pairs,
            "hand-coded and relational must agree on {}",
            b.name()
        );
        out.push(Table2Row {
            benchmark: b.name(),
            summary: p.summary(),
            hand_coded_s,
            relational_s,
            overhead_pct: (relational_s / hand_coded_s - 1.0) * 100.0,
            pt_pairs: raw_pairs.len(),
        });
    }
    out
}

/// Formats Table 2 in the paper's layout.
pub fn format_table2(rows: &[Table2Row]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.to_string(),
                format!("{:.3}", r.hand_coded_s),
                format!("{:.3}", r.relational_s),
                format!("{:+.1}%", r.overhead_pct),
                r.pt_pairs.to_string(),
            ]
        })
        .collect();
    render_table(
        &[
            "Benchmark",
            "Hand-coded BDD (s)",
            "Jedd relational (s)",
            "Overhead",
            "pt pairs",
        ],
        &table_rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_aligns() {
        let t = render_table(&["a", "bbb"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| a"));
        assert!(t.contains("bbb"));
        assert!(t.lines().count() >= 5);
    }

    #[test]
    fn table1_has_six_rows() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 6);
        let combined = &rows[5];
        assert_eq!(combined.0, "All 5 combined");
        // Combined must be at least as large as each individual module.
        for (name, s) in &rows[..5] {
            assert!(combined.1.exprs >= s.exprs, "combined smaller than {name}");
        }
    }

    #[test]
    fn timed_measures() {
        let (v, s) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(s >= 0.0);
    }
}
