//! A minimal, dependency-free benchmarking harness exposing the subset of
//! the Criterion API the benches in this workspace use.
//!
//! The workspace must build and test with no network access, so the
//! external `criterion` crate is not available. This module keeps the
//! bench sources close to idiomatic Criterion style (`benchmark_group`,
//! `bench_function`, `Bencher::iter`, the `criterion_group!` /
//! `criterion_main!` macros) while measuring with plain [`Instant`]
//! timing: per benchmark it reports min / median / max over a fixed
//! number of samples on stderr. It makes no statistical claims beyond
//! that.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// The harness entry point, handed to every `criterion_group!` function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Criterion {
        run_bench(name, self.default_sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing a sample-size configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in the group records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id.0), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group. (Reporting is immediate, so this is a no-op kept
    /// for Criterion compatibility.)
    pub fn finish(self) {}
}

/// A benchmark identifier combining a function name and a parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`, as rendered in the report.
    pub fn new(name: &str, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` once per sample, after one untimed warm-up run.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Sample count actually used: the `JEDD_BENCH_SAMPLES` environment
/// variable overrides whatever the bench configured, so CI can run every
/// bench as a fast smoke test without editing the bench sources.
fn effective_sample_size(configured: usize) -> usize {
    match std::env::var("JEDD_BENCH_SAMPLES") {
        Ok(v) => v.parse::<usize>().map(|n| n.max(1)).unwrap_or(configured),
        Err(_) => configured,
    }
}

fn run_bench(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        sample_size: effective_sample_size(sample_size),
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        eprintln!("{label:<44} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let fmt = |d: Duration| format!("{:.3} ms", d.as_secs_f64() * 1e3);
    eprintln!(
        "{label:<44} min {:>12}  median {:>12}  max {:>12}  ({} samples)",
        fmt(b.samples[0]),
        fmt(b.samples[b.samples.len() / 2]),
        fmt(*b.samples.last().expect("non-empty")),
        b.samples.len()
    );
}

/// Declares a benchmark-group function from a list of `fn(&mut Criterion)`
/// targets, mirroring Criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::criterion::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::criterion::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut runs = 0usize;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_renders_name_and_parameter() {
        assert_eq!(BenchmarkId::new("f", 42).0, "f/42");
    }
}
