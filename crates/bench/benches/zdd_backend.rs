//! Ablation: the ZDD backend (paper §4.1 future work — "several
//! researchers have suggested using zero-suppressed BDDs for our points-to
//! analysis algorithms"). Stores the same sparse points-to relation in the
//! BDD and ZDD kernels and compares build + set-algebra time and node
//! counts.

use jedd_bench::criterion::Criterion;
use jedd_bdd::{BddManager, ZddManager};
use jedd_bdd::rng::XorShift64Star;

const VAR_BITS: usize = 10;
const OBJ_BITS: usize = 9;
const PAIRS: usize = 1500;

fn pairs() -> Vec<(u64, u64)> {
    let mut rng = XorShift64Star::new(23);
    (0..PAIRS)
        .map(|_| {
            (
                rng.gen_range(0..1u64 << VAR_BITS),
                rng.gen_range(0..1u64 << OBJ_BITS),
            )
        })
        .collect()
}

fn build_bdd(pairs: &[(u64, u64)]) -> usize {
    let mgr = BddManager::new(VAR_BITS + OBJ_BITS);
    let vbits: Vec<u32> = (0..VAR_BITS as u32).collect();
    let obits: Vec<u32> = (VAR_BITS as u32..(VAR_BITS + OBJ_BITS) as u32).collect();
    let mut rel = mgr.constant_false();
    for &(v, o) in pairs {
        rel = rel.or(&mgr.encode_value(&vbits, v).and(&mgr.encode_value(&obits, o)));
    }
    rel.node_count()
}

fn build_zdd(pairs: &[(u64, u64)]) -> usize {
    let z = ZddManager::new(VAR_BITS + OBJ_BITS);
    let vbits: Vec<u32> = (0..VAR_BITS as u32).collect();
    let obits: Vec<u32> = (VAR_BITS as u32..(VAR_BITS + OBJ_BITS) as u32).collect();
    let mut rel = jedd_bdd::ZddId::EMPTY;
    for &(v, o) in pairs {
        let t = z.encode_tuple(&[(&vbits, v), (&obits, o)]);
        rel = z.union(rel, t);
    }
    z.node_count(rel)
}

fn bench_zdd(c: &mut Criterion) {
    let ps = pairs();
    let mut g = c.benchmark_group("sparse_relation_backend");
    g.sample_size(10);
    g.bench_function("bdd_build", |b| b.iter(|| build_bdd(std::hint::black_box(&ps))));
    g.bench_function("zdd_build", |b| b.iter(|| build_zdd(std::hint::black_box(&ps))));
    g.finish();
    let (bn, zn) = (build_bdd(&ps), build_zdd(&ps));
    eprintln!("sparse relation of {PAIRS} tuples: BDD {bn} nodes, ZDD {zn} nodes");
}

jedd_bench::criterion_group!(benches, bench_zdd);
jedd_bench::criterion_main!(benches);
