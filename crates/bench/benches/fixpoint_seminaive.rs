//! Naive vs semi-naive fixpoint evaluation of the points-to analysis
//! (the paper's flagship workload) across the synthetic benchmark family:
//! outer rounds, wall time, and node allocation for each strategy.
//!
//! With `JEDD_BENCH_JSON` set, a `fixpoint_seminaive` section is merged
//! into the report, one entry per benchmark. The bench itself asserts the
//! two strategies agree tuple-for-tuple and that the semi-naive round
//! count never exceeds the naive one, so a regression fails `ci.sh`.

use jedd_analyses::facts::Facts;
use jedd_analyses::ir::Program;
use jedd_analyses::pointsto::{self, CallGraphMode, PointsTo};
use jedd_analyses::synth::Benchmark;
use jedd_bench::criterion::Criterion;
use jedd_bench::report::{write_section, JsonObject};
use jedd_core::Strategy;
use std::collections::BTreeSet;

/// One measured analysis run on a fresh universe: result, wall seconds,
/// nodes allocated during the run, and nodes live at the end.
struct Run {
    result: PointsTo,
    secs: f64,
    nodes_created: u64,
    live_nodes: u64,
}

fn run_once(p: &Program, strategy: Strategy) -> Run {
    let f = Facts::load(p).unwrap();
    let before = f.u.bdd_manager().kernel_stats().nodes_created;
    let (result, secs) = jedd_bench::timed(|| {
        pointsto::analyze_with(&f, CallGraphMode::OnTheFly, strategy).unwrap()
    });
    let stats = f.u.bdd_manager().kernel_stats();
    Run {
        result,
        secs,
        nodes_created: stats.nodes_created - before,
        live_nodes: f.u.bdd_manager().live_nodes() as u64,
    }
}

/// Best wall time of three runs (fresh `Facts` each), keeping the first
/// run's relations and counters (they are deterministic across runs).
fn best_of_3(p: &Program, strategy: Strategy) -> Run {
    let mut best = run_once(p, strategy);
    for _ in 0..2 {
        let r = run_once(p, strategy);
        if r.secs < best.secs {
            best.secs = r.secs;
        }
        assert_eq!(r.result.iterations, best.result.iterations);
    }
    best
}

fn tuple_set(r: &jedd_core::Relation) -> BTreeSet<Vec<u64>> {
    r.tuples().into_iter().collect()
}

fn bench_fixpoint(c: &mut Criterion) {
    // Criterion timings on the mid-size benchmark; the JSON sweep below
    // covers the whole family.
    let p = Benchmark::Compress.generate();
    let mut g = c.benchmark_group("fixpoint_compress");
    g.sample_size(10);
    g.bench_function("naive", |b| {
        b.iter(|| {
            let f = Facts::load(std::hint::black_box(&p)).unwrap();
            pointsto::analyze_with(&f, CallGraphMode::OnTheFly, Strategy::Naive).unwrap()
        })
    });
    g.bench_function("semi_naive", |b| {
        b.iter(|| {
            let f = Facts::load(std::hint::black_box(&p)).unwrap();
            pointsto::analyze_with(&f, CallGraphMode::OnTheFly, Strategy::SemiNaive).unwrap()
        })
    });
    g.finish();

    let mut section = JsonObject::new();
    for b in Benchmark::table2() {
        let p = b.generate();
        let naive = best_of_3(&p, Strategy::Naive);
        let semi = best_of_3(&p, Strategy::SemiNaive);

        // The delta engine is an evaluation-order change only: same
        // relations, in no more rounds.
        assert_eq!(
            tuple_set(&semi.result.pt),
            tuple_set(&naive.result.pt),
            "pt mismatch on {}",
            b.name()
        );
        assert_eq!(
            tuple_set(&semi.result.field_pt),
            tuple_set(&naive.result.field_pt),
            "field_pt mismatch on {}",
            b.name()
        );
        assert_eq!(
            tuple_set(&semi.result.cg),
            tuple_set(&naive.result.cg),
            "cg mismatch on {}",
            b.name()
        );
        assert!(
            semi.result.iterations <= naive.result.iterations,
            "semi-naive took {} rounds on {}, naive {}",
            semi.result.iterations,
            b.name(),
            naive.result.iterations
        );

        section = section.object(
            b.name(),
            JsonObject::new()
                .float("naive_s", naive.secs)
                .float("semi_naive_s", semi.secs)
                .float("speedup", naive.secs / semi.secs)
                .int("naive_rounds", naive.result.iterations as u64)
                .int("semi_naive_rounds", semi.result.iterations as u64)
                .int("naive_nodes_created", naive.nodes_created)
                .int("semi_naive_nodes_created", semi.nodes_created)
                .int("naive_live_nodes", naive.live_nodes)
                .int("semi_naive_live_nodes", semi.live_nodes)
                .int("pt_pairs", semi.result.pt.size()),
        );
        println!(
            "fixpoint_seminaive {}: naive {:.3}s / semi {:.3}s ({:.2}x), rounds {} vs {}, nodes {} vs {}",
            b.name(),
            naive.secs,
            semi.secs,
            naive.secs / semi.secs,
            naive.result.iterations,
            semi.result.iterations,
            naive.nodes_created,
            semi.nodes_created,
        );
    }
    write_section("fixpoint_seminaive", &section);
}

jedd_bench::criterion_group!(benches, bench_fixpoint);
jedd_bench::criterion_main!(benches);
