//! Criterion bench for Table 1's solve-time column: compiling each
//! analysis module (dominated by flow-path enumeration, CNF encoding and
//! the SAT solve).

use jedd_bench::criterion::Criterion;

fn bench_domain_assignment(c: &mut Criterion) {
    let mut g = c.benchmark_group("domain_assignment");
    g.sample_size(10);
    for (name, src) in jedd_analyses::jedd_src::modules() {
        g.bench_function(name, |b| {
            b.iter(|| jeddc::compile(std::hint::black_box(&src)).expect("compiles"))
        });
    }
    let combined = jedd_analyses::jedd_src::combined();
    g.bench_function("All 5 combined", |b| {
        b.iter(|| jeddc::compile(std::hint::black_box(&combined)).expect("compiles"))
    });
    g.finish();
}

jedd_bench::criterion_group!(benches, bench_domain_assignment);
jedd_bench::criterion_main!(benches);
