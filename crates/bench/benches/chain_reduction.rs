//! Chain-reduced decision diagrams over the Table-2 analyses: node counts
//! and wall clock for all four backends (BDD / CBDD / ZDD / CZDD), plus
//! the order lab's cold-search vs warm-start comparison.
//!
//! One points-to run per kernel kind gives all four node counts: on the
//! plain manager a relation's `node_count()` is the BDD and its
//! `storage_nodes()` under `Backend::Zdd` the ZDD; on the chained manager
//! the same two calls give the CBDD and CZDD. The bench asserts all runs
//! are tuple-identical and that the chain-reduced counts never exceed
//! their plain counterparts — so `min(CBDD, CZDD) <= min(BDD, ZDD)` holds
//! for every analysis, which is the paper-table claim `ci.sh` re-checks.
//!
//! With `JEDD_BENCH_JSON` set, a `chain_reduction` section is merged into
//! the report, one entry per benchmark.

use jedd_analyses::facts::Facts;
use jedd_analyses::ir::Program;
use jedd_analyses::persist::{learn_and_save_order, load_learned_order};
use jedd_analyses::pointsto::{self, CallGraphMode, PointsTo};
use jedd_analyses::synth::Benchmark;
use jedd_bench::criterion::Criterion;
use jedd_bench::report::{write_section, JsonObject};
use jedd_core::Backend;
use std::collections::BTreeSet;

/// One measured points-to run: the result, wall seconds, and the node
/// counts of the result relations in the decision-diagram kind the
/// manager runs on (`dd_nodes`) and in the zero-suppressed storage
/// encoding (`zdd_nodes`).
struct Run {
    result: PointsTo,
    secs: f64,
    dd_nodes: u64,
    zdd_nodes: u64,
    live_nodes: u64,
}

fn run_backend(p: &Program, backend: Backend) -> Run {
    let f = Facts::load_configured(p, backend, None).unwrap();
    let (result, secs) =
        jedd_bench::timed(|| pointsto::analyze(&f, CallGraphMode::OnTheFly).unwrap());
    let dd_nodes =
        (result.pt.node_count() + result.field_pt.node_count() + result.cg.node_count()) as u64;
    let zdd_nodes = (result.pt.storage_nodes()
        + result.field_pt.storage_nodes()
        + result.cg.storage_nodes()) as u64;
    f.u.bdd_manager().gc();
    let live_nodes = f.u.bdd_manager().live_nodes() as u64;
    Run {
        result,
        secs,
        dd_nodes,
        zdd_nodes,
        live_nodes,
    }
}

fn tuple_set(r: &jedd_core::Relation) -> BTreeSet<Vec<u64>> {
    r.tuples().into_iter().collect()
}

fn search_rounds() -> usize {
    std::env::var("JEDD_ORDER_SEARCH_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

/// The order lab on one benchmark: a cold run (analysis + order search +
/// persist) against a warm run (learned order installed before building,
/// zero sifting sweeps). Returns the JSON entry.
fn order_lab(dir: &std::path::Path, name: &str, p: &Program, oracle: &PointsTo) -> JsonObject {
    let (cold, cold_secs) = jedd_bench::timed(|| {
        let f = Facts::load_configured(p, Backend::Bdd, None).unwrap();
        let result = pointsto::analyze(&f, CallGraphMode::OnTheFly).unwrap();
        let (_, counts) = learn_and_save_order(dir, name, &f, search_rounds(), 0x0bdd).unwrap();
        (result, counts)
    });
    let (result, (search_before, search_after)) = cold;
    assert_eq!(tuple_set(&result.pt), tuple_set(&oracle.pt), "{name} cold");

    let record = load_learned_order(dir, name).unwrap().expect("just saved");
    let ((warm, sweeps), warm_secs) = jedd_bench::timed(|| {
        let f = Facts::load_configured(p, record.backend, Some(&record.level2var)).unwrap();
        let result = pointsto::analyze(&f, CallGraphMode::OnTheFly).unwrap();
        (result, f.u.bdd_manager().kernel_stats().sift_sweeps)
    });
    assert_eq!(tuple_set(&warm.pt), tuple_set(&oracle.pt), "{name} warm");
    assert_eq!(sweeps, 0, "{name}: a warm run must not sift");
    assert!(
        warm_secs < cold_secs,
        "{name}: warm {warm_secs:.3}s not faster than cold {cold_secs:.3}s"
    );
    JsonObject::new()
        .float("cold_s", cold_secs)
        .float("warm_s", warm_secs)
        .float("warm_speedup", cold_secs / warm_secs)
        .int("search_before_nodes", search_before as u64)
        .int("search_after_nodes", search_after as u64)
        .int("warm_sift_sweeps", sweeps)
}

fn bench_chain_reduction(c: &mut Criterion) {
    // Criterion timings on the mid-size benchmark; the JSON sweep below
    // covers the whole family.
    let p = Benchmark::Compress.generate();
    let mut g = c.benchmark_group("chain_reduction_compress");
    g.sample_size(10);
    for backend in [Backend::Bdd, Backend::Cbdd] {
        g.bench_function(backend.name(), |b| {
            b.iter(|| {
                let f =
                    Facts::load_configured(std::hint::black_box(&p), backend, None).unwrap();
                pointsto::analyze(&f, CallGraphMode::OnTheFly).unwrap()
            })
        });
    }
    g.finish();

    let dir = std::env::temp_dir().join(format!("jedd-chain-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let mut section = JsonObject::new();
    for b in Benchmark::table2() {
        let p = b.generate();
        // Plain manager: BDD operations, ZDD storage accounting.
        let plain = run_backend(&p, Backend::Zdd);
        // Chained manager: CBDD operations, CZDD storage accounting.
        let chained = run_backend(&p, Backend::Czdd);

        // Chain reduction is a representation change only: identical
        // tuples, in the same number of rounds.
        for (rel, which) in [
            (tuple_set(&plain.result.pt) == tuple_set(&chained.result.pt), "pt"),
            (
                tuple_set(&plain.result.field_pt) == tuple_set(&chained.result.field_pt),
                "field_pt",
            ),
            (tuple_set(&plain.result.cg) == tuple_set(&chained.result.cg), "cg"),
        ] {
            assert!(rel, "{} mismatch on {}", which, b.name());
        }
        assert_eq!(
            plain.result.iterations,
            chained.result.iterations,
            "round count changed on {}",
            b.name()
        );
        // The paper-table claim: the chain-reduced kinds never lose to
        // their plain counterparts, so the best chained representation
        // matches or beats the best plain one on every analysis.
        assert!(
            chained.dd_nodes <= plain.dd_nodes,
            "{}: CBDD {} > BDD {}",
            b.name(),
            chained.dd_nodes,
            plain.dd_nodes
        );
        assert!(
            chained.zdd_nodes <= plain.zdd_nodes,
            "{}: CZDD {} > ZDD {}",
            b.name(),
            chained.zdd_nodes,
            plain.zdd_nodes
        );
        let best_chained = chained.dd_nodes.min(chained.zdd_nodes);
        let best_plain = plain.dd_nodes.min(plain.zdd_nodes);
        assert!(
            best_chained <= best_plain,
            "{}: best chained {} > best plain {}",
            b.name(),
            best_chained,
            best_plain
        );

        let lab = order_lab(&dir, b.name(), &p, &plain.result);
        section = section.object(
            b.name(),
            JsonObject::new()
                .int("pt_pairs", plain.result.pt.size())
                .int("rounds", plain.result.iterations as u64)
                .float("bdd_s", plain.secs)
                .float("cbdd_s", chained.secs)
                .int("bdd_nodes", plain.dd_nodes)
                .int("cbdd_nodes", chained.dd_nodes)
                .int("zdd_nodes", plain.zdd_nodes)
                .int("czdd_nodes", chained.zdd_nodes)
                .int("bdd_live_nodes", plain.live_nodes)
                .int("cbdd_live_nodes", chained.live_nodes)
                .object("order_lab", lab),
        );
        println!(
            "chain_reduction {}: bdd {:.3}s/{} nodes, cbdd {:.3}s/{} nodes, zdd {} nodes, czdd {} nodes",
            b.name(),
            plain.secs,
            plain.dd_nodes,
            chained.secs,
            chained.dd_nodes,
            plain.zdd_nodes,
            chained.zdd_nodes,
        );
    }
    write_section("chain_reduction", &section);
    let _ = std::fs::remove_dir_all(&dir);
}

jedd_bench::criterion_group!(benches, bench_chain_reduction);
jedd_bench::criterion_main!(benches);
