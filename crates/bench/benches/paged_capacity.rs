//! Paged-vs-resident capacity bench: the on-the-fly points-to analysis
//! runs on a fully-resident universe and on disk-backed universes at a
//! tiny, a medium and an unbounded resident-frame budget. Each paged run
//! must land tuple-identical to the resident one (the pager's
//! correctness contract), and the tiny budget must actually page —
//! `page_faults > 0` with `page_max_resident` clamped to the budget —
//! which is the "analyses larger than RAM" capacity claim in measurable
//! form: the analysis completes while holding a fraction of its peak
//! live nodes in memory.
//!
//! With `JEDD_BENCH_JSON` set, a `paged_capacity` section records the
//! resident and per-budget wall clocks, the paging overhead ratio at the
//! tiny budget, and the page-fault / eviction / max-resident counters.

use jedd_analyses::facts::Facts;
use jedd_analyses::pointsto::{self, CallGraphMode, PointsTo};
use jedd_analyses::synth::Benchmark;
use jedd_bench::criterion::Criterion;
use jedd_bench::report::{write_section, JsonObject};
use std::collections::BTreeSet;
use std::time::Instant;

/// Frames held resident at the tiny budget: 4 blocks = 1024 node slots,
/// far below the points-to run's peak arena.
const TINY_FRAMES: usize = 4;
const MEDIUM_FRAMES: usize = 64;

fn tuples(pt: &PointsTo) -> BTreeSet<Vec<u64>> {
    pt.pt.tuples().into_iter().collect()
}

fn timed_resident() -> (f64, PointsTo, Facts) {
    let p = Benchmark::Tiny.generate();
    let f = Facts::load(&p).expect("resident facts");
    let start = Instant::now();
    let pt = pointsto::analyze(&f, CallGraphMode::OnTheFly).expect("points-to");
    (start.elapsed().as_secs_f64(), pt, f)
}

fn timed_paged(frames: usize) -> (f64, PointsTo, Facts) {
    let p = Benchmark::Tiny.generate();
    let f = Facts::load_paged(&p, frames).expect("paged facts");
    let start = Instant::now();
    let pt = pointsto::analyze(&f, CallGraphMode::OnTheFly).expect("paged points-to");
    (start.elapsed().as_secs_f64(), pt, f)
}

fn bench_paged_capacity(c: &mut Criterion) {
    let mut g = c.benchmark_group("paged_capacity");
    g.sample_size(2);
    g.bench_function("pointsto/resident", |b| {
        b.iter(|| timed_resident().1)
    });
    g.bench_function(&format!("pointsto/paged_{TINY_FRAMES}f"), |b| {
        b.iter(|| timed_paged(TINY_FRAMES).1)
    });
    g.finish();

    // Headline: one timed run per configuration, validated against each
    // other before anything is reported.
    let (resident_s, resident_pt, resident_f) = timed_resident();
    let expected = tuples(&resident_pt);
    let live_nodes = resident_f.u.bdd_manager().live_nodes();

    let mut section = JsonObject::new()
        .str("benchmark", "tiny")
        .float("resident_s", resident_s)
        .int("resident_live_nodes", live_nodes as u64)
        .int("pt_pairs", expected.len() as u64)
        .int("tiny_frames", TINY_FRAMES as u64);
    let mut tiny_s = resident_s;
    for frames in [TINY_FRAMES, MEDIUM_FRAMES, 0] {
        let (secs, pt, f) = timed_paged(frames);
        assert_eq!(
            tuples(&pt),
            expected,
            "paged points-to at {frames} frames diverged from resident"
        );
        let k = f.u.bdd_manager().kernel_stats();
        assert_eq!(k.page_faults, k.page_reads);
        assert!(k.page_evictions <= k.page_writes);
        let label = if frames == 0 { "unbounded".to_string() } else { format!("{frames}f") };
        if frames == TINY_FRAMES {
            tiny_s = secs;
            assert!(
                k.page_faults > 0,
                "the tiny budget never paged — the capacity claim is untested"
            );
            assert!(
                k.page_max_resident as usize <= frames,
                "resident frames exceeded the tiny budget"
            );
            assert!(
                live_nodes > frames * 256,
                "benchmark too small: {live_nodes} live nodes fit in {frames} frames"
            );
        } else if frames == 0 {
            assert_eq!(k.page_evictions, 0, "an unbounded budget evicted");
        }
        eprintln!(
            "paged_capacity: {label} {secs:.3}s ({} faults, {} evictions, max resident {})",
            k.page_faults, k.page_evictions, k.page_max_resident
        );
        section = section
            .float(&format!("paged_{label}_s"), secs)
            .int(&format!("page_faults_{label}"), k.page_faults)
            .int(&format!("page_evictions_{label}"), k.page_evictions)
            .int(&format!("page_max_resident_{label}"), k.page_max_resident);
    }
    let overhead = tiny_s / resident_s;
    eprintln!(
        "paged_capacity: resident {resident_s:.3}s, {TINY_FRAMES}-frame budget {tiny_s:.3}s \
         ({overhead:.2}x overhead, {live_nodes} live nodes vs {} resident slots)",
        TINY_FRAMES * 256
    );
    section = section.float("tiny_overhead_x", overhead);
    write_section("paged_capacity", &section);
}

jedd_bench::criterion_group!(benches, bench_paged_capacity);
jedd_bench::criterion_main!(benches);
