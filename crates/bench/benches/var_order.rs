//! Ablation: the effect of the BDD variable ordering (paper §4.3 — the
//! profiler exists to tune exactly this). Builds the same equality-heavy
//! relation under interleaved and blocked physical-domain orders and
//! compares both construction time and node counts.

use jedd_bdd::BddManager;
use jedd_bench::criterion::Criterion;
use jedd_bench::report::{write_section, JsonObject};

const BITS: usize = 14;

/// Builds the equality relation x == y with the two bit vectors
/// interleaved (x0 y0 x1 y1 ...): linear-size BDD.
fn equality_interleaved() -> (f64, usize) {
    let mgr = BddManager::new(2 * BITS);
    let xs: Vec<u32> = (0..BITS as u32).map(|i| 2 * i).collect();
    let ys: Vec<u32> = (0..BITS as u32).map(|i| 2 * i + 1).collect();
    let eq = mgr.equal_vectors(&xs, &ys);
    (eq.satcount(), eq.node_count())
}

/// The same relation with blocked order (x0..xn y0..yn): exponential-size
/// BDD.
fn equality_blocked() -> (f64, usize) {
    let mgr = BddManager::new(2 * BITS);
    let xs: Vec<u32> = (0..BITS as u32).collect();
    let ys: Vec<u32> = (BITS as u32..2 * BITS as u32).collect();
    let eq = mgr.equal_vectors(&xs, &ys);
    (eq.satcount(), eq.node_count())
}

fn bench_var_order(c: &mut Criterion) {
    let mut g = c.benchmark_group("var_order_equality");
    g.sample_size(10);
    g.bench_function("interleaved", |b| b.iter(equality_interleaved));
    g.bench_function("blocked", |b| b.iter(equality_blocked));
    g.finish();

    let ((count_i, nodes_i), secs_i) = jedd_bench::timed(equality_interleaved);
    let ((count_b, nodes_b), secs_b) = jedd_bench::timed(equality_blocked);
    assert_eq!(count_i, count_b, "same relation under both orders");
    // The paper's point: ordering changes the size dramatically.
    assert!(
        nodes_b > nodes_i * 10,
        "blocked ({nodes_b}) should dwarf interleaved ({nodes_i})"
    );
    eprintln!("equality over {BITS}-bit vectors: interleaved {nodes_i} nodes, blocked {nodes_b} nodes");
    write_section(
        "var_order",
        &JsonObject::new()
            .int("bits", BITS as u64)
            .int("interleaved_nodes", nodes_i as u64)
            .int("blocked_nodes", nodes_b as u64)
            .float("interleaved_s", secs_i)
            .float("blocked_s", secs_b)
            .float("blowup", nodes_b as f64 / nodes_i as f64),
    );
}

jedd_bench::criterion_group!(benches, bench_var_order);
jedd_bench::criterion_main!(benches);
