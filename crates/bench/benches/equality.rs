//! The paper's §2.2.1 note: relation equality "takes only constant time
//! in BDDs" (hash-consed canonical form), against the linear/log cost of
//! comparing explicit sets. This bench compares `Relation::equals` with
//! `BTreeSet` equality at growing sizes.

use jedd_bench::criterion::{BenchmarkId, Criterion};
use jedd_core::{Relation, Universe};
use std::collections::BTreeSet;

/// Two equal BDD relations and two equal explicit sets of size `n`.
type Fixtures = (Relation, Relation, BTreeSet<(u64, u64)>, BTreeSet<(u64, u64)>);

fn setup(n: u64) -> Fixtures {
    let u = Universe::new();
    let d = u.add_domain("D", 1 << 12);
    let pds = u.add_physical_domains_interleaved(&["A", "B"], 12);
    let a = u.add_attribute("a", d);
    let b = u.add_attribute("b", d);
    let tuples: Vec<Vec<u64>> = (0..n).map(|i| vec![i, (i * 7) % (1 << 12)]).collect();
    let r1 = Relation::from_tuples(&u, &[(a, pds[0]), (b, pds[1])], &tuples).unwrap();
    let r2 = Relation::from_tuples(&u, &[(a, pds[0]), (b, pds[1])], &tuples).unwrap();
    let s1: BTreeSet<(u64, u64)> = tuples.iter().map(|t| (t[0], t[1])).collect();
    let s2 = s1.clone();
    (r1, r2, s1, s2)
}

fn bench_equality(c: &mut Criterion) {
    let mut g = c.benchmark_group("equality");
    for n in [256u64, 1024, 4096] {
        let (r1, r2, s1, s2) = setup(n);
        g.bench_with_input(BenchmarkId::new("bdd_relation", n), &n, |bch, _| {
            bch.iter(|| r1.equals(std::hint::black_box(&r2)).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("btreeset", n), &n, |bch, _| {
            bch.iter(|| std::hint::black_box(&s1) == std::hint::black_box(&s2))
        });
    }
    g.finish();
}

jedd_bench::criterion_group!(benches, bench_equality);
jedd_bench::criterion_main!(benches);
