//! Ablation: the paper's §2.2.3 claim that composition (`<>`) is
//! implemented "more efficiently than a join followed by a projection"
//! because the backend fuses the intersection with the quantification
//! (`and_exists`). This bench measures both forms of the same relational
//! product on a transitive-closure step.

use jedd_bench::criterion::Criterion;
use jedd_core::{Relation, Universe};
use jedd_bdd::rng::XorShift64Star;

struct Setup {
    reach: Relation,
    edge_mid: Relation,
    mid: jedd_core::AttrId,
}

fn setup(n: u64, edges: usize) -> Setup {
    let u = Universe::new();
    let node = u.add_domain("Node", n);
    let pds = u.add_physical_domains_interleaved(&["N1", "N2", "N3"], 10);
    let src = u.add_attribute("src", node);
    let dst = u.add_attribute("dst", node);
    let mid = u.add_attribute("mid", node);
    let mut rng = XorShift64Star::new(7);
    let tuples: Vec<Vec<u64>> = (0..edges)
        .map(|_| vec![rng.gen_range(0..n), rng.gen_range(0..n)])
        .collect();
    let edge = Relation::from_tuples(&u, &[(src, pds[0]), (dst, pds[1])], &tuples).unwrap();
    // reach(src, mid): edge with dst renamed to mid on N3.
    let reach = edge
        .rename(dst, mid)
        .unwrap()
        .with_assignment(&[(mid, pds[2])])
        .unwrap();
    // edge(mid, dst): edge with src renamed to mid on N3.
    let edge_mid = edge
        .rename(src, mid)
        .unwrap()
        .with_assignment(&[(mid, pds[2])])
        .unwrap();
    Setup {
        reach,
        edge_mid,
        mid,
    }
}

fn bench_compose(c: &mut Criterion) {
    let s = setup(1 << 10, 4000);
    let mut g = c.benchmark_group("relational_product");
    g.bench_function("compose_fused", |b| {
        b.iter(|| {
            s.reach
                .compose(&[s.mid], &s.edge_mid, &[s.mid])
                .unwrap()
        })
    });
    g.bench_function("join_then_project", |b| {
        b.iter(|| {
            s.reach
                .join(&[s.mid], &s.edge_mid, &[s.mid])
                .unwrap()
                .project_away(&[s.mid])
                .unwrap()
        })
    });
    g.finish();
    // Sanity: both forms agree.
    let fused = s.reach.compose(&[s.mid], &s.edge_mid, &[s.mid]).unwrap();
    let split = s
        .reach
        .join(&[s.mid], &s.edge_mid, &[s.mid])
        .unwrap()
        .project_away(&[s.mid])
        .unwrap();
    assert!(fused.equals(&split).unwrap());
}

jedd_bench::criterion_group!(benches, bench_compose);
jedd_bench::criterion_main!(benches);
