//! Ablation: dynamic variable reordering (sifting) vs the static orders of
//! the `var_order` bench. Starting from the pessimal *blocked* order for
//! an equality-heavy relation, sifting should recover an interleaved-like
//! order and collapse the BDD.

use jedd_bdd::BddManager;
use jedd_bench::criterion::Criterion;
use jedd_bench::report::{write_section, JsonObject};

const BITS: usize = 11;

fn blocked_equality() -> (BddManager, jedd_bdd::Bdd) {
    let mgr = BddManager::new(2 * BITS);
    let xs: Vec<u32> = (0..BITS as u32).collect();
    let ys: Vec<u32> = (BITS as u32..2 * BITS as u32).collect();
    let eq = mgr.equal_vectors(&xs, &ys);
    (mgr, eq)
}

fn bench_sifting(c: &mut Criterion) {
    let mut g = c.benchmark_group("sifting");
    g.sample_size(10);
    g.bench_function("sift_blocked_equality", |b| {
        b.iter(|| {
            let (mgr, eq) = blocked_equality();
            let (before, after) = mgr.reorder_sift();
            std::hint::black_box((before, after, eq.node_count()))
        })
    });
    g.finish();

    let (mgr, eq) = blocked_equality();
    let before = eq.node_count();
    let count = eq.satcount();
    let (_, sift_s) = jedd_bench::timed(|| mgr.reorder_sift());
    let after = eq.node_count();
    assert_eq!(eq.satcount(), count, "sifting preserves the function");
    assert!(
        after * 20 < before,
        "sifting should collapse the blocked equality: {before} -> {after}"
    );
    eprintln!("blocked equality over {BITS}-bit vectors: {before} nodes -> {after} after sifting");

    // The order lab's search (sifting + window-3 + hot-window restarts)
    // on the same pessimal start, for comparison against plain sifting.
    let (mgr2, eq2) = blocked_equality();
    let ((search_before, search_after), search_s) =
        jedd_bench::timed(|| mgr2.order_search(2, 0x5EED));
    assert_eq!(eq2.satcount(), count, "order search preserves the function");
    write_section(
        "sifting",
        &JsonObject::new()
            .int("bits", BITS as u64)
            .int("nodes_before", before as u64)
            .int("nodes_after_sift", after as u64)
            .float("sift_s", sift_s)
            .int("search_before", search_before as u64)
            .int("search_after", search_after as u64)
            .float("search_s", search_s)
            .int(
                "sift_sweeps",
                mgr2.kernel_stats().sift_sweeps,
            ),
    );
}

jedd_bench::criterion_group!(benches, bench_sifting);
jedd_bench::criterion_main!(benches);
