//! Parallel apply speedup on the points-to kernel workload: the same
//! propagation rounds (compose / rename / union over a points-to-shaped
//! edge and points-to relation) run on 1 worker and on 4, on fresh
//! managers, and the wall-clock ratio is the headline number.
//!
//! The physical domains are laid out so the quantified variables sit at
//! the *bottom* of the order (DST on top, then OBJ, then VAR): the
//! parallel engine splits on the top levels and stops above the first
//! quantified level, so this layout gives the relational product its full
//! split depth. Results are validated against each other (same tuple
//! count at every thread count) before anything is timed.
//!
//! With `JEDD_BENCH_JSON` set, a `parallel_apply` section with the 1- and
//! 4-thread times and the speedup lands in the report. The >= 1.5x
//! acceptance gate arms itself through [`jedd_bench::speedup_gate`]
//! (4+ CPUs, overridable with `JEDD_BENCH_GATE=1`/`0`) and the report
//! records whether it was armed and why, so a disarmed run is visible.

use jedd_bench::criterion::Criterion;
use jedd_bench::report::{write_section, JsonObject};
use jedd_bdd::rng::XorShift64Star;
use jedd_core::{AttrId, Relation, Universe};
use std::time::Instant;

const VARS: u64 = 1 << 10;
const OBJS: u64 = 1 << 9;
const EDGES: usize = 8_000;
const SEEDS: usize = 3_000;
const ROUNDS: usize = 2;

struct Setup {
    edges: Relation,
    pt0: Relation,
    var: AttrId,
    dst: AttrId,
}

/// A fresh universe per timed run, so no run can feed another's op cache.
fn setup(threads: usize) -> Setup {
    let u = Universe::new();
    let var_d = u.add_domain("Var", VARS);
    let obj_d = u.add_domain("Obj", OBJS);
    // Allocation order is variable order: DST takes the top levels (where
    // the planner splits), VAR the bottom ones (where compose quantifies).
    let p_dst = u.add_physical_domain("DST", 10);
    let p_obj = u.add_physical_domain("OBJ", 9);
    let p_var = u.add_physical_domain("VAR", 10);
    let var = u.add_attribute("var", var_d);
    let dst = u.add_attribute("dst", var_d);
    let obj = u.add_attribute("obj", obj_d);
    u.bdd_manager().set_threads(threads);
    let mut rng = XorShift64Star::new(0x5eed);
    let e: Vec<Vec<u64>> = (0..EDGES)
        .map(|_| vec![rng.gen_range(0..VARS), rng.gen_range(0..VARS)])
        .collect();
    let edges = Relation::from_tuples(&u, &[(dst, p_dst), (var, p_var)], &e).expect("valid edges");
    let s: Vec<Vec<u64>> = (0..SEEDS)
        .map(|_| vec![rng.gen_range(0..VARS), rng.gen_range(0..OBJS)])
        .collect();
    let pt0 = Relation::from_tuples(&u, &[(var, p_var), (obj, p_obj)], &s).expect("valid seeds");
    Setup { edges, pt0, var, dst }
}

/// The points-to propagation kernel: `pt ∪= ∃var. edges(dst,var) ∧
/// pt(var,obj)`, renamed back onto `var`. Every round changes `pt`, so no
/// round is answered from the top-level op cache.
fn propagate(s: &Setup) -> Relation {
    let mut pt = s.pt0.clone();
    for _ in 0..ROUNDS {
        let step = s.edges.compose(&[s.var], &pt, &[s.var]).expect("compose");
        let step = step.rename(s.dst, s.var).expect("rename");
        pt = pt.union(&step).expect("union");
    }
    pt
}

fn timed_run(threads: usize) -> (f64, u64, jedd_bdd::KernelStats) {
    let s = setup(threads);
    let start = Instant::now();
    let pt = propagate(&s);
    let secs = start.elapsed().as_secs_f64();
    let stats = s.pt0.universe().bdd_manager().kernel_stats();
    (secs, pt.size(), stats)
}

fn bench_parallel_apply(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_apply");
    g.sample_size(3);
    for threads in [1usize, 4] {
        g.bench_function(&format!("pointsto_rounds/{threads}t"), |b| {
            let s = setup(threads);
            b.iter(|| propagate(&s));
        });
    }
    g.finish();

    // Headline: fresh managers, one timed propagation each.
    let (t1_s, n1, k1) = timed_run(1);
    let (t4_s, n4, k4) = timed_run(4);
    assert_eq!(n1, n4, "thread count must not change the fixpoint");
    assert_eq!(k1.par_ops, 0, "threads=1 must stay on the sequential path");
    assert!(k4.par_ops > 0, "threads=4 must engage the parallel engine");
    let speedup = t1_s / t4_s;
    eprintln!(
        "parallel_apply: 1t {:.3}s, 4t {:.3}s, speedup {:.2}x ({} parallel ops, {} tasks, {} steals)",
        t1_s, t4_s, speedup, k4.par_ops, k4.par_tasks, k4.par_steals
    );
    let gate = jedd_bench::speedup_gate();
    write_section(
        "parallel_apply",
        &JsonObject::new()
            .int("rounds", ROUNDS as u64)
            .int("cpus", gate.cpus as u64)
            .int("pt_pairs", n1)
            .float("t1_s", t1_s)
            .float("t4_s", t4_s)
            .float("speedup_x", speedup)
            .int("par_ops_4t", k4.par_ops)
            .int("par_tasks_4t", k4.par_tasks)
            .int("par_steals_4t", k4.par_steals)
            .int("gate_armed", gate.armed as u64)
            .str("gate_reason", &gate.reason),
    );
    if gate.armed {
        assert!(
            speedup >= 1.5,
            "parallel apply gate: expected >= 1.5x at 4 threads, got {speedup:.2}x"
        );
    } else {
        eprintln!("parallel_apply: speedup gate disarmed ({})", gate.reason);
    }
}

jedd_bench::criterion_group!(benches, bench_parallel_apply);
jedd_bench::criterion_main!(benches);
