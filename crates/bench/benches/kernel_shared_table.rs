//! Shared-table kernel speedup on the points-to workload: the same
//! propagation rounds (compose / rename / union over a points-to-shaped
//! edge and points-to relation) run on fresh managers at 1, 2, 4 and 8
//! worker threads, and the 1-vs-4 wall-clock ratio is the headline
//! number. Workers hash-cons directly into the shared concurrent unique
//! table — there is no import replay to serialise them — so this is a
//! measurement of the kernel the analyses actually run on.
//!
//! The physical domains are laid out so the quantified variables sit at
//! the *bottom* of the order (DST on top, then OBJ, then VAR): the
//! parallel engine splits on the top levels and stops above the first
//! quantified level, so this layout gives the relational product its full
//! split depth. Results are validated against each other (same tuple
//! count at every thread count) before anything is timed.
//!
//! With `JEDD_BENCH_JSON` set, a `kernel_shared_table` section with the
//! per-thread-count times and the speedup lands in the report. The 1.5x
//! acceptance gate arms itself through
//! [`jedd_bench::speedup_gate`] (4+ CPUs, overridable with
//! `JEDD_BENCH_GATE=1`/`0`) and the report records whether it was armed
//! and why, so a disarmed run is visible.

use jedd_bench::criterion::Criterion;
use jedd_bench::report::{write_section, JsonObject};
use jedd_bdd::rng::XorShift64Star;
use jedd_core::{AttrId, Relation, Universe};
use std::time::Instant;

const VARS: u64 = 1 << 10;
const OBJS: u64 = 1 << 9;
const EDGES: usize = 8_000;
const SEEDS: usize = 3_000;
const ROUNDS: usize = 2;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Setup {
    edges: Relation,
    pt0: Relation,
    var: AttrId,
    dst: AttrId,
}

/// A fresh universe per timed run, so no run can feed another's op cache.
fn setup(threads: usize) -> Setup {
    let u = Universe::new();
    let var_d = u.add_domain("Var", VARS);
    let obj_d = u.add_domain("Obj", OBJS);
    // Allocation order is variable order: DST takes the top levels (where
    // the planner splits), VAR the bottom ones (where compose quantifies).
    let p_dst = u.add_physical_domain("DST", 10);
    let p_obj = u.add_physical_domain("OBJ", 9);
    let p_var = u.add_physical_domain("VAR", 10);
    let var = u.add_attribute("var", var_d);
    let dst = u.add_attribute("dst", var_d);
    let obj = u.add_attribute("obj", obj_d);
    u.bdd_manager().set_threads(threads);
    let mut rng = XorShift64Star::new(0x5eed);
    let e: Vec<Vec<u64>> = (0..EDGES)
        .map(|_| vec![rng.gen_range(0..VARS), rng.gen_range(0..VARS)])
        .collect();
    let edges = Relation::from_tuples(&u, &[(dst, p_dst), (var, p_var)], &e).expect("valid edges");
    let s: Vec<Vec<u64>> = (0..SEEDS)
        .map(|_| vec![rng.gen_range(0..VARS), rng.gen_range(0..OBJS)])
        .collect();
    let pt0 = Relation::from_tuples(&u, &[(var, p_var), (obj, p_obj)], &s).expect("valid seeds");
    Setup { edges, pt0, var, dst }
}

/// The points-to propagation kernel: `pt ∪= ∃var. edges(dst,var) ∧
/// pt(var,obj)`, renamed back onto `var`. Every round changes `pt`, so no
/// round is answered from the top-level op cache.
fn propagate(s: &Setup) -> Relation {
    let mut pt = s.pt0.clone();
    for _ in 0..ROUNDS {
        let step = s.edges.compose(&[s.var], &pt, &[s.var]).expect("compose");
        let step = step.rename(s.dst, s.var).expect("rename");
        pt = pt.union(&step).expect("union");
    }
    pt
}

fn timed_run(threads: usize) -> (f64, u64, jedd_bdd::KernelStats) {
    let s = setup(threads);
    let start = Instant::now();
    let pt = propagate(&s);
    let secs = start.elapsed().as_secs_f64();
    let stats = s.pt0.universe().bdd_manager().kernel_stats();
    (secs, pt.size(), stats)
}

fn bench_kernel_shared_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_shared_table");
    g.sample_size(3);
    for threads in [1usize, 4] {
        g.bench_function(&format!("pointsto_rounds/{threads}t"), |b| {
            let s = setup(threads);
            b.iter(|| propagate(&s));
        });
    }
    g.finish();

    // Headline: fresh managers, one timed propagation per thread count.
    let runs: Vec<(usize, f64, u64, jedd_bdd::KernelStats)> = THREAD_COUNTS
        .iter()
        .map(|&t| {
            let (secs, n, k) = timed_run(t);
            (t, secs, n, k)
        })
        .collect();
    let (_, t1_s, n1, ref k1) = runs[0];
    for &(t, _, n, ref k) in &runs {
        assert_eq!(n1, n, "thread count {t} changed the fixpoint");
        if t == 1 {
            assert_eq!(k.par_ops, 0, "threads=1 must stay on the sequential path");
        } else {
            assert!(k.par_ops > 0, "threads={t} must engage the parallel kernel");
        }
    }
    assert_eq!(k1.par_ops, 0);
    let (_, t4_s, _, ref k4) = runs[2];
    let speedup = t1_s / t4_s;
    for &(t, secs, _, _) in &runs {
        eprintln!("kernel_shared_table: {t}t {secs:.3}s");
    }
    eprintln!(
        "kernel_shared_table: speedup {:.2}x at 4 threads ({} parallel ops, {} tasks, \
         {} steals, {} shared nodes, {} effective threads)",
        speedup,
        k4.par_ops,
        k4.par_tasks,
        k4.par_steals,
        k4.par_shared_nodes,
        k4.par_threads_effective
    );
    let gate = jedd_bench::speedup_gate();
    let mut section = JsonObject::new()
        .int("rounds", ROUNDS as u64)
        .int("cpus", gate.cpus as u64)
        .int("pt_pairs", n1);
    for &(t, secs, _, _) in &runs {
        section = section.float(&format!("t{t}_s"), secs);
    }
    section = section
        .float("speedup_4t_x", speedup)
        .int("par_ops_4t", k4.par_ops)
        .int("par_tasks_4t", k4.par_tasks)
        .int("par_steals_4t", k4.par_steals)
        .int("par_shared_nodes_4t", k4.par_shared_nodes)
        .int("par_threads_effective_4t", k4.par_threads_effective)
        .int("par_thread_clamps_4t", k4.par_thread_clamps)
        .int("gate_armed", gate.armed as u64)
        .str("gate_reason", &gate.reason);
    write_section("kernel_shared_table", &section);
    if gate.armed {
        assert!(
            speedup >= 1.5,
            "shared-table kernel gate: expected >= 1.5x at 4 threads, got {speedup:.2}x"
        );
    } else {
        eprintln!("kernel_shared_table: speedup gate disarmed ({})", gate.reason);
    }
}

jedd_bench::criterion_group!(benches, bench_kernel_shared_table);
jedd_bench::criterion_main!(benches);
