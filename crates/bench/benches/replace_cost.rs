//! Ablation: the cost of `replace` operations and why the physical-domain
//! assignment minimises them (paper §3.3.2). Compares a propagation loop
//! under a good assignment (compared attributes share a physical domain;
//! no replace per iteration beyond the result move) against a pessimal
//! assignment that forces an extra replace of the large points-to relation
//! on every iteration.

use jedd_bench::criterion::Criterion;
use jedd_core::{Relation, Universe};
use jedd_bdd::rng::XorShift64Star;

struct Setup {
    u: Universe,
    edges: Relation,
    pt0: Relation,
    var: jedd_core::AttrId,
    dst: jedd_core::AttrId,
    v1: jedd_core::PhysDomId,
    v3: jedd_core::PhysDomId,
}

fn setup() -> Setup {
    let u = Universe::new();
    let var_d = u.add_domain("Var", 1 << 10);
    let obj_d = u.add_domain("Obj", 1 << 9);
    let vs = u.add_physical_domains_interleaved(&["V1", "V2", "V3"], 10);
    let h1 = u.add_physical_domain("H1", 9);
    let var = u.add_attribute("var", var_d);
    let dst = u.add_attribute("dst", var_d);
    let obj = u.add_attribute("obj", obj_d);
    let mut rng = XorShift64Star::new(11);
    let e: Vec<Vec<u64>> = (0..3000)
        .map(|_| vec![rng.gen_range(0..1 << 10), rng.gen_range(0..1 << 10)])
        .collect();
    let edges = Relation::from_tuples(&u, &[(dst, vs[1]), (var, vs[0])], &e).unwrap();
    let n: Vec<Vec<u64>> = (0..600)
        .map(|_| vec![rng.gen_range(0..1 << 10), rng.gen_range(0..1 << 9)])
        .collect();
    let pt0 = Relation::from_tuples(&u, &[(var, vs[0]), (obj, h1)], &n).unwrap();
    Setup {
        u,
        edges,
        pt0,
        var,
        dst,
        v1: vs[0],
        v3: vs[2],
    }
}

fn propagate(s: &Setup, pessimal: bool) -> Relation {
    let mut pt = s.pt0.clone();
    let before = s.u.stats().auto_replaces;
    loop {
        let pt_in = if pessimal {
            // Force the large relation onto the wrong physical domain so
            // the compose must replace it back — the "unnecessary replace"
            // the assignment algorithm exists to avoid.
            pt.with_assignment(&[(s.var, s.v3)]).unwrap()
        } else {
            pt.clone()
        };
        let step = s.edges.compose(&[s.var], &pt_in, &[s.var]).unwrap();
        let step = step
            .rename(s.dst, s.var)
            .unwrap()
            .with_assignment(&[(s.var, s.v1)])
            .unwrap();
        let next = pt.union(&step).unwrap();
        if next.equals(&pt).unwrap() {
            let _ = before;
            return next;
        }
        pt = next;
    }
}

fn bench_replace_cost(c: &mut Criterion) {
    let s = setup();
    let mut g = c.benchmark_group("replace_cost");
    g.bench_function("good_assignment", |b| b.iter(|| propagate(&s, false)));
    g.bench_function("pessimal_assignment", |b| b.iter(|| propagate(&s, true)));
    g.finish();
    // Sanity: same fixpoint either way.
    assert!(propagate(&s, false).equals(&propagate(&s, true)).unwrap());
}

jedd_bench::criterion_group!(benches, bench_replace_cost);
jedd_bench::criterion_main!(benches);
