//! Ablation: the cost of `replace` operations and why the physical-domain
//! assignment minimises them (paper §3.3.2). Compares a propagation loop
//! under a good assignment (compared attributes share a physical domain;
//! no replace per iteration beyond the result move) against a pessimal
//! assignment that forces an extra replace of the large points-to relation
//! on every iteration.
//!
//! A second, kernel-level group measures the `replace` recursion itself:
//! the direct `mk`-based path with the shared op cache against the
//! seed's HashMap + ite-rebuild algorithm (kept as
//! `try_replace_rebuild`), on both an order-preserving shift and an
//! order-reversing permutation. Headline numbers land in the
//! `JEDD_BENCH_JSON` report when that variable is set.

use jedd_bench::criterion::Criterion;
use jedd_bench::report::{write_section, JsonObject};
use jedd_bdd::rng::XorShift64Star;
use jedd_bdd::{Bdd, BddManager, Permutation};
use jedd_core::{Relation, Universe};
use std::time::Instant;

struct Setup {
    u: Universe,
    edges: Relation,
    pt0: Relation,
    var: jedd_core::AttrId,
    dst: jedd_core::AttrId,
    v1: jedd_core::PhysDomId,
    v3: jedd_core::PhysDomId,
}

fn setup() -> Setup {
    let u = Universe::new();
    let var_d = u.add_domain("Var", 1 << 10);
    let obj_d = u.add_domain("Obj", 1 << 9);
    let vs = u.add_physical_domains_interleaved(&["V1", "V2", "V3"], 10);
    let h1 = u.add_physical_domain("H1", 9);
    let var = u.add_attribute("var", var_d);
    let dst = u.add_attribute("dst", var_d);
    let obj = u.add_attribute("obj", obj_d);
    let mut rng = XorShift64Star::new(11);
    let e: Vec<Vec<u64>> = (0..3000)
        .map(|_| vec![rng.gen_range(0..1 << 10), rng.gen_range(0..1 << 10)])
        .collect();
    let edges = Relation::from_tuples(&u, &[(dst, vs[1]), (var, vs[0])], &e).unwrap();
    let n: Vec<Vec<u64>> = (0..600)
        .map(|_| vec![rng.gen_range(0..1 << 10), rng.gen_range(0..1 << 9)])
        .collect();
    let pt0 = Relation::from_tuples(&u, &[(var, vs[0]), (obj, h1)], &n).unwrap();
    Setup {
        u,
        edges,
        pt0,
        var,
        dst,
        v1: vs[0],
        v3: vs[2],
    }
}

fn propagate(s: &Setup, pessimal: bool) -> Relation {
    let mut pt = s.pt0.clone();
    let before = s.u.stats().auto_replaces;
    loop {
        let pt_in = if pessimal {
            // Force the large relation onto the wrong physical domain so
            // the compose must replace it back — the "unnecessary replace"
            // the assignment algorithm exists to avoid.
            pt.with_assignment(&[(s.var, s.v3)]).unwrap()
        } else {
            pt.clone()
        };
        let step = s.edges.compose(&[s.var], &pt_in, &[s.var]).unwrap();
        let step = step
            .rename(s.dst, s.var)
            .unwrap()
            .with_assignment(&[(s.var, s.v1)])
            .unwrap();
        let next = pt.union(&step).unwrap();
        if next.equals(&pt).unwrap() {
            let _ = before;
            return next;
        }
        pt = next;
    }
}

fn bench_replace_cost(c: &mut Criterion) {
    let s = setup();
    let mut g = c.benchmark_group("replace_cost");
    g.bench_function("good_assignment", |b| b.iter(|| propagate(&s, false)));
    g.bench_function("pessimal_assignment", |b| b.iter(|| propagate(&s, true)));
    g.finish();
    // Sanity: same fixpoint either way.
    let (good, good_s) = jedd_bench::timed(|| propagate(&s, false));
    let (bad, bad_s) = jedd_bench::timed(|| propagate(&s, true));
    assert!(good.equals(&bad).unwrap());
    write_section(
        "replace_cost_relational",
        &JsonObject::new()
            .float("good_assignment_s", good_s)
            .float("pessimal_assignment_s", bad_s)
            .int("fixpoint_tuples", good.size()),
    );
}

/// A dense random function over the first 16 of 32 variables: an OR of
/// random 8-literal conjunctions, so both permutations below stay within
/// range and the order-reversing case exercises the ite-rebuild fallback.
fn dense(mgr: &BddManager, rng: &mut XorShift64Star, terms: usize) -> Bdd {
    let mut f = mgr.constant_false();
    for _ in 0..terms {
        let mut t = mgr.constant_true();
        for _ in 0..8 {
            let v = rng.gen_range(0..16) as u32;
            let lit = if rng.gen_bool(0.5) { mgr.var(v) } else { mgr.nvar(v) };
            t = t.and(&lit);
        }
        f = f.or(&t);
    }
    f
}

fn shift_perm() -> Permutation {
    let pairs: Vec<(u32, u32)> = (0..16).map(|i| (i, i + 16)).collect();
    Permutation::try_from_pairs(&pairs).expect("shift is injective")
}

fn reversal_perm() -> Permutation {
    // Swap the two halves pairwise in reverse: order-reversing on support.
    let pairs: Vec<(u32, u32)> = (0..16).map(|i| (i, 31 - i)).collect();
    Permutation::try_from_pairs(&pairs).expect("reversal is injective")
}

/// Times `runs` repetitions of `op` on a fresh manager, returning the
/// total seconds and the manager for counter inspection.
fn timed_runs(
    terms: usize,
    runs: usize,
    op: impl Fn(&Bdd, &Permutation) -> Bdd,
    perm: &Permutation,
) -> (f64, BddManager, Bdd) {
    let mgr = BddManager::new(32);
    let mut rng = XorShift64Star::new(7);
    let f = dense(&mgr, &mut rng, terms);
    let start = Instant::now();
    let mut r = op(&f, perm);
    for _ in 1..runs {
        r = op(&f, perm);
    }
    (start.elapsed().as_secs_f64(), mgr, r)
}

fn bench_kernel_replace(c: &mut Criterion) {
    let terms = 60;
    let mut g = c.benchmark_group("replace_kernel");
    for (label, perm) in [("shift", shift_perm()), ("reversal", reversal_perm())] {
        let mgr = BddManager::new(32);
        let mut rng = XorShift64Star::new(7);
        let f = dense(&mgr, &mut rng, terms);
        // Both algorithms must agree before we time anything.
        let direct = f.try_replace(&perm).expect("valid perm");
        let rebuilt = f.try_replace_rebuild(&perm).expect("valid perm");
        assert!(
            direct == rebuilt,
            "direct and rebuild replace disagree on {label}"
        );
        g.bench_function(&format!("direct/{label}"), |b| {
            b.iter(|| f.try_replace(&perm).expect("valid perm"))
        });
        g.bench_function(&format!("rebuild/{label}"), |b| {
            b.iter(|| f.try_replace_rebuild(&perm).expect("valid perm"))
        });
    }
    g.finish();

    // Headline JSON: fresh managers so each path's counters are its own.
    let runs = 50;
    let mut section = JsonObject::new().int("terms", terms as u64).int("runs", runs as u64);
    for (label, perm) in [("shift", shift_perm()), ("reversal", reversal_perm())] {
        let (direct_s, mgr, _r) =
            timed_runs(terms, runs, |f, p| f.try_replace(p).expect("valid"), &perm);
        let stats = mgr.kernel_stats();
        let replace_cache = stats.op_cache("replace").expect("known op");
        assert!(
            replace_cache.hits > 0,
            "repeated identical replaces must hit the shared cache ({label})"
        );
        let (rebuild_s, _mgr2, _r2) = timed_runs(
            terms,
            runs,
            |f, p| f.try_replace_rebuild(p).expect("valid"),
            &perm,
        );
        section = section.object(
            label,
            JsonObject::new()
                .float("direct_s", direct_s)
                .float("rebuild_s", rebuild_s)
                .int("direct_cache_lookups", replace_cache.lookups)
                .int("direct_cache_hits", replace_cache.hits)
                .float("direct_cache_hit_rate", replace_cache.hit_rate())
                .int("nodes_created", stats.nodes_created),
        );
    }
    write_section("replace_kernel", &section);
}

jedd_bench::criterion_group!(benches, bench_replace_cost, bench_kernel_replace);
jedd_bench::criterion_main!(benches);
