//! Criterion bench for Table 2: hand-coded direct-BDD points-to vs the
//! Jedd relational version, on the `compress`-scale benchmark (kept small
//! so the bench suite stays fast; the `table2` binary sweeps all five).
//! With `JEDD_BENCH_JSON` set, the wall times and the relational run's
//! kernel cache counters are appended to the report.

use jedd_analyses::pointsto::CallGraphMode;
use jedd_analyses::synth::Benchmark;
use jedd_bench::criterion::Criterion;
use jedd_bench::report::{write_section, JsonObject};

fn bench_pointsto(c: &mut Criterion) {
    let p = Benchmark::Compress.generate();
    let mut g = c.benchmark_group("pointsto_compress");
    g.sample_size(10);
    g.bench_function("hand_coded_bdd", |b| {
        b.iter(|| jedd_analyses::baseline_bdd::analyze(std::hint::black_box(&p)))
    });
    g.bench_function("jedd_relational", |b| {
        b.iter(|| {
            let f = jedd_analyses::facts::Facts::load(std::hint::black_box(&p)).unwrap();
            jedd_analyses::pointsto::analyze(&f, CallGraphMode::OnTheFly).unwrap()
        })
    });
    g.bench_function("explicit_sets", |b| {
        b.iter(|| jedd_analyses::baseline_sets::points_to(std::hint::black_box(&p)))
    });
    g.finish();

    // One measured run of each implementation for the JSON report, with
    // the relational run's kernel counters alongside its wall time.
    let (raw, hand_coded_s) = jedd_bench::timed(|| jedd_analyses::baseline_bdd::analyze(&p));
    let f = jedd_analyses::facts::Facts::load(&p).unwrap();
    let (rel, relational_s) = jedd_bench::timed(|| {
        jedd_analyses::pointsto::analyze(&f, CallGraphMode::OnTheFly).unwrap()
    });
    assert_eq!(raw.pt_pairs().len() as u64, rel.pt.size());
    let stats = f.u.bdd_manager().kernel_stats();
    write_section(
        "pointsto_compress",
        &JsonObject::new()
            .float("hand_coded_s", hand_coded_s)
            .float("relational_s", relational_s)
            .int("pt_pairs", rel.pt.size())
            .int("cache_lookups", stats.cache_lookups)
            .int("cache_hits", stats.cache_hits)
            .int("gc_runs", stats.gc_runs)
            .int("cache_sweeps", stats.cache_sweeps)
            .int("cache_entries_kept", stats.cache_entries_kept)
            .int("cache_entries_swept", stats.cache_entries_swept),
    );
}

jedd_bench::criterion_group!(benches, bench_pointsto);
jedd_bench::criterion_main!(benches);
