//! Criterion bench for Table 2: hand-coded direct-BDD points-to vs the
//! Jedd relational version, on the `compress`-scale benchmark (kept small
//! so the bench suite stays fast; the `table2` binary sweeps all five).

use jedd_bench::criterion::Criterion;
use jedd_analyses::pointsto::CallGraphMode;
use jedd_analyses::synth::Benchmark;

fn bench_pointsto(c: &mut Criterion) {
    let p = Benchmark::Compress.generate();
    let mut g = c.benchmark_group("pointsto_compress");
    g.sample_size(10);
    g.bench_function("hand_coded_bdd", |b| {
        b.iter(|| jedd_analyses::baseline_bdd::analyze(std::hint::black_box(&p)))
    });
    g.bench_function("jedd_relational", |b| {
        b.iter(|| {
            let f = jedd_analyses::facts::Facts::load(std::hint::black_box(&p)).unwrap();
            jedd_analyses::pointsto::analyze(&f, CallGraphMode::OnTheFly).unwrap()
        })
    });
    g.bench_function("explicit_sets", |b| {
        b.iter(|| jedd_analyses::baseline_sets::points_to(std::hint::black_box(&p)))
    });
    g.finish();
}

jedd_bench::criterion_group!(benches, bench_pointsto);
jedd_bench::criterion_main!(benches);
