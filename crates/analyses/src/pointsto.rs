//! The Points-to Analysis module (paper Fig. 2; algorithm of Berndl et
//! al., PLDI 2003 \[5\]): a flow-insensitive, field-sensitive, subset-based
//! points-to analysis over BDD relations, with an on-the-fly call graph
//! built through virtual call resolution — the "interrelated" part of the
//! paper's five analyses.

use crate::facts::Facts;
use crate::vcr;
use jedd_core::{ComposeJob, DeltaRel, Fixpoint, JeddError, Relation, Strategy};

/// How receiver types are determined for call-graph construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallGraphMode {
    /// Resolve receivers from the current points-to sets, iterating the
    /// two analyses to a mutual fixpoint (the paper's configuration).
    OnTheFly,
    /// Assume every type reaches every receiver (a CHA-like
    /// over-approximation); one pass, no iteration.
    AllTypes,
}

/// The result of the points-to analysis.
pub struct PointsTo {
    /// `(var, obj)` points-to pairs.
    pub pt: Relation,
    /// `(baseobj, field, obj)` field points-to pairs.
    pub field_pt: Relation,
    /// `(site, method)` call edges discovered.
    pub cg: Relation,
    /// Outer fixpoint iterations.
    pub iterations: usize,
}

/// Runs the analysis to fixpoint with the default [`Strategy`]
/// (semi-naive; produces bit-identical relations to the naive oracle).
///
/// # Errors
///
/// Propagates relational-layer errors.
pub fn analyze(f: &Facts, mode: CallGraphMode) -> Result<PointsTo, JeddError> {
    analyze_with(f, mode, Strategy::default())
}

/// Runs the analysis to fixpoint under an explicit evaluation strategy.
///
/// # Errors
///
/// Propagates relational-layer errors.
pub fn analyze_with(
    f: &Facts,
    mode: CallGraphMode,
    strategy: Strategy,
) -> Result<PointsTo, JeddError> {
    analyze_impl(f, mode, None, strategy)
}

/// Runs the analysis with declared-type filtering: a variable may only
/// point to objects whose class is a subtype of the variable's declared
/// type. This consumes the Hierarchy module's `subtypeOf` closure — the
/// Fig. 2 arrow from Hierarchy into Points-to Analysis.
///
/// # Errors
///
/// Propagates relational-layer errors.
pub fn analyze_typed(
    f: &Facts,
    mode: CallGraphMode,
    subtype_of: &Relation,
) -> Result<PointsTo, JeddError> {
    analyze_typed_with(f, mode, subtype_of, Strategy::default())
}

/// [`analyze_typed`] under an explicit evaluation strategy.
///
/// # Errors
///
/// Propagates relational-layer errors.
pub fn analyze_typed_with(
    f: &Facts,
    mode: CallGraphMode,
    subtype_of: &Relation,
    strategy: Strategy,
) -> Result<PointsTo, JeddError> {
    let allowed = typed_filter(f, subtype_of)?;
    analyze_impl(f, mode, Some(&allowed), strategy)
}

/// `allowed(var, obj)`: the object's class is a subtype of the variable's
/// declared type. Consumes the Hierarchy module's `subtypeOf` closure —
/// shared by [`analyze_typed_with`] and the checkpointed driver.
pub(crate) fn typed_filter(f: &Facts, subtype_of: &Relation) -> Result<Relation, JeddError> {
    f.u.set_site("pointsto-filter");
    // (obj, ty) with ty renamed to subtype (already at a T domain).
    let obj_sub = f.objtype.rename(f.ty, f.subtype)?.with_assignment(&[(f.subtype, f.t1)])?;
    // (obj, supertype) = obj_sub{subtype} <> subtypeOf{subtype}
    let obj_sup = obj_sub.compose(&[f.subtype], subtype_of, &[f.subtype])?;
    // (obj, ty) at T2, matching var_type's type position.
    let obj_ok = obj_sup
        .rename(f.supertype, f.ty)?
        .with_assignment(&[(f.ty, f.t2)])?;
    // (var, obj) = var_type{ty} <> obj_ok{ty}
    f.var_type.compose(&[f.ty], &obj_ok, &[f.ty])
}

fn analyze_impl(
    f: &Facts,
    mode: CallGraphMode,
    allowed: Option<&Relation>,
    strategy: Strategy,
) -> Result<PointsTo, JeddError> {
    match strategy {
        Strategy::Naive => analyze_naive(f, mode, allowed),
        Strategy::SemiNaive => analyze_seminaive(f, mode, allowed),
    }
}

/// The naive oracle: every round re-derives from the full relations. Kept
/// verbatim (modulo the divergence guard) so the delta engine has a
/// bit-identical reference to be checked against.
fn analyze_naive(
    f: &Facts,
    mode: CallGraphMode,
    allowed: Option<&Relation>,
) -> Result<PointsTo, JeddError> {
    f.u.set_site("pointsto");
    let filter = |r: Relation| -> Result<Relation, JeddError> {
        match allowed {
            Some(a) => r.intersect(a),
            None => Ok(r),
        }
    };
    let mut pt = filter(f.news.clone())?;
    let mut field_pt = Relation::empty(
        &f.u,
        &[(f.baseobj, f.h2), (f.field, f.f1), (f.obj, f.h1)],
    )?;
    let mut cg = Relation::empty(&f.u, &[(f.site, f.c1), (f.method, f.m1)])?;
    let mut edges = f.assigns.clone();

    let mut fp = Fixpoint::new(&f.u, "pointsto");
    loop {
        fp.begin_round()?;
        // --- 1. Copy propagation to a local fixpoint. ---
        loop {
            // step(dst, obj) = ∃src. edges(dst, src) ∧ pt(src, obj)
            let step = edges.compose(&[f.src], &pt, &[f.var])?;
            let step = step
                .rename(f.dst, f.var)?
                .with_assignment(&[(f.var, f.v1)])?;
            let next = filter(pt.union(&step)?)?;
            if next.equals(&pt)? {
                break;
            }
            pt = next;
        }

        // pt with the object moved aside and named baseobj, for matching
        // base variables of loads/stores.
        let pt_base = pt
            .rename(f.obj, f.baseobj)?
            .with_assignment(&[(f.baseobj, f.h2)])?;

        // --- 2. Stores: base.field = src. ---
        // (field, src, baseobj) = stores{base} <> pt_base{var}
        let st = f.stores.compose(&[f.base], &pt_base, &[f.var])?;
        // (field, baseobj, obj) = st{src} <> pt{var}
        let st = st.compose(&[f.src], &pt, &[f.var])?;
        field_pt = field_pt.union(&st)?;

        // --- 3. Loads: dst = base.field. ---
        // (dst, field, baseobj) = loads{base} <> pt_base{var}
        let ld = f.loads.compose(&[f.base], &pt_base, &[f.var])?;
        // (dst, obj) = ld{baseobj, field} <> field_pt{baseobj, field}
        let ld = ld.compose(&[f.baseobj, f.field], &field_pt, &[f.baseobj, f.field])?;
        let ld = ld.rename(f.dst, f.var)?.with_assignment(&[(f.var, f.v1)])?;
        let pt_next = filter(pt.union(&ld)?)?;

        // --- 4. Call graph. ---
        let site_types = match mode {
            CallGraphMode::OnTheFly => {
                // (site, obj) = site_recv{var} <> pt{var}
                let site_objs = f.site_recv.compose(&[f.var], &pt_next, &[f.var])?;
                // (site, type) = site_objs{obj} <> objtype{obj}
                site_objs.compose(&[f.obj], &f.objtype, &[f.obj])?
            }
            CallGraphMode::AllTypes => {
                Relation::full(&f.u, &[(f.site, f.c1), (f.ty, f.t1)])?
            }
        };
        let cg_next = vcr::resolve(f, &site_types)?;
        f.u.set_site("pointsto");

        // --- 5. Interprocedural assignment edges from call edges. ---
        // this-parameter: this(callee) := recv(site).
        let this_edges = cg_next
            .join(&[f.method], &f.method_this, &[f.method])?
            .rename(f.var, f.dst)?
            .join(&[f.site], &f.site_recv, &[f.site])?
            .rename(f.var, f.src)?
            .project_onto(&[f.dst, f.src])?;
        // parameters: param(callee, i) := arg(site, i).
        let param_edges = cg_next
            .join(&[f.method], &f.method_param, &[f.method])?
            .rename(f.var, f.dst)?
            .join(&[f.site, f.idx], &f.site_arg, &[f.site, f.idx])?
            .rename(f.var, f.src)?
            .project_onto(&[f.dst, f.src])?;
        // returns: ret(site) := retvar(callee).
        let ret_edges = cg_next
            .join(&[f.method], &f.method_ret, &[f.method])?
            .rename(f.var, f.src)?
            .join(&[f.site], &f.site_ret, &[f.site])?
            .rename(f.var, f.dst)?
            .project_onto(&[f.dst, f.src])?;
        let new_edges = this_edges.union(&param_edges)?.union(&ret_edges)?;
        let edges_next = edges.union(&new_edges)?;

        let done = pt_next.equals(&pt)?
            && cg_next.equals(&cg)?
            && edges_next.equals(&edges)?;
        pt = pt_next;
        cg = cg_next;
        edges = edges_next;
        fp.end_round(&[]);
        if done {
            // One more propagation round ran with no change anywhere.
            return Ok(PointsTo {
                pt,
                field_pt,
                cg,
                iterations: fp.rounds() as usize,
            });
        }
    }
}

/// The mutable state of a semi-naive points-to run between outer rounds —
/// everything [`pt_round`] reads and writes, and exactly what a
/// checkpoint must persist to resume the run (`crate::persist`).
pub(crate) struct PtState {
    /// `(var, obj)` points-to pairs.
    pub(crate) pt: DeltaRel,
    /// `(baseobj, field, obj)` field points-to pairs.
    pub(crate) field_pt: DeltaRel,
    /// `(site, method)` discovered call edges.
    pub(crate) cg: DeltaRel,
    /// `(dst, src)` assignment edges (base plus interprocedural).
    pub(crate) edges: DeltaRel,
    /// `(site, type)` receiver types pending/consumed by resolution.
    pub(crate) site_types: DeltaRel,
    /// Everything in pt the store/load/call-graph rules have consumed so
    /// far: snapshotted each round just before the loads fire, so next
    /// round's delta for those rules is a single diff against it.
    pub(crate) pt_seen: Relation,
}

impl PtState {
    pub(crate) fn into_result(self, iterations: usize) -> PointsTo {
        PointsTo {
            pt: self.pt.into_current(),
            field_pt: self.field_pt.into_current(),
            cg: self.cg.into_current(),
            iterations,
        }
    }
}

fn filtered(allowed: Option<&Relation>, r: Relation) -> Result<Relation, JeddError> {
    match allowed {
        Some(a) => r.intersect(a),
        None => Ok(r),
    }
}

/// The initial [`PtState`]: pt seeded from `news` (filtered), edges from
/// `assigns`, everything else empty.
pub(crate) fn pt_init(f: &Facts, allowed: Option<&Relation>) -> Result<PtState, JeddError> {
    Ok(PtState {
        pt: DeltaRel::new("pt", filtered(allowed, f.news.clone())?),
        field_pt: DeltaRel::new(
            "field_pt",
            Relation::empty(
                &f.u,
                &[(f.baseobj, f.h2), (f.field, f.f1), (f.obj, f.h1)],
            )?,
        ),
        cg: DeltaRel::new(
            "cg",
            Relation::empty(&f.u, &[(f.site, f.c1), (f.method, f.m1)])?,
        ),
        edges: DeltaRel::new("edges", f.assigns.clone()),
        site_types: DeltaRel::new(
            "site_types",
            Relation::empty(&f.u, &[(f.site, f.c1), (f.ty, f.t1)])?,
        ),
        pt_seen: Relation::empty(&f.u, &[(f.var, f.v1), (f.obj, f.h1)])?,
    })
}

/// One outer semi-naive round (`begin_round` through `end_round`),
/// shared verbatim by [`analyze_seminaive`] and the checkpointed driver.
/// Returns whether another round is needed.
pub(crate) fn pt_round(
    f: &Facts,
    mode: CallGraphMode,
    allowed: Option<&Relation>,
    st: &mut PtState,
    fp: &mut Fixpoint,
) -> Result<bool, JeddError> {
    let filter = |r: Relation| filtered(allowed, r);
    // pt with the object moved aside and named baseobj, for matching base
    // variables of loads/stores.
    let to_base = |r: &Relation| -> Result<Relation, JeddError> {
        r.rename(f.obj, f.baseobj)?
            .with_assignment(&[(f.baseobj, f.h2)])
    };
    let PtState {
        pt,
        field_pt,
        cg,
        edges,
        site_types,
        pt_seen,
    } = st;

    fp.begin_round()?;

    // --- 1. Copy propagation to a local fixpoint (semi-naive). ---
    // Seed: new edges against all of pt, plus all edges against Δpt;
    // afterwards only the fresh frontier needs propagating. Both
    // frontiers empty (the confirming final round) means no seeding
    // at all — an O(1) decision on the canonical node ids.
    let mut inner = Fixpoint::new(&f.u, "pointsto-copy");
    inner.begin_round()?;
    // When Δpt is all of pt (the first round), the Δpt term alone is
    // already `edges <> pt` in full and the Δedges term is redundant.
    let pt_delta_is_all = pt.delta().equals(pt.current())?;
    let mut changed = if edges.has_delta() || pt.has_delta() {
        let seed = inner.rule("seed", || {
            let combined = if edges.has_delta() && !pt_delta_is_all {
                // The two delta terms read only last round's state, so
                // they are independent: one kernel batch evaluates both
                // relational products concurrently.
                let parts = Relation::compose_batch(&[
                    ComposeJob {
                        left: edges.current(),
                        left_attrs: &[f.src],
                        right: pt.delta(),
                        right_attrs: &[f.var],
                    },
                    ComposeJob {
                        left: edges.delta(),
                        left_attrs: &[f.src],
                        right: pt.current(),
                        right_attrs: &[f.var],
                    },
                ])?;
                let [via_new_pt, via_new_edges]: [Relation; 2] =
                    parts.try_into().expect("two jobs in, two results out");
                via_new_edges.union(&via_new_pt)?
            } else {
                edges.current().compose(&[f.src], pt.delta(), &[f.var])?
            };
            combined
                .rename(f.dst, f.var)?
                .with_assignment(&[(f.var, f.v1)])
        })?;
        pt.absorb(&filter(seed)?)?
    } else {
        false
    };
    inner.end_round(&[pt]);
    while changed {
        inner.begin_round()?;
        // step(dst, obj) = ∃src. edges(dst, src) ∧ Δpt(src, obj)
        let step = inner.rule("step", || {
            edges
                .current()
                .compose(&[f.src], pt.delta(), &[f.var])?
                .rename(f.dst, f.var)?
                .with_assignment(&[(f.var, f.v1)])
        })?;
        changed = pt.absorb(&filter(step)?)?;
        inner.end_round(&[pt]);
    }

    // This round's pt growth for the store/load/call-graph rules: the
    // loads frontier carried in from the previous round plus whatever
    // copy propagation just derived.
    let pt_new = pt.current().minus(pt_seen)?;
    let pt_grew = !pt_new.is_empty();
    // Round one processes all of pt, so the delta terms alone already
    // cover everything (O(1) to detect: same schema, same canonical
    // root) and the full-side terms are redundant.
    let pt_new_is_all = pt_new.equals(pt.current())?;
    let pt_base_full = to_base(pt.current())?;
    let pt_base_new = if pt_new_is_all {
        pt_base_full.clone()
    } else {
        to_base(&pt_new)?
    };
    // Snapshot before the loads fire: the loads frontier belongs to
    // the *next* round's pt_new.
    *pt_seen = pt.current().clone();

    // --- 2. Stores: base.field = src, one term per body literal. ---
    if pt_grew {
        let st = fp.rule("stores", || {
            if pt_new_is_all {
                // Δ(base) resolved first, then the full src side.
                return f
                    .stores
                    .compose(&[f.base], &pt_base_new, &[f.var])?
                    .compose(&[f.src], pt.current(), &[f.var]);
            }
            // Two independent chains — Δ(base) then full src, and Δ(src)
            // then full base. Each two-compose chain is sequential, but
            // the chains only depend on last round's state, so each
            // *stage* is one concurrent kernel batch across both chains.
            let stage1 = Relation::compose_batch(&[
                ComposeJob {
                    left: &f.stores,
                    left_attrs: &[f.base],
                    right: &pt_base_new,
                    right_attrs: &[f.var],
                },
                ComposeJob {
                    left: &f.stores,
                    left_attrs: &[f.src],
                    right: &pt_new,
                    right_attrs: &[f.var],
                },
            ])?;
            let stage2 = Relation::compose_batch(&[
                ComposeJob {
                    left: &stage1[0],
                    left_attrs: &[f.src],
                    right: pt.current(),
                    right_attrs: &[f.var],
                },
                ComposeJob {
                    left: &stage1[1],
                    left_attrs: &[f.base],
                    right: &pt_base_full,
                    right_attrs: &[f.var],
                },
            ])?;
            stage2[0].union(&stage2[1])
        })?;
        field_pt.stage(&st)?;
    }
    field_pt.advance()?;

    // --- 3. Loads: dst = base.field, one term per body literal. ---
    let loads_changed = if pt_grew || field_pt.has_delta() {
        let ld = fp.rule("loads", || {
            let combined = if pt_new_is_all {
                f.loads
                    .compose(&[f.base], &pt_base_new, &[f.var])?
                    .compose(&[f.baseobj, f.field], field_pt.current(), &[f.baseobj, f.field])?
            } else {
                // As with stores: two independent chains, batched one
                // stage at a time so both relational products of a stage
                // share the kernel.
                let stage1 = Relation::compose_batch(&[
                    ComposeJob {
                        left: &f.loads,
                        left_attrs: &[f.base],
                        right: &pt_base_new,
                        right_attrs: &[f.var],
                    },
                    ComposeJob {
                        left: &f.loads,
                        left_attrs: &[f.field],
                        right: field_pt.delta(),
                        right_attrs: &[f.field],
                    },
                ])?;
                let stage2 = Relation::compose_batch(&[
                    ComposeJob {
                        left: &stage1[0],
                        left_attrs: &[f.baseobj, f.field],
                        right: field_pt.current(),
                        right_attrs: &[f.baseobj, f.field],
                    },
                    ComposeJob {
                        left: &stage1[1],
                        left_attrs: &[f.base, f.baseobj],
                        right: &pt_base_full,
                        right_attrs: &[f.var, f.baseobj],
                    },
                ])?;
                stage2[0].union(&stage2[1])?
            };
            combined
                .rename(f.dst, f.var)?
                .with_assignment(&[(f.var, f.v1)])
        })?;
        pt.absorb(&filter(ld)?)?
    } else {
        false
    };

    // --- 4. Call graph, driven by this round's pt growth. ---
    // The load frontier has not been copy-propagated yet, but the
    // naive driver resolves receivers from pt *including* this
    // round's loads, so the delta fed to vcr must too.
    let pt_for_cg = if loads_changed {
        pt_new.union(pt.delta())?
    } else {
        pt_new.clone()
    };
    match mode {
        CallGraphMode::OnTheFly if !pt_for_cg.is_empty() => {
            let st_new = fp.rule("site-types", || {
                // (site, type) = site_recv{var} <> Δpt{var} <> objtype{obj}
                f.site_recv
                    .compose(&[f.var], &pt_for_cg, &[f.var])?
                    .compose(&[f.obj], &f.objtype, &[f.obj])
            })?;
            site_types.stage(&st_new)?;
        }
        CallGraphMode::OnTheFly => {}
        CallGraphMode::AllTypes => {
            // Constant: every type at every site, staged once.
            if fp.rounds() == 0 {
                site_types
                    .stage(&Relation::full(&f.u, &[(f.site, f.c1), (f.ty, f.t1)])?)?;
            }
        }
    }
    site_types.advance()?;
    if site_types.has_delta() {
        // Resolution is pointwise in (site, type), so resolving only
        // the frontier and accumulating unions is exact.
        let resolved = fp.rule("resolve", || {
            let r = vcr::resolve(f, site_types.delta());
            f.u.set_site("pointsto");
            r
        })?;
        cg.stage(&resolved)?;
    }
    cg.advance()?;

    // --- 5. Interprocedural assignment edges from new call edges. ---
    if cg.has_delta() {
        let new_edges = fp.rule("call-edges", || {
            let dcg = cg.delta();
            // this-parameter: this(callee) := recv(site).
            let this_edges = dcg
                .join(&[f.method], &f.method_this, &[f.method])?
                .rename(f.var, f.dst)?
                .join(&[f.site], &f.site_recv, &[f.site])?
                .rename(f.var, f.src)?
                .project_onto(&[f.dst, f.src])?;
            // parameters: param(callee, i) := arg(site, i).
            let param_edges = dcg
                .join(&[f.method], &f.method_param, &[f.method])?
                .rename(f.var, f.dst)?
                .join(&[f.site, f.idx], &f.site_arg, &[f.site, f.idx])?
                .rename(f.var, f.src)?
                .project_onto(&[f.dst, f.src])?;
            // returns: ret(site) := retvar(callee).
            let ret_edges = dcg
                .join(&[f.method], &f.method_ret, &[f.method])?
                .rename(f.var, f.src)?
                .join(&[f.site], &f.site_ret, &[f.site])?
                .rename(f.var, f.dst)?
                .project_onto(&[f.dst, f.src])?;
            this_edges.union(&param_edges)?.union(&ret_edges)
        })?;
        edges.stage(&new_edges)?;
    }
    edges.advance()?;

    // Same termination condition as the naive driver's `done` check:
    // loads, call edges and assignment edges all quiesced this round.
    // (Δfield_pt and Δsite_types are excluded — their only consumers
    // already ran against them above.)
    let more = pt.has_delta() || cg.has_delta() || edges.has_delta();
    fp.end_round(&[pt, field_pt, cg, edges]);
    Ok(more)
}

/// The semi-naive driver: each round derives new tuples only from the
/// frontiers of the previous round. Bilinear rules split into one term
/// per body literal — `Δa ⊗ b_full ∪ a_full ⊗ Δb` — with the composes
/// associated so every intermediate stays delta-restricted. The round
/// structure mirrors [`analyze_naive`] exactly (copy propagation runs to a
/// local fixpoint inside each outer round), so the two strategies take the
/// same number of outer rounds and reach the same least fixpoint.
fn analyze_seminaive(
    f: &Facts,
    mode: CallGraphMode,
    allowed: Option<&Relation>,
) -> Result<PointsTo, JeddError> {
    f.u.set_site("pointsto");
    let mut st = pt_init(f, allowed)?;
    let mut fp = Fixpoint::new(&f.u, "pointsto");
    loop {
        let more = pt_round(f, mode, allowed, &mut st, &mut fp)?;
        if !more {
            let iterations = fp.rounds() as usize;
            return Ok(st.into_result(iterations));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline_sets;
    use crate::ir::{Call, Program};
    use crate::synth::Benchmark;

    /// v0 = new A (h0); v1 = v0; v1.f = v0; v2 = v1.f.
    fn store_load_program() -> Program {
        Program {
            types: 2,
            sigs: 1,
            methods: 1,
            fields: 1,
            vars: 3,
            allocs: 1,
            call_sites: 0,
            extend: vec![(1, 0)],
            declares: vec![(1, 0, 0)],
            alloc_type: vec![(0, 1)],
            news: vec![(0, 0, 0)],
            assigns: vec![(0, 1, 0)],
            loads: vec![(0, 2, 1, 0)],
            stores: vec![(0, 1, 0, 0)],
            method_this: vec![(0, 0)],
            entry_points: vec![0],
            ..Program::default()
        }
    }

    #[test]
    fn store_then_load_flows() {
        let p = store_load_program();
        let f = Facts::load(&p).unwrap();
        let r = analyze(&f, CallGraphMode::OnTheFly).unwrap();
        // v0 -> h0 (new), v1 -> h0 (copy), v2 -> h0 (load of stored).
        assert!(r.pt.contains(&[0, 0]));
        assert!(r.pt.contains(&[1, 0]));
        assert!(r.pt.contains(&[2, 0]));
        assert_eq!(r.pt.size(), 3);
        // fieldPt: (h0, f0, h0).
        assert_eq!(r.field_pt.size(), 1);
        assert!(r.field_pt.contains(&[0, 0, 0]));
    }

    /// A virtual call whose resolution creates the flow: caller passes an
    /// object to the callee's this-parameter.
    fn call_program() -> Program {
        // Types: Object(0), A(1). A declares sig0 via m1. Caller m0.
        // m0: v0 = new A (h0); v0.sig0() [site 0, recv v0]
        // m1: this = v1. No body.
        Program {
            types: 2,
            sigs: 1,
            methods: 2,
            fields: 1,
            vars: 2,
            allocs: 1,
            call_sites: 1,
            extend: vec![(1, 0)],
            declares: vec![(1, 0, 1)],
            alloc_type: vec![(0, 1)],
            news: vec![(0, 0, 0)],
            method_this: vec![(1, 1)],
            calls: vec![Call {
                caller: 0,
                site: 0,
                recv: 0,
                sig: 0,
                args: vec![],
                ret: None,
            }],
            entry_points: vec![0],
            ..Program::default()
        }
    }

    #[test]
    fn call_graph_feeds_this_parameter() {
        let p = call_program();
        let f = Facts::load(&p).unwrap();
        let r = analyze(&f, CallGraphMode::OnTheFly).unwrap();
        // The call resolves to m1 and h0 flows into m1's this (v1).
        // cg column order is (method, site).
        assert!(r.cg.contains(&[1, 0]), "site 0 -> m1");
        assert!(r.pt.contains(&[1, 0]), "this of m1 points to h0");
    }

    #[test]
    fn matches_set_baseline_on_benchmarks() {
        for b in [Benchmark::Tiny, Benchmark::Compress] {
            let p = b.generate();
            let f = Facts::load(&p).unwrap();
            let bdd = analyze(&f, CallGraphMode::OnTheFly).unwrap();
            let sets = baseline_sets::points_to(&p);
            let got: std::collections::BTreeSet<(u64, u64)> = bdd
                .pt
                .tuples()
                .into_iter()
                .map(|t| (t[0], t[1]))
                .collect();
            let expect: std::collections::BTreeSet<(u64, u64)> = sets
                .pt
                .iter()
                .map(|&(v, o)| (v as u64, o as u64))
                .collect();
            assert_eq!(got, expect, "pt mismatch on {}", b.name());
            // cg column order is (method, site); normalise to (site, method).
            let got_cg: std::collections::BTreeSet<(u64, u64)> = bdd
                .cg
                .tuples()
                .into_iter()
                .map(|t| (t[1], t[0]))
                .collect();
            let expect_cg: std::collections::BTreeSet<(u64, u64)> = sets
                .cg
                .iter()
                .map(|&(s, m)| (s as u64, m as u64))
                .collect();
            assert_eq!(got_cg, expect_cg, "cg mismatch on {}", b.name());
        }
    }

    #[test]
    fn all_types_mode_over_approximates() {
        let p = Benchmark::Tiny.generate();
        let f = Facts::load(&p).unwrap();
        let precise = analyze(&f, CallGraphMode::OnTheFly).unwrap();
        let f2 = Facts::load(&p).unwrap();
        let cha = analyze(&f2, CallGraphMode::AllTypes).unwrap();
        // Every precise edge is also a CHA edge.
        for t in precise.cg.tuples() {
            assert!(
                cha.cg.contains(&t),
                "CHA must include on-the-fly edge {t:?}"
            );
        }
        assert!(cha.cg.size() >= precise.cg.size());
        assert!(cha.pt.size() >= precise.pt.size());
    }
}

#[cfg(test)]
mod strategy_tests {
    use super::*;
    use crate::facts::Facts;
    use crate::hierarchy;
    use crate::synth::Benchmark;

    /// The delta engine must be a pure evaluation-order change: on the
    /// same universe, naive and semi-naive runs must produce *the same
    /// canonical BDD nodes* for every result relation (`equals` on
    /// identical schemas is a node-id comparison), in no more rounds.
    #[test]
    fn seminaive_is_bit_identical_to_naive_across_benchmarks_and_modes() {
        for b in [Benchmark::Tiny, Benchmark::Compress, Benchmark::Javac] {
            let p = b.generate();
            for mode in [CallGraphMode::OnTheFly, CallGraphMode::AllTypes] {
                let f = Facts::load(&p).unwrap();
                let naive = analyze_with(&f, mode, Strategy::Naive).unwrap();
                let semi = analyze_with(&f, mode, Strategy::SemiNaive).unwrap();
                let ctx = format!("{} / {mode:?}", b.name());
                assert!(semi.pt.equals(&naive.pt).unwrap(), "pt differs: {ctx}");
                assert!(
                    semi.field_pt.equals(&naive.field_pt).unwrap(),
                    "field_pt differs: {ctx}"
                );
                assert!(semi.cg.equals(&naive.cg).unwrap(), "cg differs: {ctx}");
                assert!(semi.iterations >= 1, "no rounds ran: {ctx}");
                assert!(
                    semi.iterations <= naive.iterations,
                    "semi-naive took {} rounds, naive {}: {ctx}",
                    semi.iterations,
                    naive.iterations
                );
            }
        }
    }

    #[test]
    fn typed_seminaive_is_bit_identical_to_naive() {
        let p = Benchmark::Compress.generate();
        let f = Facts::load(&p).unwrap();
        let h = hierarchy::compute(&f).unwrap();
        let naive =
            analyze_typed_with(&f, CallGraphMode::OnTheFly, &h.subtype_of, Strategy::Naive)
                .unwrap();
        let semi =
            analyze_typed_with(&f, CallGraphMode::OnTheFly, &h.subtype_of, Strategy::SemiNaive)
                .unwrap();
        assert!(semi.pt.equals(&naive.pt).unwrap());
        assert!(semi.field_pt.equals(&naive.field_pt).unwrap());
        assert!(semi.cg.equals(&naive.cg).unwrap());
    }

    /// The divergence guard degrades instead of panicking: a bound of
    /// zero rounds must surface as a governor-ladder `ResourceExhausted`.
    /// (Exercised through [`Fixpoint::with_max_rounds`]; the analysis
    /// itself uses the default bound.)
    #[test]
    fn divergence_bound_is_an_error_not_a_panic() {
        let p = Benchmark::Tiny.generate();
        let f = Facts::load(&p).unwrap();
        let mut fp = Fixpoint::new(&f.u, "pointsto").with_max_rounds(0);
        match fp.begin_round() {
            Err(JeddError::ResourceExhausted { op, .. }) => assert_eq!(op, "pointsto"),
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod typed_tests {
    use super::*;
    use crate::baseline_sets;
    use crate::hierarchy;
    use crate::synth::Benchmark;
    use crate::facts::Facts;
    use std::collections::BTreeSet;

    #[test]
    fn typed_matches_set_baseline() {
        for b in [Benchmark::Tiny, Benchmark::Compress] {
            let p = b.generate();
            let f = Facts::load(&p).unwrap();
            let h = hierarchy::compute(&f).unwrap();
            let typed = analyze_typed(&f, CallGraphMode::OnTheFly, &h.subtype_of).unwrap();
            let sets = baseline_sets::points_to_typed(&p);
            let got: BTreeSet<(u64, u64)> = typed
                .pt
                .tuples()
                .into_iter()
                .map(|t| (t[0], t[1]))
                .collect();
            let expect: BTreeSet<(u64, u64)> = sets
                .pt
                .iter()
                .map(|&(v, o)| (v as u64, o as u64))
                .collect();
            assert_eq!(got, expect, "typed pt mismatch on {}", b.name());
        }
    }

    #[test]
    fn typed_is_subset_of_untyped() {
        let p = Benchmark::Compress.generate();
        let f = Facts::load(&p).unwrap();
        let h = hierarchy::compute(&f).unwrap();
        let untyped = analyze(&f, CallGraphMode::OnTheFly).unwrap();
        let f2 = Facts::load(&p).unwrap();
        let h2 = hierarchy::compute(&f2).unwrap();
        let _ = h;
        let typed = analyze_typed(&f2, CallGraphMode::OnTheFly, &h2.subtype_of).unwrap();
        // Compare as tuple sets (separate universes).
        let t: BTreeSet<Vec<u64>> = typed.pt.tuples().into_iter().collect();
        let u: BTreeSet<Vec<u64>> = untyped.pt.tuples().into_iter().collect();
        assert!(t.is_subset(&u), "filtering must only remove pairs");
        assert!(t.len() < u.len(), "the filter should remove something");
        // Call graphs shrink too (or stay equal).
        let tc: BTreeSet<Vec<u64>> = typed.cg.tuples().into_iter().collect();
        let uc: BTreeSet<Vec<u64>> = untyped.cg.tuples().into_iter().collect();
        assert!(tc.is_subset(&uc));
    }
}
