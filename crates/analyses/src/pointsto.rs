//! The Points-to Analysis module (paper Fig. 2; algorithm of Berndl et
//! al., PLDI 2003 \[5\]): a flow-insensitive, field-sensitive, subset-based
//! points-to analysis over BDD relations, with an on-the-fly call graph
//! built through virtual call resolution — the "interrelated" part of the
//! paper's five analyses.

use crate::facts::Facts;
use crate::vcr;
use jedd_core::{JeddError, Relation};

/// How receiver types are determined for call-graph construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallGraphMode {
    /// Resolve receivers from the current points-to sets, iterating the
    /// two analyses to a mutual fixpoint (the paper's configuration).
    OnTheFly,
    /// Assume every type reaches every receiver (a CHA-like
    /// over-approximation); one pass, no iteration.
    AllTypes,
}

/// The result of the points-to analysis.
pub struct PointsTo {
    /// `(var, obj)` points-to pairs.
    pub pt: Relation,
    /// `(baseobj, field, obj)` field points-to pairs.
    pub field_pt: Relation,
    /// `(site, method)` call edges discovered.
    pub cg: Relation,
    /// Outer fixpoint iterations.
    pub iterations: usize,
}

/// Runs the analysis to fixpoint.
///
/// # Errors
///
/// Propagates relational-layer errors.
pub fn analyze(f: &Facts, mode: CallGraphMode) -> Result<PointsTo, JeddError> {
    analyze_impl(f, mode, None)
}

/// Runs the analysis with declared-type filtering: a variable may only
/// point to objects whose class is a subtype of the variable's declared
/// type. This consumes the Hierarchy module's `subtypeOf` closure — the
/// Fig. 2 arrow from Hierarchy into Points-to Analysis.
///
/// # Errors
///
/// Propagates relational-layer errors.
pub fn analyze_typed(
    f: &Facts,
    mode: CallGraphMode,
    subtype_of: &Relation,
) -> Result<PointsTo, JeddError> {
    // allowed(var, obj): the object's class is a subtype of the variable's
    // declared type.
    f.u.set_site("pointsto-filter");
    // (obj, ty) with ty renamed to subtype (already at a T domain).
    let obj_sub = f.objtype.rename(f.ty, f.subtype)?.with_assignment(&[(f.subtype, f.t1)])?;
    // (obj, supertype) = obj_sub{subtype} <> subtypeOf{subtype}
    let obj_sup = obj_sub.compose(&[f.subtype], subtype_of, &[f.subtype])?;
    // (obj, ty) at T2, matching var_type's type position.
    let obj_ok = obj_sup
        .rename(f.supertype, f.ty)?
        .with_assignment(&[(f.ty, f.t2)])?;
    // (var, obj) = var_type{ty} <> obj_ok{ty}
    let allowed = f.var_type.compose(&[f.ty], &obj_ok, &[f.ty])?;
    analyze_impl(f, mode, Some(&allowed))
}

fn analyze_impl(
    f: &Facts,
    mode: CallGraphMode,
    allowed: Option<&Relation>,
) -> Result<PointsTo, JeddError> {
    f.u.set_site("pointsto");
    let filter = |r: Relation| -> Result<Relation, JeddError> {
        match allowed {
            Some(a) => r.intersect(a),
            None => Ok(r),
        }
    };
    let mut pt = filter(f.news.clone())?;
    let mut field_pt = Relation::empty(
        &f.u,
        &[(f.baseobj, f.h2), (f.field, f.f1), (f.obj, f.h1)],
    )?;
    let mut cg = Relation::empty(&f.u, &[(f.site, f.c1), (f.method, f.m1)])?;
    let mut edges = f.assigns.clone();

    let mut iterations = 0usize;
    loop {
        iterations += 1;
        // --- 1. Copy propagation to a local fixpoint. ---
        loop {
            // step(dst, obj) = ∃src. edges(dst, src) ∧ pt(src, obj)
            let step = edges.compose(&[f.src], &pt, &[f.var])?;
            let step = step
                .rename(f.dst, f.var)?
                .with_assignment(&[(f.var, f.v1)])?;
            let next = filter(pt.union(&step)?)?;
            if next.equals(&pt)? {
                break;
            }
            pt = next;
        }

        // pt with the object moved aside and named baseobj, for matching
        // base variables of loads/stores.
        let pt_base = pt
            .rename(f.obj, f.baseobj)?
            .with_assignment(&[(f.baseobj, f.h2)])?;

        // --- 2. Stores: base.field = src. ---
        // (field, src, baseobj) = stores{base} <> pt_base{var}
        let st = f.stores.compose(&[f.base], &pt_base, &[f.var])?;
        // (field, baseobj, obj) = st{src} <> pt{var}
        let st = st.compose(&[f.src], &pt, &[f.var])?;
        field_pt = field_pt.union(&st)?;

        // --- 3. Loads: dst = base.field. ---
        // (dst, field, baseobj) = loads{base} <> pt_base{var}
        let ld = f.loads.compose(&[f.base], &pt_base, &[f.var])?;
        // (dst, obj) = ld{baseobj, field} <> field_pt{baseobj, field}
        let ld = ld.compose(&[f.baseobj, f.field], &field_pt, &[f.baseobj, f.field])?;
        let ld = ld.rename(f.dst, f.var)?.with_assignment(&[(f.var, f.v1)])?;
        let pt_next = filter(pt.union(&ld)?)?;

        // --- 4. Call graph. ---
        let site_types = match mode {
            CallGraphMode::OnTheFly => {
                // (site, obj) = site_recv{var} <> pt{var}
                let site_objs = f.site_recv.compose(&[f.var], &pt_next, &[f.var])?;
                // (site, type) = site_objs{obj} <> objtype{obj}
                site_objs.compose(&[f.obj], &f.objtype, &[f.obj])?
            }
            CallGraphMode::AllTypes => {
                Relation::full(&f.u, &[(f.site, f.c1), (f.ty, f.t1)])?
            }
        };
        let cg_next = vcr::resolve(f, &site_types)?;
        f.u.set_site("pointsto");

        // --- 5. Interprocedural assignment edges from call edges. ---
        // this-parameter: this(callee) := recv(site).
        let this_edges = cg_next
            .join(&[f.method], &f.method_this, &[f.method])?
            .rename(f.var, f.dst)?
            .join(&[f.site], &f.site_recv, &[f.site])?
            .rename(f.var, f.src)?
            .project_onto(&[f.dst, f.src])?;
        // parameters: param(callee, i) := arg(site, i).
        let param_edges = cg_next
            .join(&[f.method], &f.method_param, &[f.method])?
            .rename(f.var, f.dst)?
            .join(&[f.site, f.idx], &f.site_arg, &[f.site, f.idx])?
            .rename(f.var, f.src)?
            .project_onto(&[f.dst, f.src])?;
        // returns: ret(site) := retvar(callee).
        let ret_edges = cg_next
            .join(&[f.method], &f.method_ret, &[f.method])?
            .rename(f.var, f.src)?
            .join(&[f.site], &f.site_ret, &[f.site])?
            .rename(f.var, f.dst)?
            .project_onto(&[f.dst, f.src])?;
        let new_edges = this_edges.union(&param_edges)?.union(&ret_edges)?;
        let edges_next = edges.union(&new_edges)?;

        let done = pt_next.equals(&pt)?
            && cg_next.equals(&cg)?
            && edges_next.equals(&edges)?;
        pt = pt_next;
        cg = cg_next;
        edges = edges_next;
        if done {
            // One more propagation round ran with no change anywhere.
            return Ok(PointsTo {
                pt,
                field_pt,
                cg,
                iterations,
            });
        }
        assert!(iterations < 10_000, "points-to failed to converge");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline_sets;
    use crate::ir::{Call, Program};
    use crate::synth::Benchmark;

    /// v0 = new A (h0); v1 = v0; v1.f = v0; v2 = v1.f.
    fn store_load_program() -> Program {
        Program {
            types: 2,
            sigs: 1,
            methods: 1,
            fields: 1,
            vars: 3,
            allocs: 1,
            call_sites: 0,
            extend: vec![(1, 0)],
            declares: vec![(1, 0, 0)],
            alloc_type: vec![(0, 1)],
            news: vec![(0, 0, 0)],
            assigns: vec![(0, 1, 0)],
            loads: vec![(0, 2, 1, 0)],
            stores: vec![(0, 1, 0, 0)],
            method_this: vec![(0, 0)],
            entry_points: vec![0],
            ..Program::default()
        }
    }

    #[test]
    fn store_then_load_flows() {
        let p = store_load_program();
        let f = Facts::load(&p).unwrap();
        let r = analyze(&f, CallGraphMode::OnTheFly).unwrap();
        // v0 -> h0 (new), v1 -> h0 (copy), v2 -> h0 (load of stored).
        assert!(r.pt.contains(&[0, 0]));
        assert!(r.pt.contains(&[1, 0]));
        assert!(r.pt.contains(&[2, 0]));
        assert_eq!(r.pt.size(), 3);
        // fieldPt: (h0, f0, h0).
        assert_eq!(r.field_pt.size(), 1);
        assert!(r.field_pt.contains(&[0, 0, 0]));
    }

    /// A virtual call whose resolution creates the flow: caller passes an
    /// object to the callee's this-parameter.
    fn call_program() -> Program {
        // Types: Object(0), A(1). A declares sig0 via m1. Caller m0.
        // m0: v0 = new A (h0); v0.sig0() [site 0, recv v0]
        // m1: this = v1. No body.
        Program {
            types: 2,
            sigs: 1,
            methods: 2,
            fields: 1,
            vars: 2,
            allocs: 1,
            call_sites: 1,
            extend: vec![(1, 0)],
            declares: vec![(1, 0, 1)],
            alloc_type: vec![(0, 1)],
            news: vec![(0, 0, 0)],
            method_this: vec![(1, 1)],
            calls: vec![Call {
                caller: 0,
                site: 0,
                recv: 0,
                sig: 0,
                args: vec![],
                ret: None,
            }],
            entry_points: vec![0],
            ..Program::default()
        }
    }

    #[test]
    fn call_graph_feeds_this_parameter() {
        let p = call_program();
        let f = Facts::load(&p).unwrap();
        let r = analyze(&f, CallGraphMode::OnTheFly).unwrap();
        // The call resolves to m1 and h0 flows into m1's this (v1).
        // cg column order is (method, site).
        assert!(r.cg.contains(&[1, 0]), "site 0 -> m1");
        assert!(r.pt.contains(&[1, 0]), "this of m1 points to h0");
    }

    #[test]
    fn matches_set_baseline_on_benchmarks() {
        for b in [Benchmark::Tiny, Benchmark::Compress] {
            let p = b.generate();
            let f = Facts::load(&p).unwrap();
            let bdd = analyze(&f, CallGraphMode::OnTheFly).unwrap();
            let sets = baseline_sets::points_to(&p);
            let got: std::collections::BTreeSet<(u64, u64)> = bdd
                .pt
                .tuples()
                .into_iter()
                .map(|t| (t[0], t[1]))
                .collect();
            let expect: std::collections::BTreeSet<(u64, u64)> = sets
                .pt
                .iter()
                .map(|&(v, o)| (v as u64, o as u64))
                .collect();
            assert_eq!(got, expect, "pt mismatch on {}", b.name());
            // cg column order is (method, site); normalise to (site, method).
            let got_cg: std::collections::BTreeSet<(u64, u64)> = bdd
                .cg
                .tuples()
                .into_iter()
                .map(|t| (t[1], t[0]))
                .collect();
            let expect_cg: std::collections::BTreeSet<(u64, u64)> = sets
                .cg
                .iter()
                .map(|&(s, m)| (s as u64, m as u64))
                .collect();
            assert_eq!(got_cg, expect_cg, "cg mismatch on {}", b.name());
        }
    }

    #[test]
    fn all_types_mode_over_approximates() {
        let p = Benchmark::Tiny.generate();
        let f = Facts::load(&p).unwrap();
        let precise = analyze(&f, CallGraphMode::OnTheFly).unwrap();
        let f2 = Facts::load(&p).unwrap();
        let cha = analyze(&f2, CallGraphMode::AllTypes).unwrap();
        // Every precise edge is also a CHA edge.
        for t in precise.cg.tuples() {
            assert!(
                cha.cg.contains(&t),
                "CHA must include on-the-fly edge {t:?}"
            );
        }
        assert!(cha.cg.size() >= precise.cg.size());
        assert!(cha.pt.size() >= precise.pt.size());
    }
}

#[cfg(test)]
mod typed_tests {
    use super::*;
    use crate::baseline_sets;
    use crate::hierarchy;
    use crate::synth::Benchmark;
    use crate::facts::Facts;
    use std::collections::BTreeSet;

    #[test]
    fn typed_matches_set_baseline() {
        for b in [Benchmark::Tiny, Benchmark::Compress] {
            let p = b.generate();
            let f = Facts::load(&p).unwrap();
            let h = hierarchy::compute(&f).unwrap();
            let typed = analyze_typed(&f, CallGraphMode::OnTheFly, &h.subtype_of).unwrap();
            let sets = baseline_sets::points_to_typed(&p);
            let got: BTreeSet<(u64, u64)> = typed
                .pt
                .tuples()
                .into_iter()
                .map(|t| (t[0], t[1]))
                .collect();
            let expect: BTreeSet<(u64, u64)> = sets
                .pt
                .iter()
                .map(|&(v, o)| (v as u64, o as u64))
                .collect();
            assert_eq!(got, expect, "typed pt mismatch on {}", b.name());
        }
    }

    #[test]
    fn typed_is_subset_of_untyped() {
        let p = Benchmark::Compress.generate();
        let f = Facts::load(&p).unwrap();
        let h = hierarchy::compute(&f).unwrap();
        let untyped = analyze(&f, CallGraphMode::OnTheFly).unwrap();
        let f2 = Facts::load(&p).unwrap();
        let h2 = hierarchy::compute(&f2).unwrap();
        let _ = h;
        let typed = analyze_typed(&f2, CallGraphMode::OnTheFly, &h2.subtype_of).unwrap();
        // Compare as tuple sets (separate universes).
        let t: BTreeSet<Vec<u64>> = typed.pt.tuples().into_iter().collect();
        let u: BTreeSet<Vec<u64>> = untyped.pt.tuples().into_iter().collect();
        assert!(t.is_subset(&u), "filtering must only remove pairs");
        assert!(t.len() < u.len(), "the filter should remove something");
        // Call graphs shrink too (or stay equal).
        let tc: BTreeSet<Vec<u64>> = typed.cg.tuples().into_iter().collect();
        let uc: BTreeSet<Vec<u64>> = untyped.cg.tuples().into_iter().collect();
        assert!(tc.is_subset(&uc));
    }
}
