//! Checkpointed execution and crash resume of the five analyses.
//!
//! Each `*_checkpointed` entry point runs the same round bodies as the
//! plain semi-naive drivers (the step functions are shared, not copied),
//! but cuts a [`Checkpointer`] checkpoint at round boundaries per the
//! active [`jedd_store::CheckpointPolicy`]: every N completed rounds,
//! and — for budget exhaustion and cooperative cancellation — the last
//! good round-boundary state just before the error propagates. Each
//! `*_resume` entry point loads the newest valid checkpoint from a
//! directory, rebuilds the universe and [`Facts`], re-arms the governor
//! with a fresh [`Budget`], and continues the run from the recorded
//! round; a resumed run lands on a tuple-identical least fixpoint
//! because semi-naive evaluation is determined by the
//! (`current`, `delta`) pairs the checkpoint persists.
//!
//! A checkpoint stores the 19 base fact relations (`base.*`), the
//! analysis inputs (`input.*`) and the in-flight fixpoint state
//! (`state.*`) in one snapshot, plus the round counter, a phase scalar
//! and an auxiliary word in the log record. Checkpoints are cut only at
//! round boundaries, where every [`DeltaRel`] has nothing staged, so the
//! pair is the tracker's complete state ([`DeltaRel::from_parts`]).
//!
//! Snapshot encoding walks existing BDD nodes without materialising new
//! ones, so the on-failure checkpoint works even when the budget that
//! killed the round is still exhausted.

use crate::callgraph::{self, CallGraph};
use crate::facts::Facts;
use crate::hierarchy::{self, Hierarchy};
use crate::pointsto::{self, CallGraphMode, PointsTo, PtState};
use crate::sideeffect::{self, SideEffects};
use crate::vcr;
use jedd_core::{BddError, Budget, DeltaRel, Fixpoint, JeddError, Relation};
use jedd_store::{resume_latest_bdd, BddResumePoint, CheckpointMeta, Checkpointer, StoreError};
use std::fmt;
use std::path::Path;

/// An error from a checkpointed run: either the analysis itself failed,
/// or the checkpoint store did.
#[derive(Debug)]
pub enum PersistError {
    /// A relational-layer failure (including budget exhaustion and
    /// cancellation, which propagate after the on-failure checkpoint).
    Jedd(JeddError),
    /// A checkpoint store failure — I/O, corruption, or an injected
    /// crash ([`StoreError::Killed`]).
    Store(StoreError),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Jedd(e) => write!(f, "{e}"),
            PersistError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Jedd(e) => Some(e),
            PersistError::Store(e) => Some(e),
        }
    }
}

impl From<JeddError> for PersistError {
    fn from(e: JeddError) -> PersistError {
        PersistError::Jedd(e)
    }
}

impl From<StoreError> for PersistError {
    fn from(e: StoreError) -> PersistError {
        PersistError::Store(e)
    }
}

/// Whether the policy wants a last-good checkpoint for this failure:
/// exhaustion and cancellation are resumable conditions, anything else
/// is a bug to propagate uncheckpointed.
fn failure_checkpoint_due(cp: &Checkpointer, e: &JeddError) -> bool {
    match e {
        JeddError::ResourceExhausted { cause, .. } => {
            if matches!(cause, BddError::Cancelled) {
                cp.policy().on_cancel
            } else {
                cp.policy().on_exhausted
            }
        }
        _ => false,
    }
}

/// Commits one checkpoint: the base facts plus the given `input.*` and
/// `state.*` relations, under the analysis name and round counter.
fn cut(
    cp: &mut Checkpointer,
    f: &Facts,
    analysis: &'static str,
    round: u64,
    phase: u32,
    aux: u64,
    state: &[(&str, &Relation)],
) -> Result<(), StoreError> {
    let mut rels: Vec<(&str, &Relation)> = f.base_relations();
    rels.extend_from_slice(state);
    let meta = CheckpointMeta {
        analysis,
        round,
        phase,
        aux,
        rng: 0,
    };
    cp.checkpoint_bdd(&meta, &f.u, &rels)?;
    Ok(())
}

/// A relation restored by name, or [`JeddError::InvalidRestore`].
fn take_rel(rp: &BddResumePoint, name: &str) -> Result<Relation, JeddError> {
    rp.relation(name)
        .cloned()
        .ok_or_else(|| JeddError::InvalidRestore {
            detail: format!("checkpoint lacks relation {name}"),
        })
}

/// Rejects a checkpoint written by a different analysis.
fn expect_analysis(rp: &BddResumePoint, analysis: &str) -> Result<(), JeddError> {
    if rp.record.analysis == analysis {
        Ok(())
    } else {
        Err(JeddError::InvalidRestore {
            detail: format!(
                "checkpoint is for analysis {}, not {analysis}",
                rp.record.analysis
            ),
        })
    }
}

/// Reloads a checkpoint directory, verifies the analysis name, and
/// rebuilds the [`Facts`] with the governor re-armed to `budget`.
fn reopen(dir: &Path, analysis: &str, budget: Budget) -> Result<(BddResumePoint, Facts), PersistError> {
    let rp = resume_latest_bdd(dir)?;
    expect_analysis(&rp, analysis)?;
    let f = Facts::reattach(&rp.universe, &rp.relations)?;
    f.u.set_budget(budget);
    Ok((rp, f))
}

/// One single-`DeltaRel` transitive-closure loop (hierarchy, callgraph
/// reachability, each side-effect phase) under one checkpoint spec.
struct ClosureSpec<'a> {
    analysis: &'static str,
    phase: u32,
    rule: &'static str,
    /// Extra relations (inputs, earlier-phase results) persisted beside
    /// the closure state.
    extra: &'a [(&'a str, &'a Relation)],
}

fn cut_closure(
    cp: &mut Checkpointer,
    f: &Facts,
    spec: &ClosureSpec<'_>,
    state: &DeltaRel,
    round: u64,
) -> Result<(), StoreError> {
    let mut rels: Vec<(&str, &Relation)> = spec.extra.to_vec();
    rels.push(("state.current", state.current()));
    rels.push(("state.delta", state.delta()));
    cut(cp, f, spec.analysis, round, spec.phase, 0, &rels)
}

/// Drives `state` to its fixpoint with checkpoints. The round body is
/// exactly the plain semi-naive loop; a failed round leaves
/// `current`/`delta` at the previous round boundary ([`DeltaRel::stage`]
/// and [`DeltaRel::advance`] mutate them only on success), so the
/// in-place state *is* the last good state for the failure checkpoint.
fn drive_closure(
    f: &Facts,
    cp: &mut Checkpointer,
    spec: &ClosureSpec<'_>,
    state: &mut DeltaRel,
    fp: &mut Fixpoint,
    step: &dyn Fn(&Relation) -> Result<Relation, JeddError>,
) -> Result<(), PersistError> {
    while state.has_delta() {
        let res = (|| -> Result<(), JeddError> {
            fp.begin_round()?;
            let s = fp.rule(spec.rule, || step(state.delta()))?;
            state.absorb(&s)?;
            fp.end_round(&[&*state]);
            Ok(())
        })();
        match res {
            Ok(()) => {
                if cp.due_after_round(fp.rounds()) {
                    cut_closure(cp, f, spec, state, fp.rounds())?;
                }
            }
            Err(e) => {
                if failure_checkpoint_due(cp, &e) {
                    cut_closure(cp, f, spec, state, fp.rounds())?;
                }
                return Err(PersistError::Jedd(e));
            }
        }
    }
    Ok(())
}

// --- Hierarchy ---------------------------------------------------------

fn finish_hierarchy(
    f: &Facts,
    cp: &mut Checkpointer,
    closure: &mut DeltaRel,
    fp: &mut Fixpoint,
) -> Result<(), PersistError> {
    let spec = ClosureSpec {
        analysis: "hierarchy",
        phase: 0,
        rule: "hop",
        extra: &[],
    };
    drive_closure(f, cp, &spec, closure, fp, &|d| hierarchy::hop(f, d))
}

/// [`hierarchy::compute`] with checkpoints.
///
/// # Errors
///
/// Analysis and checkpoint-store failures ([`PersistError`]).
pub fn hierarchy_checkpointed(f: &Facts, cp: &mut Checkpointer) -> Result<Hierarchy, PersistError> {
    f.u.set_site("hierarchy");
    let mut closure = DeltaRel::new("subtype_of", hierarchy::initial(f)?);
    let mut fp = Fixpoint::new(&f.u, "hierarchy");
    finish_hierarchy(f, cp, &mut closure, &mut fp)?;
    Ok(Hierarchy {
        subtype_of: closure.into_current(),
    })
}

/// Resumes a [`hierarchy_checkpointed`] run from the newest valid
/// checkpoint in `dir` and drives it to completion.
///
/// # Errors
///
/// [`StoreError::NoCheckpoint`] when nothing resumable exists;
/// otherwise as [`hierarchy_checkpointed`].
pub fn hierarchy_resume(
    dir: &Path,
    budget: Budget,
    cp: &mut Checkpointer,
) -> Result<(Facts, Hierarchy), PersistError> {
    let (rp, f) = reopen(dir, "hierarchy", budget)?;
    f.u.set_site("hierarchy");
    let mut closure = DeltaRel::from_parts(
        "subtype_of",
        take_rel(&rp, "state.current")?,
        take_rel(&rp, "state.delta")?,
    )?;
    let mut fp = Fixpoint::new(&f.u, "hierarchy").with_start_round(rp.record.round);
    finish_hierarchy(&f, cp, &mut closure, &mut fp)?;
    Ok((
        f,
        Hierarchy {
            subtype_of: closure.into_current(),
        },
    ))
}

// --- Virtual call resolution -------------------------------------------

/// The Fig. 4 loop with checkpoints. Unlike the closure loops, `vcr`'s
/// round is pure — it returns the next `(to_resolve, answer)` pair
/// without mutating the old one — so the pre-round pair is the last good
/// state by construction.
fn finish_vcr(
    f: &Facts,
    cp: &mut Checkpointer,
    site_types: &Relation,
    to_resolve: &mut Relation,
    answer: &mut Relation,
    fp: &mut Fixpoint,
) -> Result<(), PersistError> {
    loop {
        // The plain loop always runs its first round (an empty worklist
        // still produces the empty answer); after that it stops as soon
        // as the worklist drains.
        if fp.rounds() > 0 && to_resolve.is_empty() {
            return Ok(());
        }
        let res = (|| -> Result<(), JeddError> {
            fp.begin_round()?;
            let (tr, ans) = vcr::round(f, to_resolve, answer)?;
            *to_resolve = tr;
            *answer = ans;
            fp.end_round(&[]);
            Ok(())
        })();
        let state = [
            ("input.site_types", site_types),
            ("state.to_resolve", &*to_resolve),
            ("state.answer", &*answer),
        ];
        match res {
            Ok(()) => {
                if cp.due_after_round(fp.rounds()) {
                    cut(cp, f, "vcr", fp.rounds(), 0, 0, &state)?;
                }
            }
            Err(e) => {
                if failure_checkpoint_due(cp, &e) {
                    cut(cp, f, "vcr", fp.rounds(), 0, 0, &state)?;
                }
                return Err(PersistError::Jedd(e));
            }
        }
    }
}

/// [`vcr::resolve`] with checkpoints.
///
/// # Errors
///
/// Analysis and checkpoint-store failures ([`PersistError`]).
pub fn vcr_checkpointed(
    f: &Facts,
    site_types: &Relation,
    cp: &mut Checkpointer,
) -> Result<Relation, PersistError> {
    f.u.set_site("vcr");
    let (mut to_resolve, mut answer) = vcr::init(f, site_types)?;
    let mut fp = Fixpoint::new(&f.u, "vcr");
    finish_vcr(f, cp, site_types, &mut to_resolve, &mut answer, &mut fp)?;
    Ok(answer)
}

/// Resumes a [`vcr_checkpointed`] run. Returns the rebuilt [`Facts`] and
/// the completed `(site, method)` answer.
///
/// # Errors
///
/// As [`hierarchy_resume`].
pub fn vcr_resume(
    dir: &Path,
    budget: Budget,
    cp: &mut Checkpointer,
) -> Result<(Facts, Relation), PersistError> {
    let (rp, f) = reopen(dir, "vcr", budget)?;
    f.u.set_site("vcr");
    let site_types = take_rel(&rp, "input.site_types")?;
    let mut to_resolve = take_rel(&rp, "state.to_resolve")?;
    let mut answer = take_rel(&rp, "state.answer")?;
    let mut fp = Fixpoint::new(&f.u, "vcr").with_start_round(rp.record.round);
    finish_vcr(&f, cp, &site_types, &mut to_resolve, &mut answer, &mut fp)?;
    Ok((f, answer))
}

// --- Call graph --------------------------------------------------------

fn finish_callgraph(
    f: &Facts,
    cp: &mut Checkpointer,
    site_targets: &Relation,
    edges: &Relation,
    reach: &mut DeltaRel,
    fp: &mut Fixpoint,
) -> Result<(), PersistError> {
    let extra = [
        ("input.site_targets", site_targets),
        ("input.edges", edges),
    ];
    let spec = ClosureSpec {
        analysis: "callgraph",
        phase: 0,
        rule: "callees",
        extra: &extra,
    };
    drive_closure(f, cp, &spec, reach, fp, &|d| callgraph::callees(f, edges, d))
}

/// [`callgraph::build`] with checkpoints.
///
/// # Errors
///
/// Analysis and checkpoint-store failures ([`PersistError`]).
pub fn callgraph_checkpointed(
    f: &Facts,
    site_targets: &Relation,
    cp: &mut Checkpointer,
) -> Result<CallGraph, PersistError> {
    f.u.set_site("callgraph");
    let edges = callgraph::derive_edges(f, site_targets)?;
    let mut reach = DeltaRel::new("reachable", f.entry.clone());
    let mut fp = Fixpoint::new(&f.u, "callgraph");
    finish_callgraph(f, cp, site_targets, &edges, &mut reach, &mut fp)?;
    Ok(CallGraph {
        site_targets: site_targets.clone(),
        edges,
        reachable: reach.into_current(),
    })
}

/// Resumes a [`callgraph_checkpointed`] run.
///
/// # Errors
///
/// As [`hierarchy_resume`].
pub fn callgraph_resume(
    dir: &Path,
    budget: Budget,
    cp: &mut Checkpointer,
) -> Result<(Facts, CallGraph), PersistError> {
    let (rp, f) = reopen(dir, "callgraph", budget)?;
    f.u.set_site("callgraph");
    let site_targets = take_rel(&rp, "input.site_targets")?;
    let edges = take_rel(&rp, "input.edges")?;
    let mut reach = DeltaRel::from_parts(
        "reachable",
        take_rel(&rp, "state.current")?,
        take_rel(&rp, "state.delta")?,
    )?;
    let mut fp = Fixpoint::new(&f.u, "callgraph").with_start_round(rp.record.round);
    finish_callgraph(&f, cp, &site_targets, &edges, &mut reach, &mut fp)?;
    Ok((
        f,
        CallGraph {
            site_targets,
            edges,
            reachable: reach.into_current(),
        },
    ))
}

// --- Side effects ------------------------------------------------------

/// The inputs and already-fixed relations a side-effect phase persists
/// beside its in-flight closure: phase 1 closes the reads, phase 2
/// closes the writes with the finished `reads_star` carried along.
struct SeCtx<'a> {
    pt: &'a Relation,
    edges: &'a Relation,
    reads: &'a Relation,
    writes: &'a Relation,
    reads_star: Option<&'a Relation>,
}

fn finish_sideeffect_phase(
    f: &Facts,
    cp: &mut Checkpointer,
    ctx: &SeCtx<'_>,
    phase: u32,
    star: &mut DeltaRel,
    fp: &mut Fixpoint,
) -> Result<(), PersistError> {
    let mut extra: Vec<(&str, &Relation)> = vec![
        ("input.pt", ctx.pt),
        ("input.edges", ctx.edges),
        ("state.reads", ctx.reads),
        ("state.writes", ctx.writes),
    ];
    if let Some(rs) = ctx.reads_star {
        extra.push(("state.reads_star", rs));
    }
    let spec = ClosureSpec {
        analysis: "sideeffect",
        phase,
        rule: "lift",
        extra: &extra,
    };
    drive_closure(f, cp, &spec, star, fp, &|d| {
        sideeffect::lift(f, ctx.edges, d)
    })
}

/// [`sideeffect::compute`] with checkpoints. The two transitive closures
/// run as phases 1 (reads) and 2 (writes) so a resume knows which one
/// was in flight.
///
/// # Errors
///
/// Analysis and checkpoint-store failures ([`PersistError`]).
pub fn sideeffect_checkpointed(
    f: &Facts,
    pt: &Relation,
    edges: &Relation,
    cp: &mut Checkpointer,
) -> Result<SideEffects, PersistError> {
    f.u.set_site("sideeffect");
    let (reads, writes) = sideeffect::direct_effects(f, pt)?;
    let ctx = SeCtx {
        pt,
        edges,
        reads: &reads,
        writes: &writes,
        reads_star: None,
    };
    let mut star = DeltaRel::new("rw_star", reads.clone());
    let mut fp = Fixpoint::new(&f.u, "sideeffect");
    finish_sideeffect_phase(f, cp, &ctx, 1, &mut star, &mut fp)?;
    let reads_star = star.into_current();

    let ctx = SeCtx {
        reads_star: Some(&reads_star),
        ..ctx
    };
    let mut star = DeltaRel::new("rw_star", writes.clone());
    let mut fp = Fixpoint::new(&f.u, "sideeffect");
    finish_sideeffect_phase(f, cp, &ctx, 2, &mut star, &mut fp)?;
    Ok(SideEffects {
        reads,
        writes,
        reads_star,
        writes_star: star.into_current(),
    })
}

/// Resumes a [`sideeffect_checkpointed`] run: finishes the interrupted
/// phase, then (when phase 1 was in flight) runs phase 2 in full.
///
/// # Errors
///
/// As [`hierarchy_resume`], plus [`JeddError::InvalidRestore`] for an
/// unknown phase scalar.
pub fn sideeffect_resume(
    dir: &Path,
    budget: Budget,
    cp: &mut Checkpointer,
) -> Result<(Facts, SideEffects), PersistError> {
    let (rp, f) = reopen(dir, "sideeffect", budget)?;
    f.u.set_site("sideeffect");
    let pt = take_rel(&rp, "input.pt")?;
    let edges = take_rel(&rp, "input.edges")?;
    let reads = take_rel(&rp, "state.reads")?;
    let writes = take_rel(&rp, "state.writes")?;
    let mut star = DeltaRel::from_parts(
        "rw_star",
        take_rel(&rp, "state.current")?,
        take_rel(&rp, "state.delta")?,
    )?;
    let reads_star = match rp.record.phase {
        1 => {
            let ctx = SeCtx {
                pt: &pt,
                edges: &edges,
                reads: &reads,
                writes: &writes,
                reads_star: None,
            };
            let mut fp = Fixpoint::new(&f.u, "sideeffect").with_start_round(rp.record.round);
            finish_sideeffect_phase(&f, cp, &ctx, 1, &mut star, &mut fp)?;
            let reads_star = star.into_current();
            star = DeltaRel::new("rw_star", writes.clone());
            let ctx = SeCtx {
                reads_star: Some(&reads_star),
                ..ctx
            };
            let mut fp = Fixpoint::new(&f.u, "sideeffect");
            finish_sideeffect_phase(&f, cp, &ctx, 2, &mut star, &mut fp)?;
            reads_star
        }
        2 => {
            let reads_star = take_rel(&rp, "state.reads_star")?;
            let ctx = SeCtx {
                pt: &pt,
                edges: &edges,
                reads: &reads,
                writes: &writes,
                reads_star: Some(&reads_star),
            };
            let mut fp = Fixpoint::new(&f.u, "sideeffect").with_start_round(rp.record.round);
            finish_sideeffect_phase(&f, cp, &ctx, 2, &mut star, &mut fp)?;
            reads_star
        }
        p => {
            return Err(JeddError::InvalidRestore {
                detail: format!("unknown sideeffect phase {p}"),
            }
            .into())
        }
    };
    Ok((
        f,
        SideEffects {
            reads,
            writes,
            reads_star,
            writes_star: star.into_current(),
        },
    ))
}

// --- Points-to ---------------------------------------------------------

/// `aux` word layout for points-to checkpoints.
const PT_AUX_ALL_TYPES: u64 = 1;
const PT_AUX_TYPED: u64 = 2;

fn pt_aux(mode: CallGraphMode, typed: bool) -> u64 {
    let mut aux = 0;
    if matches!(mode, CallGraphMode::AllTypes) {
        aux |= PT_AUX_ALL_TYPES;
    }
    if typed {
        aux |= PT_AUX_TYPED;
    }
    aux
}

/// Clones the full [`PtState`] at a round boundary — the last good state
/// for the failure checkpoint. Unlike the single-`DeltaRel` loops, a
/// points-to round mutates several trackers in sequence, so a failed
/// round can leave the in-place state past the boundary.
fn pt_state_rels(st: &PtState) -> Vec<(&'static str, Relation)> {
    vec![
        ("state.pt.current", st.pt.current().clone()),
        ("state.pt.delta", st.pt.delta().clone()),
        ("state.field_pt.current", st.field_pt.current().clone()),
        ("state.field_pt.delta", st.field_pt.delta().clone()),
        ("state.cg.current", st.cg.current().clone()),
        ("state.cg.delta", st.cg.delta().clone()),
        ("state.edges.current", st.edges.current().clone()),
        ("state.edges.delta", st.edges.delta().clone()),
        ("state.site_types.current", st.site_types.current().clone()),
        ("state.site_types.delta", st.site_types.delta().clone()),
        ("state.pt_seen", st.pt_seen.clone()),
    ]
}

fn cut_pt(
    cp: &mut Checkpointer,
    f: &Facts,
    aux: u64,
    allowed: Option<&Relation>,
    good: &(Vec<(&'static str, Relation)>, u64),
) -> Result<(), StoreError> {
    let mut rels: Vec<(&str, &Relation)> = good.0.iter().map(|(n, r)| (*n, r)).collect();
    if let Some(a) = allowed {
        rels.push(("input.allowed", a));
    }
    cut(cp, f, "pointsto", good.1, 0, aux, &rels)
}

/// Drives the points-to outer loop with checkpoints; returns the outer
/// iteration count at quiescence.
fn finish_pointsto(
    f: &Facts,
    cp: &mut Checkpointer,
    mode: CallGraphMode,
    allowed: Option<&Relation>,
    st: &mut PtState,
    fp: &mut Fixpoint,
) -> Result<usize, PersistError> {
    let aux = pt_aux(mode, allowed.is_some());
    let mut last_good = (pt_state_rels(st), fp.rounds());
    loop {
        // Same termination condition as [`pointsto::pt_round`] reports:
        // loads, call edges and assignment edges all quiesced. The first
        // round always runs (a fresh state starts with Δpt = pt).
        let more = st.pt.has_delta() || st.cg.has_delta() || st.edges.has_delta();
        if fp.rounds() > 0 && !more {
            return Ok(fp.rounds() as usize);
        }
        match pointsto::pt_round(f, mode, allowed, st, fp) {
            Ok(_) => {
                last_good = (pt_state_rels(st), fp.rounds());
                if cp.due_after_round(fp.rounds()) {
                    cut_pt(cp, f, aux, allowed, &last_good)?;
                }
            }
            Err(e) => {
                if failure_checkpoint_due(cp, &e) {
                    cut_pt(cp, f, aux, allowed, &last_good)?;
                }
                return Err(PersistError::Jedd(e));
            }
        }
    }
}

/// [`pointsto::analyze`] with checkpoints.
///
/// # Errors
///
/// Analysis and checkpoint-store failures ([`PersistError`]).
pub fn pointsto_checkpointed(
    f: &Facts,
    mode: CallGraphMode,
    cp: &mut Checkpointer,
) -> Result<PointsTo, PersistError> {
    f.u.set_site("pointsto");
    let mut st = pointsto::pt_init(f, None)?;
    let mut fp = Fixpoint::new(&f.u, "pointsto");
    let iterations = finish_pointsto(f, cp, mode, None, &mut st, &mut fp)?;
    Ok(st.into_result(iterations))
}

/// [`pointsto::analyze_typed`] with checkpoints: the declared-type
/// filter is computed once up front and persisted as `input.allowed`.
///
/// # Errors
///
/// Analysis and checkpoint-store failures ([`PersistError`]).
pub fn pointsto_checkpointed_typed(
    f: &Facts,
    mode: CallGraphMode,
    subtype_of: &Relation,
    cp: &mut Checkpointer,
) -> Result<PointsTo, PersistError> {
    let allowed = pointsto::typed_filter(f, subtype_of)?;
    f.u.set_site("pointsto");
    let mut st = pointsto::pt_init(f, Some(&allowed))?;
    let mut fp = Fixpoint::new(&f.u, "pointsto");
    let iterations = finish_pointsto(f, cp, mode, Some(&allowed), &mut st, &mut fp)?;
    Ok(st.into_result(iterations))
}

/// Resumes a [`pointsto_checkpointed`] (or `_typed`) run; the call-graph
/// mode and filter presence come back out of the record's `aux` word.
///
/// # Errors
///
/// As [`hierarchy_resume`].
pub fn pointsto_resume(
    dir: &Path,
    budget: Budget,
    cp: &mut Checkpointer,
) -> Result<(Facts, PointsTo), PersistError> {
    let (rp, f) = reopen(dir, "pointsto", budget)?;
    f.u.set_site("pointsto");
    let aux = rp.record.aux;
    let mode = if aux & PT_AUX_ALL_TYPES != 0 {
        CallGraphMode::AllTypes
    } else {
        CallGraphMode::OnTheFly
    };
    let allowed = if aux & PT_AUX_TYPED != 0 {
        Some(take_rel(&rp, "input.allowed")?)
    } else {
        None
    };
    let mut st = PtState {
        pt: DeltaRel::from_parts(
            "pt",
            take_rel(&rp, "state.pt.current")?,
            take_rel(&rp, "state.pt.delta")?,
        )?,
        field_pt: DeltaRel::from_parts(
            "field_pt",
            take_rel(&rp, "state.field_pt.current")?,
            take_rel(&rp, "state.field_pt.delta")?,
        )?,
        cg: DeltaRel::from_parts(
            "cg",
            take_rel(&rp, "state.cg.current")?,
            take_rel(&rp, "state.cg.delta")?,
        )?,
        edges: DeltaRel::from_parts(
            "edges",
            take_rel(&rp, "state.edges.current")?,
            take_rel(&rp, "state.edges.delta")?,
        )?,
        site_types: DeltaRel::from_parts(
            "site_types",
            take_rel(&rp, "state.site_types.current")?,
            take_rel(&rp, "state.site_types.delta")?,
        )?,
        pt_seen: take_rel(&rp, "state.pt_seen")?,
    };
    let mut fp = Fixpoint::new(&f.u, "pointsto").with_start_round(rp.record.round);
    let iterations = finish_pointsto(&f, cp, mode, allowed.as_ref(), &mut st, &mut fp)?;
    Ok((f, st.into_result(iterations)))
}

// ------------------------------------------------------- learned orders

/// The file a learned variable order for `analysis` is persisted under
/// inside a checkpoint/store directory.
pub fn order_record_path(dir: &Path, analysis: &str) -> std::path::PathBuf {
    dir.join(format!("{analysis}.order"))
}

/// Runs the offline order-search lab on the facts' manager — sifting
/// plus window-3 permutation plus profile-driven hot-window restarts —
/// and persists the resulting order as a [`jedd_store::OrderRecord`], so
/// later runs of the same analysis can warm-start via
/// [`load_learned_order`] + [`crate::facts::Facts::load_configured`] and
/// skip sifting entirely. Call it after the analysis has run, when the
/// arena holds the live result shapes the search should optimize for.
///
/// Returns the record and the `(before, after)` live decision-node
/// counts of the search. Under a chain-reduced backend the kernel is
/// order-static: the search degrades to a collection and the *initial*
/// order is what gets persisted.
///
/// # Errors
///
/// [`PersistError::Store`] when the record cannot be written.
pub fn learn_and_save_order(
    dir: &Path,
    analysis: &str,
    f: &Facts,
    restarts: usize,
    seed: u64,
) -> Result<(jedd_store::OrderRecord, (usize, usize)), PersistError> {
    let mgr = f.u.bdd_manager();
    let counts = mgr.order_search(restarts, seed);
    // The searched order covers scratch variables the analysis allocated
    // on demand; a fresh universe only has the named physical domains, so
    // persist the order projected onto the named prefix (the relative
    // order of named variables is what the search learned — scratch
    // domains are transient copies and re-sort themselves anywhere).
    let named = f.u.named_var_count() as u32;
    let level2var: Vec<u32> = mgr
        .current_order()
        .into_iter()
        .filter(|v| *v < named)
        .collect();
    let record = jedd_store::OrderRecord {
        analysis: analysis.to_string(),
        backend: f.u.backend(),
        level2var,
    };
    jedd_store::save_order_record(&order_record_path(dir, analysis), &record)?;
    Ok((record, counts))
}

/// Loads the learned order persisted for `analysis`, or `None` when no
/// record exists yet (the cold-start case).
///
/// # Errors
///
/// [`PersistError::Store`] when a record exists but is unreadable or
/// corrupt — corruption is surfaced, not silently treated as cold.
pub fn load_learned_order(
    dir: &Path,
    analysis: &str,
) -> Result<Option<jedd_store::OrderRecord>, PersistError> {
    let path = order_record_path(dir, analysis);
    if !path.exists() {
        return Ok(None);
    }
    Ok(Some(jedd_store::load_order_record(&path)?))
}
