//! The five analyses as mini-Jedd source programs.
//!
//! These are the artefacts the paper's Table 1 is computed from: the
//! relational code of each Fig. 2 module, compiled by jeddc. The Rust
//! modules of this crate are the "generated code" equivalents; the sources
//! here are the high-level programs, and the tests check that executing
//! them through [`jeddc::Executor`] produces the same answers as the Rust
//! and set-based implementations.
//!
//! The sources live under `crates/analyses/jedd-src/`.

/// Shared declarations: the domains, attributes, physical domains and
/// interface relations of the Soot-side fact base.
pub const PRELUDE: &str = include_str!("../jedd-src/prelude.jedd");
/// The Hierarchy module (subtype closure).
pub const HIERARCHY: &str = include_str!("../jedd-src/hierarchy.jedd");
/// The Virtual Call Resolution module (paper Fig. 4).
pub const VCR: &str = include_str!("../jedd-src/vcr.jedd");
/// The Points-to Analysis module (Berndl et al. style propagation).
pub const POINTSTO: &str = include_str!("../jedd-src/pointsto.jedd");
/// The Call Graph module.
pub const CALLGRAPH: &str = include_str!("../jedd-src/callgraph.jedd");
/// The Side-effect Analysis module.
pub const SIDEEFFECT: &str = include_str!("../jedd-src/sideeffect.jedd");

/// The per-module sources, named and ordered as in the paper's Table 1.
pub fn modules() -> Vec<(&'static str, String)> {
    vec![
        ("Virtual Call Resolution", format!("{PRELUDE}\n{VCR}")),
        ("Hierarchy", format!("{PRELUDE}\n{HIERARCHY}")),
        ("Points-to Analysis", format!("{PRELUDE}\n{POINTSTO}")),
        (
            "Side-effect Analysis",
            format!("{PRELUDE}\n{SIDEEFFECT}\n{CALLGRAPH}"),
        ),
        ("Call Graph", format!("{PRELUDE}\n{CALLGRAPH}")),
    ]
}

/// All five modules combined into one program (the paper's "All 5
/// combined" row).
pub fn combined() -> String {
    format!("{PRELUDE}\n{HIERARCHY}\n{VCR}\n{POINTSTO}\n{CALLGRAPH}\n{SIDEEFFECT}")
}

/// Non-comment, non-blank line counts of the five module sources — the
/// paper's §5 code-size comparison data.
pub fn loc_counts() -> Vec<(&'static str, usize)> {
    let count = |src: &str| {
        src.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with("//"))
            .count()
    };
    vec![
        ("prelude (interface declarations)", count(PRELUDE)),
        ("Hierarchy", count(HIERARCHY)),
        ("Virtual Call Resolution", count(VCR)),
        ("Points-to Analysis", count(POINTSTO)),
        ("Call Graph", count(CALLGRAPH)),
        ("Side-effect Analysis", count(SIDEEFFECT)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_module_compiles() {
        for (name, src) in modules() {
            let compiled = jeddc::compile(&src)
                .unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
            let st = compiled.assignment.stats;
            assert!(st.exprs > 0, "{name} has expressions");
            assert_eq!(compiled.assignment.auto_pins, 0, "{name} fully annotated");
        }
    }

    #[test]
    fn combined_compiles() {
        let compiled = jeddc::compile(&combined()).expect("combined program");
        let st = compiled.assignment.stats;
        assert!(st.exprs > 100, "combined program is large: {}", st.exprs);
        assert!(st.attrs > st.exprs);
    }

    #[test]
    fn loc_counts_nonzero() {
        for (name, n) in loc_counts() {
            assert!(n > 0, "{name}");
        }
    }
}
