//! The Side-effect Analysis module (paper Fig. 2): read and write sets of
//! `(object, field)` pairs per method, directly and transitively through
//! the call graph. This is the analysis whose Jedd version is 124 lines
//! against 803 lines of set-manipulating Java (paper §5).

use crate::facts::Facts;
use jedd_core::{DeltaRel, Fixpoint, JeddError, Relation, Strategy};

/// The computed side-effect relations, each `(method, baseobj, field)`.
pub struct SideEffects {
    /// Fields read directly by each method.
    pub reads: Relation,
    /// Fields written directly by each method.
    pub writes: Relation,
    /// Reads including those of transitive callees.
    pub reads_star: Relation,
    /// Writes including those of transitive callees.
    pub writes_star: Relation,
}

/// Computes direct and transitive side effects with the default
/// [`Strategy`] (semi-naive), given the points-to relation `pt`
/// (`(var, obj)`) and method-level call `edges` (`(caller, method)`).
///
/// # Errors
///
/// Propagates relational-layer errors.
pub fn compute(
    f: &Facts,
    pt: &Relation,
    edges: &Relation,
) -> Result<SideEffects, JeddError> {
    compute_with(f, pt, edges, Strategy::default())
}

/// [`compute`] under an explicit evaluation strategy.
///
/// # Errors
///
/// Propagates relational-layer errors.
pub fn compute_with(
    f: &Facts,
    pt: &Relation,
    edges: &Relation,
    strategy: Strategy,
) -> Result<SideEffects, JeddError> {
    f.u.set_site("sideeffect");
    let (reads, writes) = direct_effects(f, pt)?;
    let lift = |rw: &Relation| lift(f, edges, rw);

    // Transitive closure over the call graph: rw*(caller) ⊇ rw*(callee).
    let close = |direct: &Relation| -> Result<Relation, JeddError> {
        match strategy {
            Strategy::Naive => {
                let mut star = direct.clone();
                let mut fp = Fixpoint::new(&f.u, "sideeffect");
                loop {
                    fp.begin_round()?;
                    let step = lift(&star)?;
                    let next = star.union(&step)?;
                    let done = next.equals(&star)?;
                    star = next;
                    fp.end_round(&[]);
                    if done {
                        return Ok(star);
                    }
                }
            }
            Strategy::SemiNaive => {
                let mut star = DeltaRel::new("rw_star", direct.clone());
                let mut fp = Fixpoint::new(&f.u, "sideeffect");
                while star.has_delta() {
                    fp.begin_round()?;
                    let step = fp.rule("lift", || lift(star.delta()))?;
                    star.absorb(&step)?;
                    fp.end_round(&[&star]);
                }
                Ok(star.into_current())
            }
        }
    };
    let reads_star = close(&reads)?;
    let writes_star = close(&writes)?;
    Ok(SideEffects {
        reads,
        writes,
        reads_star,
        writes_star,
    })
}

/// Direct effects: resolve the base variable of each access through `pt`.
/// `load_in`/`store_in` are `(method, base, field)`. Returns
/// `(reads, writes)`. Shared by both strategies and the checkpointed
/// driver.
pub(crate) fn direct_effects(
    f: &Facts,
    pt: &Relation,
) -> Result<(Relation, Relation), JeddError> {
    let pt_base = pt
        .rename(f.obj, f.baseobj)?
        .with_assignment(&[(f.baseobj, f.h2)])?;
    let reads = f.load_in.compose(&[f.base], &pt_base, &[f.var])?;
    let writes = f.store_in.compose(&[f.base], &pt_base, &[f.var])?;
    Ok((reads, writes))
}

/// `(caller, baseobj, field) = edges{method} ∘ rw{method}`: effects of
/// callees lifted to their callers.
pub(crate) fn lift(f: &Facts, edges: &Relation, rw: &Relation) -> Result<Relation, JeddError> {
    edges
        .compose(&[f.method], rw, &[f.method])?
        .rename(f.caller, f.method)?
        .with_assignment(&[(f.method, f.m1)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;
    use crate::pointsto::{analyze, CallGraphMode};
    use crate::synth::Benchmark;
    use crate::{baseline_sets, facts::Facts};
    use std::collections::BTreeSet;

    fn as_set(r: &Relation) -> BTreeSet<(u64, u64, u64)> {
        r.tuples().into_iter().map(|t| (t[0], t[1], t[2])).collect()
    }

    #[test]
    fn matches_set_baseline() {
        let p = Benchmark::Tiny.generate();
        let f = Facts::load(&p).unwrap();
        let ptres = analyze(&f, CallGraphMode::OnTheFly).unwrap();
        let cg = callgraph::build(&f, &ptres.cg).unwrap();
        let se = compute(&f, &ptres.pt, &cg.edges).unwrap();

        let sets_pt = baseline_sets::points_to(&p);
        let sets_se = baseline_sets::side_effects(&p, &sets_pt);
        // Tuple order: (method, baseobj, field) — attribute ids sort as
        // method < field < baseobj? Verify via schema order below.
        // Relation tuples are in sorted-AttrId order: method, field,
        // baseobj (declaration order: method, field before baseobj? we
        // declared: method(5), field(7), baseobj(13)) — i.e. (method,
        // field, baseobj).
        let expect_reads: BTreeSet<(u64, u64, u64)> = sets_se
            .reads
            .iter()
            .map(|&(m, o, ff)| (m as u64, ff as u64, o as u64))
            .collect();
        assert_eq!(as_set(&se.reads), expect_reads);
        let expect_writes_star: BTreeSet<(u64, u64, u64)> = sets_se
            .writes_star
            .iter()
            .map(|&(m, o, ff)| (m as u64, ff as u64, o as u64))
            .collect();
        assert_eq!(as_set(&se.writes_star), expect_writes_star);
    }

    #[test]
    fn strategies_agree_bit_identically() {
        let p = Benchmark::Compress.generate();
        let f = Facts::load(&p).unwrap();
        let ptres = analyze(&f, CallGraphMode::OnTheFly).unwrap();
        let cg = callgraph::build(&f, &ptres.cg).unwrap();
        let naive = compute_with(&f, &ptres.pt, &cg.edges, Strategy::Naive).unwrap();
        let semi = compute_with(&f, &ptres.pt, &cg.edges, Strategy::SemiNaive).unwrap();
        assert!(semi.reads_star.equals(&naive.reads_star).unwrap());
        assert!(semi.writes_star.equals(&naive.writes_star).unwrap());
    }

    #[test]
    fn star_is_superset_of_direct() {
        let p = Benchmark::Compress.generate();
        let f = Facts::load(&p).unwrap();
        let ptres = analyze(&f, CallGraphMode::OnTheFly).unwrap();
        let cg = callgraph::build(&f, &ptres.cg).unwrap();
        let se = compute(&f, &ptres.pt, &cg.edges).unwrap();
        assert!(se.reads_star.size() >= se.reads.size());
        assert!(se.writes_star.size() >= se.writes.size());
        // Direct ⊆ star as relations.
        assert!(se
            .reads
            .minus(&se.reads_star)
            .unwrap()
            .is_empty());
    }
}
