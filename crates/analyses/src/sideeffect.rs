//! The Side-effect Analysis module (paper Fig. 2): read and write sets of
//! `(object, field)` pairs per method, directly and transitively through
//! the call graph. This is the analysis whose Jedd version is 124 lines
//! against 803 lines of set-manipulating Java (paper §5).

use crate::facts::Facts;
use jedd_core::{JeddError, Relation};

/// The computed side-effect relations, each `(method, baseobj, field)`.
pub struct SideEffects {
    /// Fields read directly by each method.
    pub reads: Relation,
    /// Fields written directly by each method.
    pub writes: Relation,
    /// Reads including those of transitive callees.
    pub reads_star: Relation,
    /// Writes including those of transitive callees.
    pub writes_star: Relation,
}

/// Computes direct and transitive side effects, given the points-to
/// relation `pt` (`(var, obj)`) and method-level call `edges`
/// (`(caller, method)`).
///
/// # Errors
///
/// Propagates relational-layer errors.
pub fn compute(
    f: &Facts,
    pt: &Relation,
    edges: &Relation,
) -> Result<SideEffects, JeddError> {
    f.u.set_site("sideeffect");
    // Direct effects: resolve the base variable of each access through pt.
    // load_in/store_in are (method, base, field).
    let pt_base = pt
        .rename(f.obj, f.baseobj)?
        .with_assignment(&[(f.baseobj, f.h2)])?;
    let reads = f.load_in.compose(&[f.base], &pt_base, &[f.var])?;
    let writes = f.store_in.compose(&[f.base], &pt_base, &[f.var])?;

    // Transitive closure over the call graph: rw*(caller) ⊇ rw*(callee).
    let close = |direct: &Relation| -> Result<Relation, JeddError> {
        let mut star = direct.clone();
        loop {
            // (caller, baseobj, field) = edges{method} ∘ star{method}
            let step = edges
                .compose(&[f.method], &star, &[f.method])?
                .rename(f.caller, f.method)?
                .with_assignment(&[(f.method, f.m1)])?;
            let next = star.union(&step)?;
            if next.equals(&star)? {
                return Ok(next);
            }
            star = next;
        }
    };
    let reads_star = close(&reads)?;
    let writes_star = close(&writes)?;
    Ok(SideEffects {
        reads,
        writes,
        reads_star,
        writes_star,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;
    use crate::pointsto::{analyze, CallGraphMode};
    use crate::synth::Benchmark;
    use crate::{baseline_sets, facts::Facts};
    use std::collections::BTreeSet;

    fn as_set(r: &Relation) -> BTreeSet<(u64, u64, u64)> {
        r.tuples().into_iter().map(|t| (t[0], t[1], t[2])).collect()
    }

    #[test]
    fn matches_set_baseline() {
        let p = Benchmark::Tiny.generate();
        let f = Facts::load(&p).unwrap();
        let ptres = analyze(&f, CallGraphMode::OnTheFly).unwrap();
        let cg = callgraph::build(&f, &ptres.cg).unwrap();
        let se = compute(&f, &ptres.pt, &cg.edges).unwrap();

        let sets_pt = baseline_sets::points_to(&p);
        let sets_se = baseline_sets::side_effects(&p, &sets_pt);
        // Tuple order: (method, baseobj, field) — attribute ids sort as
        // method < field < baseobj? Verify via schema order below.
        // Relation tuples are in sorted-AttrId order: method, field,
        // baseobj (declaration order: method, field before baseobj? we
        // declared: method(5), field(7), baseobj(13)) — i.e. (method,
        // field, baseobj).
        let expect_reads: BTreeSet<(u64, u64, u64)> = sets_se
            .reads
            .iter()
            .map(|&(m, o, ff)| (m as u64, ff as u64, o as u64))
            .collect();
        assert_eq!(as_set(&se.reads), expect_reads);
        let expect_writes_star: BTreeSet<(u64, u64, u64)> = sets_se
            .writes_star
            .iter()
            .map(|&(m, o, ff)| (m as u64, ff as u64, o as u64))
            .collect();
        assert_eq!(as_set(&se.writes_star), expect_writes_star);
    }

    #[test]
    fn star_is_superset_of_direct() {
        let p = Benchmark::Compress.generate();
        let f = Facts::load(&p).unwrap();
        let ptres = analyze(&f, CallGraphMode::OnTheFly).unwrap();
        let cg = callgraph::build(&f, &ptres.cg).unwrap();
        let se = compute(&f, &ptres.pt, &cg.edges).unwrap();
        assert!(se.reads_star.size() >= se.reads.size());
        assert!(se.writes_star.size() >= se.writes.size());
        // Direct ⊆ star as relations.
        assert!(se
            .reads
            .minus(&se.reads_star)
            .unwrap()
            .is_empty());
    }
}
