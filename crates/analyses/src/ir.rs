//! A mini Java-like intermediate representation.
//!
//! The paper's analyses run inside Soot over real Java bytecode; this IR
//! is the fact base those analyses consume: a class hierarchy, method
//! declarations, and the pointer-relevant statements (allocations, copies,
//! field loads/stores, virtual calls). The synthetic generator
//! ([`crate::synth`]) produces instances at benchmark scales.

/// A virtual call site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Call {
    /// The calling method.
    pub caller: u32,
    /// Unique call-site id.
    pub site: u32,
    /// The receiver variable.
    pub recv: u32,
    /// The invoked signature.
    pub sig: u32,
    /// Argument variables, by parameter position.
    pub args: Vec<u32>,
    /// Variable receiving the return value, if any.
    pub ret: Option<u32>,
}

/// A whole program as relational facts.
///
/// All entity spaces are dense `0..n` index ranges: types, signatures,
/// methods, fields, variables, allocation sites, call sites. Type `0` is
/// the root of the hierarchy (`java.lang.Object`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    /// Number of class types. Type 0 is the hierarchy root.
    pub types: usize,
    /// Number of method signatures.
    pub sigs: usize,
    /// Number of concrete methods.
    pub methods: usize,
    /// Number of instance fields.
    pub fields: usize,
    /// Number of pointer variables.
    pub vars: usize,
    /// Number of allocation sites.
    pub allocs: usize,
    /// Number of call sites.
    pub call_sites: usize,

    /// Immediate-superclass pairs `(subtype, supertype)`.
    pub extend: Vec<(u32, u32)>,
    /// `(type, signature, method)` — the class *declares* (implements) the
    /// signature with the given concrete method (paper Fig. 3's
    /// `implementsMethod`).
    pub declares: Vec<(u32, u32, u32)>,
    /// `(alloc site, type allocated)`.
    pub alloc_type: Vec<(u32, u32)>,

    /// `(method, var, alloc)` — `v = new T()`.
    pub news: Vec<(u32, u32, u32)>,
    /// `(method, dst, src)` — `dst = src`.
    pub assigns: Vec<(u32, u32, u32)>,
    /// `(method, dst, base, field)` — `dst = base.field`.
    pub loads: Vec<(u32, u32, u32, u32)>,
    /// `(method, base, field, src)` — `base.field = src`.
    pub stores: Vec<(u32, u32, u32, u32)>,
    /// Virtual call sites.
    pub calls: Vec<Call>,

    /// `(method, this-variable)`.
    pub method_this: Vec<(u32, u32)>,
    /// `(method, param index, variable)`.
    pub method_params: Vec<(u32, u32, u32)>,
    /// `(method, return variable)`.
    pub method_ret: Vec<(u32, u32)>,
    /// Entry-point methods (mains, clinits).
    pub entry_points: Vec<u32>,
    /// `(variable, declared type)` — used by the type-filtered points-to
    /// variant; variables without an entry behave as if declared at the
    /// hierarchy root.
    pub var_type: Vec<(u32, u32)>,
}

impl Program {
    /// Basic well-formedness checks; used by tests and asserted by the
    /// generator.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated invariant.
    pub fn validate(&self) {
        for &(s, t) in &self.extend {
            assert!((s as usize) < self.types && (t as usize) < self.types);
            assert_ne!(s, 0, "the root type extends nothing");
            assert!(s > t, "supertypes are created before subtypes");
        }
        for &(t, s, m) in &self.declares {
            assert!((t as usize) < self.types);
            assert!((s as usize) < self.sigs);
            assert!((m as usize) < self.methods);
        }
        for &(a, t) in &self.alloc_type {
            assert!((a as usize) < self.allocs && (t as usize) < self.types);
        }
        for &(m, v, a) in &self.news {
            assert!((m as usize) < self.methods);
            assert!((v as usize) < self.vars && (a as usize) < self.allocs);
        }
        for &(m, d, s) in &self.assigns {
            assert!((m as usize) < self.methods);
            assert!((d as usize) < self.vars && (s as usize) < self.vars);
        }
        for &(m, d, b, f) in &self.loads {
            assert!((m as usize) < self.methods && (d as usize) < self.vars);
            assert!((b as usize) < self.vars && (f as usize) < self.fields);
        }
        for &(m, b, f, s) in &self.stores {
            assert!((m as usize) < self.methods && (b as usize) < self.vars);
            assert!((s as usize) < self.vars && (f as usize) < self.fields);
        }
        for c in &self.calls {
            assert!((c.caller as usize) < self.methods);
            assert!((c.site as usize) < self.call_sites);
            assert!((c.recv as usize) < self.vars);
            assert!((c.sig as usize) < self.sigs);
            for &a in &c.args {
                assert!((a as usize) < self.vars);
            }
            if let Some(r) = c.ret {
                assert!((r as usize) < self.vars);
            }
        }
        for &m in &self.entry_points {
            assert!((m as usize) < self.methods);
        }
        for &(v, t) in &self.var_type {
            assert!((v as usize) < self.vars && (t as usize) < self.types);
        }
    }

    /// The immediate supertype of `t`, if any.
    pub fn supertype(&self, t: u32) -> Option<u32> {
        self.extend.iter().find(|&&(s, _)| s == t).map(|&(_, sup)| sup)
    }

    /// All supertypes of `t` including itself, walking to the root.
    pub fn supertype_chain(&self, t: u32) -> Vec<u32> {
        let mut out = vec![t];
        let mut cur = t;
        while let Some(sup) = self.supertype(cur) {
            out.push(sup);
            cur = sup;
        }
        out
    }

    /// Resolves a virtual dispatch: the method found by searching for
    /// `sig` from `t` up the hierarchy (reference implementation of the
    /// Fig. 4 algorithm, used as ground truth in tests).
    pub fn dispatch(&self, t: u32, sig: u32) -> Option<u32> {
        for ty in self.supertype_chain(t) {
            if let Some(&(_, _, m)) = self
                .declares
                .iter()
                .find(|&&(dt, ds, _)| dt == ty && ds == sig)
            {
                return Some(m);
            }
        }
        None
    }

    /// A one-line summary of the program's size.
    pub fn summary(&self) -> String {
        format!(
            "{} types, {} sigs, {} methods, {} fields, {} vars, {} allocs, \
             {} stmts, {} calls",
            self.types,
            self.sigs,
            self.methods,
            self.fields,
            self.vars,
            self.allocs,
            self.news.len() + self.assigns.len() + self.loads.len() + self.stores.len(),
            self.calls.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Program {
        // Object(0) <- A(1) <- B(2); sig foo; A.foo = m0, B.foo = m1.
        Program {
            types: 3,
            sigs: 1,
            methods: 2,
            fields: 1,
            vars: 2,
            allocs: 1,
            call_sites: 1,
            extend: vec![(1, 0), (2, 1)],
            declares: vec![(1, 0, 0), (2, 0, 1)],
            alloc_type: vec![(0, 2)],
            news: vec![(0, 0, 0)],
            assigns: vec![(0, 1, 0)],
            loads: vec![],
            stores: vec![],
            calls: vec![Call {
                caller: 0,
                site: 0,
                recv: 1,
                sig: 0,
                args: vec![],
                ret: None,
            }],
            method_this: vec![(0, 0), (1, 1)],
            method_params: vec![],
            method_ret: vec![],
            entry_points: vec![0],
            var_type: vec![],
        }
    }

    #[test]
    fn validates() {
        tiny().validate();
    }

    #[test]
    fn supertype_chain_reaches_root() {
        let p = tiny();
        assert_eq!(p.supertype_chain(2), vec![2, 1, 0]);
        assert_eq!(p.supertype_chain(0), vec![0]);
    }

    #[test]
    fn dispatch_walks_up() {
        let p = tiny();
        assert_eq!(p.dispatch(2, 0), Some(1), "B.foo overrides");
        assert_eq!(p.dispatch(1, 0), Some(0), "A.foo");
        assert_eq!(p.dispatch(0, 0), None, "Object declares nothing");
    }

    #[test]
    fn summary_mentions_sizes() {
        let s = tiny().summary();
        assert!(s.contains("3 types"));
        assert!(s.contains("1 calls"));
    }
}
