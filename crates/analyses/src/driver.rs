//! Whole-program drivers: run the five analyses together, either through
//! the Rust relational implementations or through the mini-Jedd sources
//! executed by `jeddc` — the full system of the paper, end to end.

use crate::facts::Facts;
use crate::ir::Program;
use crate::{baseline_sets, callgraph, hierarchy, jedd_src, pointsto, sideeffect};
use jedd_core::{BddError, Budget, JeddError, OpEvent, Relation};
use jeddc::{ExecError, Executor};
use std::collections::BTreeSet;

/// The combined results of the five analyses (Rust relational versions).
pub struct WholeProgram {
    /// The fact base and universe.
    pub facts: Facts,
    /// Hierarchy closure.
    pub hierarchy: hierarchy::Hierarchy,
    /// Points-to result (includes the call-site targets).
    pub points_to: pointsto::PointsTo,
    /// Call graph.
    pub call_graph: callgraph::CallGraph,
    /// Side effects.
    pub side_effects: sideeffect::SideEffects,
    /// Phases that exhausted the resource budget and were recomputed on
    /// the explicit-set fallback (empty when everything ran on BDDs).
    pub degraded_phases: Vec<&'static str>,
}

/// Runs all five analyses on a program.
///
/// # Errors
///
/// Propagates relational-layer errors.
pub fn run(p: &Program) -> Result<WholeProgram, JeddError> {
    run_with_budget(p, Budget::unlimited())
}

/// Runs all five analyses under a resource [`Budget`], degrading
/// gracefully: a phase that exhausts the budget — even after the BDD
/// manager's GC-and-reorder recovery ladder — is logged through the
/// profiler and recomputed on the [`baseline_sets`] explicit-set
/// implementation (with the budget lifted only while materialising the
/// fallback's result relations). The run still produces whole-program
/// results; [`WholeProgram::degraded_phases`] records which phases fell
/// back.
///
/// # Errors
///
/// Propagates relational-layer errors other than budget exhaustion;
/// cancellation ([`BddError::Cancelled`]) always aborts the run rather
/// than degrading.
pub fn run_with_budget(p: &Program, budget: Budget) -> Result<WholeProgram, JeddError> {
    let facts = Facts::load(p)?;
    facts.u.set_budget(budget);
    let mut degraded: Vec<&'static str> = Vec::new();
    // The set-based points-to result, computed at most once, shared by
    // every fallback that needs it.
    let mut sets_cache: Option<baseline_sets::SetPointsTo> = None;
    let sets = |cache: &mut Option<baseline_sets::SetPointsTo>| -> baseline_sets::SetPointsTo {
        cache.get_or_insert_with(|| baseline_sets::points_to(p)).clone()
    };

    let hierarchy = match hierarchy::compute(&facts) {
        Ok(h) => h,
        Err(e) if degradable(&e) => {
            record_degrade(&facts, "hierarchy", &e);
            degraded.push("hierarchy");
            lifted(&facts, || fallback_hierarchy(&facts, p))?
        }
        Err(e) => return Err(e),
    };
    let points_to = match pointsto::analyze(&facts, pointsto::CallGraphMode::OnTheFly) {
        Ok(r) => r,
        Err(e) if degradable(&e) => {
            record_degrade(&facts, "pointsto", &e);
            degraded.push("pointsto");
            let s = sets(&mut sets_cache);
            lifted(&facts, || fallback_points_to(&facts, &s))?
        }
        Err(e) => return Err(e),
    };
    let call_graph = match callgraph::build(&facts, &points_to.cg) {
        Ok(r) => r,
        Err(e) if degradable(&e) => {
            record_degrade(&facts, "callgraph", &e);
            degraded.push("callgraph");
            let s = sets(&mut sets_cache);
            lifted(&facts, || fallback_call_graph(&facts, p, &s.cg))?
        }
        Err(e) => return Err(e),
    };
    let side_effects = match sideeffect::compute(&facts, &points_to.pt, &call_graph.edges) {
        Ok(r) => r,
        Err(e) if degradable(&e) => {
            record_degrade(&facts, "sideeffect", &e);
            degraded.push("sideeffect");
            let s = sets(&mut sets_cache);
            lifted(&facts, || fallback_side_effects(&facts, p, &s))?
        }
        Err(e) => return Err(e),
    };
    Ok(WholeProgram {
        facts,
        hierarchy,
        points_to,
        call_graph,
        side_effects,
        degraded_phases: degraded,
    })
}

/// Budget exhaustion is recoverable; explicit cancellation is not, and
/// every non-budget error is a real failure.
fn degradable(e: &JeddError) -> bool {
    matches!(
        e,
        JeddError::ResourceExhausted { cause, .. } if !matches!(cause, BddError::Cancelled)
    )
}

/// Logs a fallback through the profiler, so a degraded phase shows up in
/// the same event stream as the operations that led to it.
fn record_degrade(facts: &Facts, phase: &'static str, e: &JeddError) {
    facts.u.profile(OpEvent {
        op: "degrade",
        site: format!("{phase}: {e}"),
        nanos: 0,
        operand_nodes: 0,
        result_nodes: 0,
        shape: None,
    });
}

/// Runs `f` with the budget lifted, restoring it afterwards: fallback
/// results must materialise even though the BDD path just ran out of
/// resources.
fn lifted<T>(facts: &Facts, f: impl FnOnce() -> Result<T, JeddError>) -> Result<T, JeddError> {
    let saved = facts.u.budget();
    facts.u.set_budget(Budget::unlimited());
    let r = f();
    facts.u.set_budget(saved);
    r
}

fn pairs_to_tuples(pairs: &BTreeSet<(u32, u32)>) -> Vec<Vec<u64>> {
    pairs
        .iter()
        .map(|&(a, b)| vec![a as u64, b as u64])
        .collect()
}

fn fallback_hierarchy(facts: &Facts, p: &Program) -> Result<hierarchy::Hierarchy, JeddError> {
    let tuples = pairs_to_tuples(&baseline_sets::hierarchy(p));
    let subtype_of = Relation::from_tuples(&facts.u, facts.extend.schema(), &tuples)?;
    Ok(hierarchy::Hierarchy { subtype_of })
}

fn fallback_points_to(
    facts: &Facts,
    sets: &baseline_sets::SetPointsTo,
) -> Result<pointsto::PointsTo, JeddError> {
    let pt = Relation::from_tuples(&facts.u, facts.news.schema(), &pairs_to_tuples(&sets.pt))?;
    let fp_tuples: Vec<Vec<u64>> = sets
        .field_pt
        .iter()
        .map(|&(bo, ff, o)| vec![bo as u64, ff as u64, o as u64])
        .collect();
    let field_pt = Relation::from_tuples(
        &facts.u,
        &[
            (facts.baseobj, facts.h2),
            (facts.field, facts.f1),
            (facts.obj, facts.h1),
        ],
        &fp_tuples,
    )?;
    let cg = Relation::from_tuples(
        &facts.u,
        &[(facts.site, facts.c1), (facts.method, facts.m1)],
        &pairs_to_tuples(&sets.cg),
    )?;
    Ok(pointsto::PointsTo {
        pt,
        field_pt,
        cg,
        iterations: 0,
    })
}

fn fallback_call_graph(
    facts: &Facts,
    p: &Program,
    cg: &BTreeSet<(u32, u32)>,
) -> Result<callgraph::CallGraph, JeddError> {
    let site_targets = Relation::from_tuples(
        &facts.u,
        &[(facts.site, facts.c1), (facts.method, facts.m1)],
        &pairs_to_tuples(cg),
    )?;
    // (caller, callee) method edges through the call-site map.
    let mut edge_set: BTreeSet<(u32, u32)> = BTreeSet::new();
    for &(site, m) in cg {
        if let Some(c) = p.calls.iter().find(|c| c.site == site) {
            edge_set.insert((c.caller, m));
        }
    }
    let edges = Relation::from_tuples(
        &facts.u,
        &[(facts.caller, facts.m2), (facts.method, facts.m1)],
        &pairs_to_tuples(&edge_set),
    )?;
    // Reachability closure from the entry points.
    let mut reach: BTreeSet<u32> = p.entry_points.iter().copied().collect();
    loop {
        let mut changed = false;
        for &(caller, callee) in &edge_set {
            if reach.contains(&caller) {
                changed |= reach.insert(callee);
            }
        }
        if !changed {
            break;
        }
    }
    let reach_tuples: Vec<Vec<u64>> = reach.iter().map(|&m| vec![m as u64]).collect();
    let reachable = Relation::from_tuples(&facts.u, facts.entry.schema(), &reach_tuples)?;
    Ok(callgraph::CallGraph {
        site_targets,
        edges,
        reachable,
    })
}

fn fallback_side_effects(
    facts: &Facts,
    p: &Program,
    sets: &baseline_sets::SetPointsTo,
) -> Result<sideeffect::SideEffects, JeddError> {
    let se = baseline_sets::side_effects(p, sets);
    let materialise = |set: &BTreeSet<(u32, u32, u32)>| -> Result<Relation, JeddError> {
        let tuples: Vec<Vec<u64>> = set
            .iter()
            .map(|&(m, o, ff)| vec![m as u64, o as u64, ff as u64])
            .collect();
        Relation::from_tuples(
            &facts.u,
            &[
                (facts.method, facts.m1),
                (facts.baseobj, facts.h1),
                (facts.field, facts.f1),
            ],
            &tuples,
        )
    };
    Ok(sideeffect::SideEffects {
        reads: materialise(&se.reads)?,
        writes: materialise(&se.writes)?,
        reads_star: materialise(&se.reads_star)?,
        writes_star: materialise(&se.writes_star)?,
    })
}

/// Runs the combined **mini-Jedd** program on `p` through the jeddc
/// executor: loads the fact relations, then iterates the module rules
/// (`ptInit`, then `ptStep`/`mkSiteTypes`/`vcr`/`cgBuild`/`cgParamEdges`
/// to mutual fixpoint, then `hierarchy` and `sideEffects`).
///
/// Returns the executor with all result relations populated.
///
/// # Errors
///
/// Returns compile or runtime errors from the jeddc pipeline.
pub fn run_jedd(p: &Program) -> Result<Executor, Box<dyn std::error::Error>> {
    run_jedd_impl(p, false)
}

/// Like [`run_jedd`], with declared-type filtering enabled (the `ptFilter`
/// rules of the points-to module, fed by the hierarchy closure).
///
/// # Errors
///
/// Same conditions as [`run_jedd`].
pub fn run_jedd_typed(p: &Program) -> Result<Executor, Box<dyn std::error::Error>> {
    run_jedd_impl(p, true)
}

fn run_jedd_impl(p: &Program, typed: bool) -> Result<Executor, Box<dyn std::error::Error>> {
    let compiled = jeddc::compile(&jedd_src::combined())?;
    let mut exec = Executor::new(&compiled)?;
    exec.bind_domain_size("Type", p.types.max(1) as u64)?;
    exec.bind_domain_size("Signature", p.sigs.max(1) as u64)?;
    exec.bind_domain_size("Method", p.methods.max(1) as u64)?;
    exec.bind_domain_size("Field", p.fields.max(1) as u64)?;
    exec.bind_domain_size("Var", p.vars.max(1) as u64)?;
    exec.bind_domain_size("Obj", p.allocs.max(1) as u64)?;
    exec.bind_domain_size("Site", p.call_sites.max(1) as u64)?;
    let max_idx = p
        .method_params
        .iter()
        .map(|&(_, i, _)| i + 1)
        .max()
        .unwrap_or(1);
    exec.bind_domain_size("ParamIdx", max_idx.max(1) as u64)?;

    let t2 = |v: &[(u32, u32)]| -> Vec<Vec<u64>> {
        v.iter().map(|&(a, b)| vec![a as u64, b as u64]).collect()
    };
    exec.set_input("extend", &t2(&p.extend))?;
    exec.set_input(
        "declaresMethod",
        &p.declares
            .iter()
            .map(|&(t, s, m)| vec![t as u64, s as u64, m as u64])
            .collect::<Vec<_>>(),
    )?;
    exec.set_input("objType", &t2(&p.alloc_type))?;
    exec.set_input(
        "news",
        &p.news
            .iter()
            .map(|&(_, v, a)| vec![v as u64, a as u64])
            .collect::<Vec<_>>(),
    )?;
    exec.set_input(
        "assigns",
        &p.assigns
            .iter()
            .map(|&(_, d, s)| vec![d as u64, s as u64])
            .collect::<Vec<_>>(),
    )?;
    exec.set_input(
        "loads",
        &p.loads
            .iter()
            .map(|&(_, d, b, f)| vec![d as u64, b as u64, f as u64])
            .collect::<Vec<_>>(),
    )?;
    exec.set_input(
        "stores",
        &p.stores
            .iter()
            .map(|&(_, b, f, s)| vec![b as u64, f as u64, s as u64])
            .collect::<Vec<_>>(),
    )?;
    exec.set_input(
        "siteCaller",
        &p.calls
            .iter()
            .map(|c| vec![c.site as u64, c.caller as u64])
            .collect::<Vec<_>>(),
    )?;
    exec.set_input(
        "siteRecv",
        &p.calls
            .iter()
            .map(|c| vec![c.site as u64, c.recv as u64])
            .collect::<Vec<_>>(),
    )?;
    exec.set_input(
        "siteSig",
        &p.calls
            .iter()
            .map(|c| vec![c.site as u64, c.sig as u64])
            .collect::<Vec<_>>(),
    )?;
    let mut args = Vec::new();
    for c in &p.calls {
        for (i, &a) in c.args.iter().enumerate() {
            args.push(vec![c.site as u64, i as u64, a as u64]);
        }
    }
    exec.set_input("siteArg", &args)?;
    exec.set_input(
        "siteRet",
        &p.calls
            .iter()
            .filter_map(|c| c.ret.map(|r| vec![c.site as u64, r as u64]))
            .collect::<Vec<_>>(),
    )?;
    exec.set_input("methodThis", &t2(&p.method_this))?;
    exec.set_input(
        "methodParam",
        &p.method_params
            .iter()
            .map(|&(m, i, v)| vec![m as u64, i as u64, v as u64])
            .collect::<Vec<_>>(),
    )?;
    exec.set_input("methodRet", &t2(&p.method_ret))?;
    exec.set_input(
        "entry",
        &p.entry_points
            .iter()
            .map(|&m| vec![m as u64])
            .collect::<Vec<_>>(),
    )?;
    exec.set_input(
        "loadIn",
        &p.loads
            .iter()
            .map(|&(m, _, b, f)| vec![m as u64, b as u64, f as u64])
            .collect::<Vec<_>>(),
    )?;
    exec.set_input(
        "storeIn",
        &p.stores
            .iter()
            .map(|&(m, b, f, _)| vec![m as u64, b as u64, f as u64])
            .collect::<Vec<_>>(),
    )?;
    exec.set_input(
        "typeIdentity",
        &(0..p.types as u64).map(|t| vec![t, t]).collect::<Vec<_>>(),
    )?;
    // Declared types; unlisted variables default to the root.
    let mut vt: Vec<Vec<u64>> = p
        .var_type
        .iter()
        .map(|&(v, t)| vec![v as u64, t as u64])
        .collect();
    let listed: std::collections::BTreeSet<u32> = p.var_type.iter().map(|&(v, _)| v).collect();
    for v in 0..p.vars as u32 {
        if !listed.contains(&v) {
            vt.push(vec![v as u64, 0]);
        }
    }
    exec.set_input("varType", &vt)?;

    // Run the modules: hierarchy once, then the points-to / call-graph
    // fixpoint, then side effects.
    exec.run("hierarchy")?;
    exec.run("ptInit")?;
    if typed {
        exec.run("ptFilterInit")?;
        exec.run("ptFilter")?;
    }
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let before = (
            exec.relation("pt")?.size(),
            exec.relation("edges")?.size(),
            exec.relation("siteTarget")?.size(),
        );
        if typed {
            exec.run("ptStepTyped")?;
        } else {
            exec.run("ptStep")?;
        }
        exec.run("mkSiteTypes")?;
        exec.run("vcr")?;
        exec.run("cgBuild")?;
        exec.run("cgParamEdges")?;
        let after = (
            exec.relation("pt")?.size(),
            exec.relation("edges")?.size(),
            exec.relation("siteTarget")?.size(),
        );
        if before == after {
            break;
        }
        if rounds > 1000 {
            return Err(Box::new(ExecError {
                message: "whole-program fixpoint failed to converge".into(),
            }));
        }
    }
    exec.run("sideEffects")?;
    Ok(exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline_sets;
    use crate::synth::Benchmark;
    use std::collections::BTreeSet;

    #[test]
    fn rust_driver_runs_all_five() {
        let p = Benchmark::Tiny.generate();
        let r = run(&p).unwrap();
        assert!(r.hierarchy.subtype_of.size() >= p.types as u64);
        assert!(r.points_to.pt.size() > 0);
        assert!(r.side_effects.reads_star.size() >= r.side_effects.reads.size());
        let _ = (&r.call_graph.reachable, &r.facts);
    }

    #[test]
    fn jedd_language_driver_matches_set_baseline() {
        let p = Benchmark::Tiny.generate();
        let exec = run_jedd(&p).expect("mini-Jedd whole-program run");
        let sets = baseline_sets::points_to(&p);

        // pt column order is (var, obj).
        let got_pt: BTreeSet<(u64, u64)> = exec
            .tuples("pt")
            .unwrap()
            .into_iter()
            .map(|t| (t[0], t[1]))
            .collect();
        let expect_pt: BTreeSet<(u64, u64)> = sets
            .pt
            .iter()
            .map(|&(v, o)| (v as u64, o as u64))
            .collect();
        assert_eq!(got_pt, expect_pt, "pt through the Jedd language");

        // siteTarget columns are (site, method) as declared.
        let got_cg: BTreeSet<(u64, u64)> = exec
            .tuples("siteTarget")
            .unwrap()
            .into_iter()
            .map(|t| (t[0], t[1]))
            .collect();
        let expect_cg: BTreeSet<(u64, u64)> = sets
            .cg
            .iter()
            .map(|&(s, m)| (s as u64, m as u64))
            .collect();
        assert_eq!(got_cg, expect_cg, "call graph through the Jedd language");
    }

    #[test]
    fn jedd_language_hierarchy_matches() {
        let p = Benchmark::Tiny.generate();
        let exec = run_jedd(&p).unwrap();
        let expect = baseline_sets::hierarchy(&p);
        let got: BTreeSet<(u32, u32)> = exec
            .tuples("subtypeOf")
            .unwrap()
            .into_iter()
            .map(|t| (t[0] as u32, t[1] as u32))
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn jedd_language_side_effects_match() {
        let p = Benchmark::Tiny.generate();
        let exec = run_jedd(&p).unwrap();
        let sets_pt = baseline_sets::points_to(&p);
        let sets_se = baseline_sets::side_effects(&p, &sets_pt);
        // readsStar columns are (method, baseobj, field) as declared.
        let got: BTreeSet<(u32, u32, u32)> = exec
            .tuples("readsStar")
            .unwrap()
            .into_iter()
            .map(|t| (t[0] as u32, t[1] as u32, t[2] as u32))
            .collect();
        let expect: BTreeSet<(u32, u32, u32)> = sets_se.reads_star.iter().copied().collect();
        assert_eq!(got, expect, "transitive reads through the Jedd language");
    }
}

#[cfg(test)]
mod typed_driver_tests {
    use super::*;
    use crate::baseline_sets;
    use crate::synth::Benchmark;
    use std::collections::BTreeSet;

    #[test]
    fn jedd_language_typed_driver_matches_typed_baseline() {
        let p = Benchmark::Tiny.generate();
        let exec = run_jedd_typed(&p).expect("typed mini-Jedd run");
        let sets = baseline_sets::points_to_typed(&p);
        let got: BTreeSet<(u64, u64)> = exec
            .tuples("pt")
            .unwrap()
            .into_iter()
            .map(|t| (t[0], t[1]))
            .collect();
        let expect: BTreeSet<(u64, u64)> = sets
            .pt
            .iter()
            .map(|&(v, o)| (v as u64, o as u64))
            .collect();
        assert_eq!(got, expect, "typed pt through the Jedd language");
    }
}
