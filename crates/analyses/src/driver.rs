//! Whole-program drivers: run the five analyses together, either through
//! the Rust relational implementations or through the mini-Jedd sources
//! executed by `jeddc` — the full system of the paper, end to end.

use crate::facts::Facts;
use crate::ir::Program;
use crate::{callgraph, hierarchy, jedd_src, pointsto, sideeffect};
use jedd_core::JeddError;
use jeddc::{ExecError, Executor};

/// The combined results of the five analyses (Rust relational versions).
pub struct WholeProgram {
    /// The fact base and universe.
    pub facts: Facts,
    /// Hierarchy closure.
    pub hierarchy: hierarchy::Hierarchy,
    /// Points-to result (includes the call-site targets).
    pub points_to: pointsto::PointsTo,
    /// Call graph.
    pub call_graph: callgraph::CallGraph,
    /// Side effects.
    pub side_effects: sideeffect::SideEffects,
}

/// Runs all five analyses on a program.
///
/// # Errors
///
/// Propagates relational-layer errors.
pub fn run(p: &Program) -> Result<WholeProgram, JeddError> {
    let facts = Facts::load(p)?;
    let hierarchy = hierarchy::compute(&facts)?;
    let points_to = pointsto::analyze(&facts, pointsto::CallGraphMode::OnTheFly)?;
    let call_graph = callgraph::build(&facts, &points_to.cg)?;
    let side_effects = sideeffect::compute(&facts, &points_to.pt, &call_graph.edges)?;
    Ok(WholeProgram {
        facts,
        hierarchy,
        points_to,
        call_graph,
        side_effects,
    })
}

/// Runs the combined **mini-Jedd** program on `p` through the jeddc
/// executor: loads the fact relations, then iterates the module rules
/// (`ptInit`, then `ptStep`/`mkSiteTypes`/`vcr`/`cgBuild`/`cgParamEdges`
/// to mutual fixpoint, then `hierarchy` and `sideEffects`).
///
/// Returns the executor with all result relations populated.
///
/// # Errors
///
/// Returns compile or runtime errors from the jeddc pipeline.
pub fn run_jedd(p: &Program) -> Result<Executor, Box<dyn std::error::Error>> {
    run_jedd_impl(p, false)
}

/// Like [`run_jedd`], with declared-type filtering enabled (the `ptFilter`
/// rules of the points-to module, fed by the hierarchy closure).
///
/// # Errors
///
/// Same conditions as [`run_jedd`].
pub fn run_jedd_typed(p: &Program) -> Result<Executor, Box<dyn std::error::Error>> {
    run_jedd_impl(p, true)
}

fn run_jedd_impl(p: &Program, typed: bool) -> Result<Executor, Box<dyn std::error::Error>> {
    let compiled = jeddc::compile(&jedd_src::combined())?;
    let mut exec = Executor::new(&compiled)?;
    exec.bind_domain_size("Type", p.types.max(1) as u64)?;
    exec.bind_domain_size("Signature", p.sigs.max(1) as u64)?;
    exec.bind_domain_size("Method", p.methods.max(1) as u64)?;
    exec.bind_domain_size("Field", p.fields.max(1) as u64)?;
    exec.bind_domain_size("Var", p.vars.max(1) as u64)?;
    exec.bind_domain_size("Obj", p.allocs.max(1) as u64)?;
    exec.bind_domain_size("Site", p.call_sites.max(1) as u64)?;
    let max_idx = p
        .method_params
        .iter()
        .map(|&(_, i, _)| i + 1)
        .max()
        .unwrap_or(1);
    exec.bind_domain_size("ParamIdx", max_idx.max(1) as u64)?;

    let t2 = |v: &[(u32, u32)]| -> Vec<Vec<u64>> {
        v.iter().map(|&(a, b)| vec![a as u64, b as u64]).collect()
    };
    exec.set_input("extend", &t2(&p.extend))?;
    exec.set_input(
        "declaresMethod",
        &p.declares
            .iter()
            .map(|&(t, s, m)| vec![t as u64, s as u64, m as u64])
            .collect::<Vec<_>>(),
    )?;
    exec.set_input("objType", &t2(&p.alloc_type))?;
    exec.set_input(
        "news",
        &p.news
            .iter()
            .map(|&(_, v, a)| vec![v as u64, a as u64])
            .collect::<Vec<_>>(),
    )?;
    exec.set_input(
        "assigns",
        &p.assigns
            .iter()
            .map(|&(_, d, s)| vec![d as u64, s as u64])
            .collect::<Vec<_>>(),
    )?;
    exec.set_input(
        "loads",
        &p.loads
            .iter()
            .map(|&(_, d, b, f)| vec![d as u64, b as u64, f as u64])
            .collect::<Vec<_>>(),
    )?;
    exec.set_input(
        "stores",
        &p.stores
            .iter()
            .map(|&(_, b, f, s)| vec![b as u64, f as u64, s as u64])
            .collect::<Vec<_>>(),
    )?;
    exec.set_input(
        "siteCaller",
        &p.calls
            .iter()
            .map(|c| vec![c.site as u64, c.caller as u64])
            .collect::<Vec<_>>(),
    )?;
    exec.set_input(
        "siteRecv",
        &p.calls
            .iter()
            .map(|c| vec![c.site as u64, c.recv as u64])
            .collect::<Vec<_>>(),
    )?;
    exec.set_input(
        "siteSig",
        &p.calls
            .iter()
            .map(|c| vec![c.site as u64, c.sig as u64])
            .collect::<Vec<_>>(),
    )?;
    let mut args = Vec::new();
    for c in &p.calls {
        for (i, &a) in c.args.iter().enumerate() {
            args.push(vec![c.site as u64, i as u64, a as u64]);
        }
    }
    exec.set_input("siteArg", &args)?;
    exec.set_input(
        "siteRet",
        &p.calls
            .iter()
            .filter_map(|c| c.ret.map(|r| vec![c.site as u64, r as u64]))
            .collect::<Vec<_>>(),
    )?;
    exec.set_input("methodThis", &t2(&p.method_this))?;
    exec.set_input(
        "methodParam",
        &p.method_params
            .iter()
            .map(|&(m, i, v)| vec![m as u64, i as u64, v as u64])
            .collect::<Vec<_>>(),
    )?;
    exec.set_input("methodRet", &t2(&p.method_ret))?;
    exec.set_input(
        "entry",
        &p.entry_points
            .iter()
            .map(|&m| vec![m as u64])
            .collect::<Vec<_>>(),
    )?;
    exec.set_input(
        "loadIn",
        &p.loads
            .iter()
            .map(|&(m, _, b, f)| vec![m as u64, b as u64, f as u64])
            .collect::<Vec<_>>(),
    )?;
    exec.set_input(
        "storeIn",
        &p.stores
            .iter()
            .map(|&(m, b, f, _)| vec![m as u64, b as u64, f as u64])
            .collect::<Vec<_>>(),
    )?;
    exec.set_input(
        "typeIdentity",
        &(0..p.types as u64).map(|t| vec![t, t]).collect::<Vec<_>>(),
    )?;
    // Declared types; unlisted variables default to the root.
    let mut vt: Vec<Vec<u64>> = p
        .var_type
        .iter()
        .map(|&(v, t)| vec![v as u64, t as u64])
        .collect();
    let listed: std::collections::BTreeSet<u32> = p.var_type.iter().map(|&(v, _)| v).collect();
    for v in 0..p.vars as u32 {
        if !listed.contains(&v) {
            vt.push(vec![v as u64, 0]);
        }
    }
    exec.set_input("varType", &vt)?;

    // Run the modules: hierarchy once, then the points-to / call-graph
    // fixpoint, then side effects.
    exec.run("hierarchy")?;
    exec.run("ptInit")?;
    if typed {
        exec.run("ptFilterInit")?;
        exec.run("ptFilter")?;
    }
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let before = (
            exec.relation("pt")?.size(),
            exec.relation("edges")?.size(),
            exec.relation("siteTarget")?.size(),
        );
        if typed {
            exec.run("ptStepTyped")?;
        } else {
            exec.run("ptStep")?;
        }
        exec.run("mkSiteTypes")?;
        exec.run("vcr")?;
        exec.run("cgBuild")?;
        exec.run("cgParamEdges")?;
        let after = (
            exec.relation("pt")?.size(),
            exec.relation("edges")?.size(),
            exec.relation("siteTarget")?.size(),
        );
        if before == after {
            break;
        }
        if rounds > 1000 {
            return Err(Box::new(ExecError {
                message: "whole-program fixpoint failed to converge".into(),
            }));
        }
    }
    exec.run("sideEffects")?;
    Ok(exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline_sets;
    use crate::synth::Benchmark;
    use std::collections::BTreeSet;

    #[test]
    fn rust_driver_runs_all_five() {
        let p = Benchmark::Tiny.generate();
        let r = run(&p).unwrap();
        assert!(r.hierarchy.subtype_of.size() >= p.types as u64);
        assert!(r.points_to.pt.size() > 0);
        assert!(r.side_effects.reads_star.size() >= r.side_effects.reads.size());
        let _ = (&r.call_graph.reachable, &r.facts);
    }

    #[test]
    fn jedd_language_driver_matches_set_baseline() {
        let p = Benchmark::Tiny.generate();
        let exec = run_jedd(&p).expect("mini-Jedd whole-program run");
        let sets = baseline_sets::points_to(&p);

        // pt column order is (var, obj).
        let got_pt: BTreeSet<(u64, u64)> = exec
            .tuples("pt")
            .unwrap()
            .into_iter()
            .map(|t| (t[0], t[1]))
            .collect();
        let expect_pt: BTreeSet<(u64, u64)> = sets
            .pt
            .iter()
            .map(|&(v, o)| (v as u64, o as u64))
            .collect();
        assert_eq!(got_pt, expect_pt, "pt through the Jedd language");

        // siteTarget columns are (site, method) as declared.
        let got_cg: BTreeSet<(u64, u64)> = exec
            .tuples("siteTarget")
            .unwrap()
            .into_iter()
            .map(|t| (t[0], t[1]))
            .collect();
        let expect_cg: BTreeSet<(u64, u64)> = sets
            .cg
            .iter()
            .map(|&(s, m)| (s as u64, m as u64))
            .collect();
        assert_eq!(got_cg, expect_cg, "call graph through the Jedd language");
    }

    #[test]
    fn jedd_language_hierarchy_matches() {
        let p = Benchmark::Tiny.generate();
        let exec = run_jedd(&p).unwrap();
        let expect = baseline_sets::hierarchy(&p);
        let got: BTreeSet<(u32, u32)> = exec
            .tuples("subtypeOf")
            .unwrap()
            .into_iter()
            .map(|t| (t[0] as u32, t[1] as u32))
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn jedd_language_side_effects_match() {
        let p = Benchmark::Tiny.generate();
        let exec = run_jedd(&p).unwrap();
        let sets_pt = baseline_sets::points_to(&p);
        let sets_se = baseline_sets::side_effects(&p, &sets_pt);
        // readsStar columns are (method, baseobj, field) as declared.
        let got: BTreeSet<(u32, u32, u32)> = exec
            .tuples("readsStar")
            .unwrap()
            .into_iter()
            .map(|t| (t[0] as u32, t[1] as u32, t[2] as u32))
            .collect();
        let expect: BTreeSet<(u32, u32, u32)> = sets_se.reads_star.iter().copied().collect();
        assert_eq!(got, expect, "transitive reads through the Jedd language");
    }
}

#[cfg(test)]
mod typed_driver_tests {
    use super::*;
    use crate::baseline_sets;
    use crate::synth::Benchmark;
    use std::collections::BTreeSet;

    #[test]
    fn jedd_language_typed_driver_matches_typed_baseline() {
        let p = Benchmark::Tiny.generate();
        let exec = run_jedd_typed(&p).expect("typed mini-Jedd run");
        let sets = baseline_sets::points_to_typed(&p);
        let got: BTreeSet<(u64, u64)> = exec
            .tuples("pt")
            .unwrap()
            .into_iter()
            .map(|t| (t[0], t[1]))
            .collect();
        let expect: BTreeSet<(u64, u64)> = sets
            .pt
            .iter()
            .map(|&(v, o)| (v as u64, o as u64))
            .collect();
        assert_eq!(got, expect, "typed pt through the Jedd language");
    }
}
