//! Deterministic synthetic program generation.
//!
//! The paper evaluates on real Java benchmarks (javac, compress, sablecc,
//! jedit) analysed together with the JDK inside Soot. Those fact bases are
//! not available here, so this module generates programs with comparable
//! *shape* — a deep class hierarchy with overriding, signature reuse,
//! field-heavy classes and call-dense methods — at configurable scales.
//! Generation is seeded, so every run of the benchmark harness sees the
//! same program.

use crate::ir::{Call, Program};
use jedd_bdd::rng::XorShift64Star;

/// Generation parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SynthConfig {
    /// Number of class types (including the root).
    pub types: usize,
    /// Number of distinct method signatures.
    pub sigs: usize,
    /// Signatures implemented per class (expected).
    pub methods_per_type: usize,
    /// Number of instance fields (shared pool).
    pub fields: usize,
    /// Local pointer variables per method (beyond this/params/ret).
    pub locals_per_method: usize,
    /// Allocation statements per method (expected).
    pub allocs_per_method: usize,
    /// Copy statements per method (expected).
    pub assigns_per_method: usize,
    /// Field loads/stores per method (expected, each).
    pub field_ops_per_method: usize,
    /// Virtual call sites per method (expected).
    pub calls_per_method: usize,
    /// Maximum parameters per signature.
    pub max_params: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> SynthConfig {
        SynthConfig {
            types: 40,
            sigs: 24,
            methods_per_type: 3,
            fields: 16,
            locals_per_method: 4,
            allocs_per_method: 1,
            assigns_per_method: 2,
            field_ops_per_method: 1,
            calls_per_method: 2,
            max_params: 2,
            seed: 0x1edd,
        }
    }
}

/// Named scales approximating the paper's Table 2 benchmarks. Absolute
/// sizes are scaled down to laptop-friendly fact bases while keeping the
/// relative ordering (compress < javac ≈ javac2 < sablecc < jedit).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Small sanity-scale program.
    Tiny,
    /// `compress`-like: the smallest real benchmark.
    Compress,
    /// `javac`-like.
    Javac,
    /// `javac2`-like (javac at a second configuration).
    Javac2,
    /// `sablecc`-like.
    Sablecc,
    /// `jedit`-like: the largest benchmark.
    Jedit,
}

impl Benchmark {
    /// All Table 2 benchmarks, in the paper's row order.
    pub fn table2() -> [Benchmark; 5] {
        [
            Benchmark::Javac,
            Benchmark::Compress,
            Benchmark::Javac2,
            Benchmark::Sablecc,
            Benchmark::Jedit,
        ]
    }

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Tiny => "tiny",
            Benchmark::Compress => "compress",
            Benchmark::Javac => "javac",
            Benchmark::Javac2 => "javac2",
            Benchmark::Sablecc => "sablecc",
            Benchmark::Jedit => "jedit",
        }
    }

    /// The generation configuration for this benchmark scale.
    pub fn config(self) -> SynthConfig {
        let base = SynthConfig::default();
        match self {
            Benchmark::Tiny => SynthConfig {
                types: 10,
                sigs: 6,
                fields: 4,
                seed: 0x7171,
                ..base
            },
            Benchmark::Compress => SynthConfig {
                types: 60,
                sigs: 40,
                fields: 24,
                seed: 0xc0,
                ..base
            },
            Benchmark::Javac => SynthConfig {
                types: 160,
                sigs: 90,
                fields: 48,
                calls_per_method: 3,
                seed: 0x1a,
                ..base
            },
            Benchmark::Javac2 => SynthConfig {
                types: 160,
                sigs: 90,
                fields: 48,
                calls_per_method: 3,
                assigns_per_method: 3,
                seed: 0x1b,
                ..base
            },
            Benchmark::Sablecc => SynthConfig {
                types: 240,
                sigs: 120,
                fields: 64,
                calls_per_method: 3,
                seed: 0x5a,
                ..base
            },
            Benchmark::Jedit => SynthConfig {
                types: 360,
                sigs: 150,
                fields: 96,
                calls_per_method: 4,
                seed: 0x1e,
                ..base
            },
        }
    }

    /// Generates the program for this benchmark.
    pub fn generate(self) -> Program {
        generate(&self.config())
    }
}

/// Generates a well-formed program from the configuration.
pub fn generate(cfg: &SynthConfig) -> Program {
    let mut rng = XorShift64Star::new(cfg.seed);
    let mut p = Program {
        types: cfg.types,
        sigs: cfg.sigs,
        fields: cfg.fields,
        ..Program::default()
    };

    // Hierarchy: every non-root type extends an earlier type, biased
    // toward recent types to get chains several classes deep.
    for t in 1..cfg.types as u32 {
        let sup = if t == 1 || rng.gen_bool(0.35) {
            0
        } else {
            // Prefer a recent type for deeper chains.
            let lo = (t as i64 - 8).max(0) as u32;
            rng.gen_range(lo as u64..t as u64) as u32
        };
        p.extend.push((t, sup));
    }

    // Signatures: parameter counts fixed per signature.
    let sig_params: Vec<usize> = (0..cfg.sigs)
        .map(|_| rng.gen_index(0..cfg.max_params + 1))
        .collect();
    let sig_returns: Vec<bool> = (0..cfg.sigs).map(|_| rng.gen_bool(0.6)).collect();

    // Method declarations: each type implements a sample of signatures;
    // overriding arises because subtypes re-implement signatures their
    // supertypes also implement.
    let mut declared_sigs_per_type: Vec<Vec<u32>> = vec![Vec::new(); cfg.types];
    for t in 0..cfg.types as u32 {
        for _ in 0..cfg.methods_per_type {
            let s = rng.gen_range(0..cfg.sigs as u64) as u32;
            if declared_sigs_per_type[t as usize].contains(&s) {
                continue;
            }
            declared_sigs_per_type[t as usize].push(s);
            let m = p.methods as u32;
            p.methods += 1;
            p.declares.push((t, s, m));
        }
    }

    // Per-method variables and bodies.
    let methods: Vec<(u32, u32, u32)> = p.declares.clone();
    let mut alloc_targets: Vec<u32> = Vec::new();
    for &(t, sig, m) in &methods {
        let this_var = p.vars as u32;
        p.vars += 1;
        p.method_this.push((m, this_var));
        // `this` is declared at the defining class; other variables get a
        // shallow declared type (often the root, sometimes deeper).
        p.var_type.push((this_var, t));
        let nparams = sig_params[sig as usize];
        let mut param_vars = Vec::new();
        for i in 0..nparams {
            let v = p.vars as u32;
            p.vars += 1;
            p.method_params.push((m, i as u32, v));
            param_vars.push(v);
        }
        let ret_var = if sig_returns[sig as usize] {
            let v = p.vars as u32;
            p.vars += 1;
            p.method_ret.push((m, v));
            Some(v)
        } else {
            None
        };
        let mut locals: Vec<u32> = Vec::new();
        for _ in 0..cfg.locals_per_method {
            let v = p.vars as u32;
            p.vars += 1;
            locals.push(v);
        }
        // Declared types for params, locals and the return variable: the
        // root most of the time (no filtering), occasionally a shallow
        // class (so the filter actually removes something).
        for &v in param_vars.iter().chain(locals.iter()).chain(ret_var.iter()) {
            let t = if rng.gen_bool(0.75) {
                0
            } else {
                rng.gen_range(0..(cfg.types as u64).min(8)) as u32
            };
            p.var_type.push((v, t));
        }
        // A pool of variables usable in this method.
        let mut pool: Vec<u32> = vec![this_var];
        pool.extend(&param_vars);
        pool.extend(&locals);
        if let Some(r) = ret_var {
            pool.push(r);
        }
        let pick = |rng: &mut XorShift64Star, pool: &[u32]| pool[rng.gen_index(0..pool.len())];

        // Allocations.
        for _ in 0..cfg.allocs_per_method {
            let a = p.allocs as u32;
            p.allocs += 1;
            let ty = rng.gen_range(0..cfg.types as u64) as u32;
            p.alloc_type.push((a, ty));
            let v = pick(&mut rng, if locals.is_empty() { &pool } else { &locals });
            p.news.push((m, v, a));
            alloc_targets.push(v);
        }
        // Copies.
        for _ in 0..cfg.assigns_per_method {
            let d = pick(&mut rng, &pool);
            let s = pick(&mut rng, &pool);
            if d != s {
                p.assigns.push((m, d, s));
            }
        }
        // Field operations.
        for _ in 0..cfg.field_ops_per_method {
            let f = rng.gen_range(0..cfg.fields as u64) as u32;
            let d = pick(&mut rng, &pool);
            let b = pick(&mut rng, &pool);
            p.loads.push((m, d, b, f));
            let f2 = rng.gen_range(0..cfg.fields as u64) as u32;
            let b2 = pick(&mut rng, &pool);
            let s2 = pick(&mut rng, &pool);
            p.stores.push((m, b2, f2, s2));
        }
        // Virtual calls on a receiver from the pool, invoking a signature
        // that at least one type implements.
        for _ in 0..cfg.calls_per_method {
            let sig = declared_sigs_per_type[rng.gen_index(0..cfg.types)]
                .first()
                .copied()
                .unwrap_or(0);
            let site = p.call_sites as u32;
            p.call_sites += 1;
            let nargs = sig_params[sig as usize];
            let args: Vec<u32> = (0..nargs).map(|_| pick(&mut rng, &pool)).collect();
            let ret = if sig_returns[sig as usize] && rng.gen_bool(0.7) {
                Some(pick(&mut rng, &pool))
            } else {
                None
            };
            p.calls.push(Call {
                caller: m,
                site,
                recv: pick(&mut rng, &pool),
                sig,
                args,
                ret,
            });
        }
    }

    // Entry points: a handful of methods.
    let n_entry = (p.methods / 20).clamp(1, 8);
    for i in 0..n_entry {
        p.entry_points.push((i * (p.methods / n_entry)) as u32);
    }

    p.validate();
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&SynthConfig::default());
        let b = generate(&SynthConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&SynthConfig::default());
        let b = generate(&SynthConfig {
            seed: 99,
            ..SynthConfig::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn benchmarks_scale_up() {
        let compress = Benchmark::Compress.generate();
        let jedit = Benchmark::Jedit.generate();
        assert!(jedit.types > compress.types);
        assert!(jedit.calls.len() > compress.calls.len());
    }

    #[test]
    fn all_benchmarks_validate() {
        for b in Benchmark::table2() {
            let p = b.generate();
            p.validate();
            assert!(p.methods > 0 && p.allocs > 0 && !p.calls.is_empty());
        }
        Benchmark::Tiny.generate().validate();
    }

    #[test]
    fn hierarchy_has_depth() {
        let p = Benchmark::Javac.generate();
        let max_depth = (0..p.types as u32)
            .map(|t| p.supertype_chain(t).len())
            .max()
            .unwrap();
        assert!(max_depth >= 4, "expected non-trivial chains, got {max_depth}");
    }
}
