//! Explicit set-based reference implementations of the five analyses.
//!
//! These are the "pure Java" versions the paper compares against for code
//! size (§5: 803 lines of Java vs 124 of Jedd for the side-effect
//! analysis): straightforward worklist algorithms over hash sets. They
//! serve as ground truth for the BDD versions and as the explicit-set
//! baseline in the benches.

use crate::ir::Program;
use std::collections::{BTreeMap, BTreeSet};

/// Set-based subtype closure: `(subtype, supertype)` pairs, reflexive and
/// transitive.
pub fn hierarchy(p: &Program) -> BTreeSet<(u32, u32)> {
    let mut out = BTreeSet::new();
    for t in 0..p.types as u32 {
        for sup in p.supertype_chain(t) {
            out.insert((t, sup));
        }
    }
    out
}

/// Set-based virtual call resolution for explicit `(site, type)` pairs.
pub fn resolve_calls(p: &Program, site_types: &BTreeSet<(u32, u32)>) -> BTreeSet<(u32, u32)> {
    let mut out = BTreeSet::new();
    for &(site, t) in site_types {
        let sig = p.calls.iter().find(|c| c.site == site).map(|c| c.sig);
        if let Some(sig) = sig {
            if let Some(m) = p.dispatch(t, sig) {
                out.insert((site, m));
            }
        }
    }
    out
}

/// The result of the set-based points-to analysis.
#[derive(Clone, Debug, Default)]
pub struct SetPointsTo {
    /// `(var, obj)` pairs.
    pub pt: BTreeSet<(u32, u32)>,
    /// `(baseobj, field, obj)` pairs.
    pub field_pt: BTreeSet<(u32, u32, u32)>,
    /// `(site, method)` call edges.
    pub cg: BTreeSet<(u32, u32)>,
}

/// Set-based flow-insensitive points-to analysis with an on-the-fly call
/// graph; mirrors [`crate::pointsto::analyze`] exactly.
pub fn points_to(p: &Program) -> SetPointsTo {
    points_to_impl(p, false)
}

/// Type-filtered variant, mirroring [`crate::pointsto::analyze_typed`]:
/// `(var, obj)` is admitted only when the object's class is a subtype of
/// the variable's declared type (unlisted variables default to the root).
pub fn points_to_typed(p: &Program) -> SetPointsTo {
    points_to_impl(p, true)
}

fn points_to_impl(p: &Program, typed: bool) -> SetPointsTo {
    let declared: BTreeMap<u32, u32> = p.var_type.iter().copied().collect();
    let alloc_type_map: BTreeMap<u32, u32> = p.alloc_type.iter().copied().collect();
    let admit = |v: u32, o: u32| -> bool {
        if !typed {
            return true;
        }
        let decl = declared.get(&v).copied().unwrap_or(0);
        let obj_ty = alloc_type_map[&o];
        p.supertype_chain(obj_ty).contains(&decl)
    };
    let mut pt: BTreeSet<(u32, u32)> = p
        .news
        .iter()
        .filter(|&&(_, v, a)| admit(v, a))
        .map(|&(_, v, a)| (v, a))
        .collect();
    let mut field_pt: BTreeSet<(u32, u32, u32)> = BTreeSet::new();
    let mut cg: BTreeSet<(u32, u32)> = BTreeSet::new();
    let mut edges: BTreeSet<(u32, u32)> = p.assigns.iter().map(|&(_, d, s)| (d, s)).collect();
    let alloc_type: BTreeMap<u32, u32> = p.alloc_type.iter().copied().collect();

    loop {
        let mut changed = false;
        // Copy propagation.
        loop {
            let mut grew = false;
            let mut add = Vec::new();
            for &(d, s) in &edges {
                for &(v, o) in pt.iter().filter(|&&(v, _)| v == s) {
                    let _ = v;
                    if !pt.contains(&(d, o)) && admit(d, o) {
                        add.push((d, o));
                    }
                }
            }
            for x in add {
                grew |= pt.insert(x);
            }
            if !grew {
                break;
            }
            changed = true;
        }
        // Stores.
        for &(_, b, f, s) in &p.stores {
            let bases: Vec<u32> = pt.iter().filter(|&&(v, _)| v == b).map(|&(_, o)| o).collect();
            let vals: Vec<u32> = pt.iter().filter(|&&(v, _)| v == s).map(|&(_, o)| o).collect();
            for &ob in &bases {
                for &o in &vals {
                    changed |= field_pt.insert((ob, f, o));
                }
            }
        }
        // Loads.
        for &(_, d, b, f) in &p.loads {
            let bases: Vec<u32> = pt.iter().filter(|&&(v, _)| v == b).map(|&(_, o)| o).collect();
            for &ob in &bases {
                let objs: Vec<u32> = field_pt
                    .iter()
                    .filter(|&&(bo, ff, _)| bo == ob && ff == f)
                    .map(|&(_, _, o)| o)
                    .collect();
                for o in objs {
                    if admit(d, o) {
                        changed |= pt.insert((d, o));
                    }
                }
            }
        }
        // Call graph from receiver points-to sets.
        for c in &p.calls {
            let objs: Vec<u32> = pt
                .iter()
                .filter(|&&(v, _)| v == c.recv)
                .map(|&(_, o)| o)
                .collect();
            for o in objs {
                let t = alloc_type[&o];
                if let Some(m) = p.dispatch(t, c.sig) {
                    changed |= cg.insert((c.site, m));
                }
            }
        }
        // Interprocedural edges.
        let mut new_edges = Vec::new();
        for &(site, m) in &cg {
            let c = p.calls.iter().find(|c| c.site == site).expect("site");
            if let Some(&(_, this_var)) = p.method_this.iter().find(|&&(mm, _)| mm == m) {
                new_edges.push((this_var, c.recv));
            }
            for &(mm, i, pv) in &p.method_params {
                if mm == m {
                    if let Some(&av) = c.args.get(i as usize) {
                        new_edges.push((pv, av));
                    }
                }
            }
            if let Some(rv) = c.ret {
                if let Some(&(_, mrv)) = p.method_ret.iter().find(|&&(mm, _)| mm == m) {
                    new_edges.push((rv, mrv));
                }
            }
        }
        for e in new_edges {
            changed |= edges.insert(e);
        }
        if !changed {
            return SetPointsTo { pt, field_pt, cg };
        }
    }
}

/// The result of the set-based side-effect analysis.
#[derive(Clone, Debug, Default)]
pub struct SetSideEffects {
    /// Direct reads: `(method, baseobj, field)`.
    pub reads: BTreeSet<(u32, u32, u32)>,
    /// Direct writes: `(method, baseobj, field)`.
    pub writes: BTreeSet<(u32, u32, u32)>,
    /// Transitive reads (including callees).
    pub reads_star: BTreeSet<(u32, u32, u32)>,
    /// Transitive writes (including callees).
    pub writes_star: BTreeSet<(u32, u32, u32)>,
}

/// Set-based side-effect analysis given a points-to result.
pub fn side_effects(p: &Program, ptres: &SetPointsTo) -> SetSideEffects {
    let mut out = SetSideEffects::default();
    for &(m, _, b, f) in &p.loads {
        for &(v, o) in ptres.pt.iter().filter(|&&(v, _)| v == b) {
            let _ = v;
            out.reads.insert((m, o, f));
        }
    }
    for &(m, b, f, _) in &p.stores {
        for &(v, o) in ptres.pt.iter().filter(|&&(v, _)| v == b) {
            let _ = v;
            out.writes.insert((m, o, f));
        }
    }
    // Caller -> callee edges.
    let mut call_edges: BTreeSet<(u32, u32)> = BTreeSet::new();
    for &(site, callee) in &ptres.cg {
        let caller = p.calls.iter().find(|c| c.site == site).expect("site").caller;
        call_edges.insert((caller, callee));
    }
    out.reads_star = out.reads.clone();
    out.writes_star = out.writes.clone();
    loop {
        let mut changed = false;
        let mut add_r = Vec::new();
        let mut add_w = Vec::new();
        for &(caller, callee) in &call_edges {
            for &(m, o, f) in out.reads_star.iter().filter(|&&(m, _, _)| m == callee) {
                let _ = m;
                add_r.push((caller, o, f));
            }
            for &(m, o, f) in out.writes_star.iter().filter(|&&(m, _, _)| m == callee) {
                let _ = m;
                add_w.push((caller, o, f));
            }
        }
        for x in add_r {
            changed |= out.reads_star.insert(x);
        }
        for x in add_w {
            changed |= out.writes_star.insert(x);
        }
        if !changed {
            return out;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::Benchmark;

    #[test]
    fn hierarchy_reflexive() {
        let p = Benchmark::Tiny.generate();
        let h = hierarchy(&p);
        for t in 0..p.types as u32 {
            assert!(h.contains(&(t, t)));
            assert!(h.contains(&(t, 0)), "everything reaches the root");
        }
    }

    #[test]
    fn points_to_is_monotone_in_edges() {
        let mut p = Benchmark::Tiny.generate();
        let base = points_to(&p);
        // Adding a copy edge can only grow the solution.
        if p.vars >= 2 {
            p.assigns.push((0, 1, 0));
            let more = points_to(&p);
            assert!(more.pt.is_superset(&base.pt.iter().copied().filter(|&(v, _)| v != 1).collect()));
        }
        let _ = base;
    }

    #[test]
    fn side_effects_transitive_superset() {
        let p = Benchmark::Tiny.generate();
        let ptres = points_to(&p);
        let se = side_effects(&p, &ptres);
        assert!(se.reads_star.is_superset(&se.reads));
        assert!(se.writes_star.is_superset(&se.writes));
    }

    #[test]
    fn resolve_calls_matches_dispatch() {
        let p = Benchmark::Tiny.generate();
        let mut st = BTreeSet::new();
        for c in &p.calls {
            for t in 0..p.types as u32 {
                st.insert((c.site, t));
            }
        }
        let r = resolve_calls(&p, &st);
        for &(site, m) in &r {
            let c = p.calls.iter().find(|c| c.site == site).unwrap();
            assert!((0..p.types as u32).any(|t| p.dispatch(t, c.sig) == Some(m)));
        }
    }
}
