//! Loading a [`crate::ir::Program`] into Jedd relations.
//!
//! Declares the domains, attributes and physical domains the five analyses
//! share (the Soot-side declarations of the paper's Fig. 2 modules), and
//! converts the IR fact lists into base relations.

use crate::ir::Program;
use jedd_core::{AttrId, JeddError, PhysDomId, Relation, Universe};

/// The shared analysis universe: every domain, attribute and physical
/// domain used by the five analyses, plus the base relations of one
/// program.
///
/// Physical domains follow the layout a Jedd programmer would specify:
/// one to three per domain, with the hot pairs (variables, heap objects,
/// types) interleaved in the BDD variable order.
pub struct Facts {
    /// The shared universe.
    pub u: Universe,

    // Attributes over the Type domain.
    /// Subclass in `extend` and the hierarchy closure.
    pub subtype: AttrId,
    /// Superclass in `extend` and the hierarchy closure.
    pub supertype: AttrId,
    /// Declaring class in `declares`; object class in `objtype`.
    pub ty: AttrId,
    /// The hierarchy-walk cursor of virtual call resolution.
    pub tgttype: AttrId,

    /// Method signature.
    pub signature: AttrId,
    /// Concrete method (declaration / resolution target).
    pub method: AttrId,
    /// Calling method.
    pub caller: AttrId,
    /// Instance field.
    pub field: AttrId,

    // Attributes over the Variable domain.
    /// Generic pointer variable (points-to tuples).
    pub var: AttrId,
    /// Assignment destination.
    pub dst: AttrId,
    /// Assignment source.
    pub src: AttrId,
    /// Field-access base variable.
    pub base: AttrId,

    // Attributes over the allocation-site (object) domain.
    /// Pointed-to object.
    pub obj: AttrId,
    /// Base object of a field points-to tuple.
    pub baseobj: AttrId,

    /// Call site.
    pub site: AttrId,
    /// Parameter position.
    pub idx: AttrId,

    // Physical domains.
    /// Type domains (interleaved).
    pub t1: PhysDomId,
    /// Second type domain.
    pub t2: PhysDomId,
    /// Third type domain.
    pub t3: PhysDomId,
    /// Signature domain.
    pub s1: PhysDomId,
    /// Method domains.
    pub m1: PhysDomId,
    /// Second method domain.
    pub m2: PhysDomId,
    /// Field domain.
    pub f1: PhysDomId,
    /// Variable domains (interleaved).
    pub v1: PhysDomId,
    /// Second variable domain.
    pub v2: PhysDomId,
    /// Object domains (interleaved).
    pub h1: PhysDomId,
    /// Second object domain.
    pub h2: PhysDomId,
    /// Third object domain.
    pub h3: PhysDomId,
    /// Call-site domain.
    pub c1: PhysDomId,
    /// Parameter-position domain.
    pub p1: PhysDomId,

    // Base relations.
    /// `(subtype, supertype)` immediate extends — paper Fig. 4(d).
    pub extend: Relation,
    /// `(ty, signature, method)` — paper Fig. 3's `implementsMethod`.
    pub declares: Relation,
    /// `(obj, ty)` — allocation-site types.
    pub objtype: Relation,
    /// `(var, obj)` — allocation statements `v = new T()`.
    pub news: Relation,
    /// `(dst, src)` — copy statements.
    pub assigns: Relation,
    /// `(dst, base, field)` — field loads.
    pub loads: Relation,
    /// `(base, field, src)` — field stores.
    pub stores: Relation,
    /// `(site, caller)` — call-site containment.
    pub site_caller: Relation,
    /// `(site, var)` — call-site receiver variables.
    pub site_recv: Relation,
    /// `(site, signature)` — invoked signatures.
    pub site_sig: Relation,
    /// `(site, idx, var)` — actual arguments.
    pub site_arg: Relation,
    /// `(site, var)` — variables receiving return values.
    pub site_ret: Relation,
    /// `(method, var)` — `this` variables.
    pub method_this: Relation,
    /// `(method, idx, var)` — formal parameters.
    pub method_param: Relation,
    /// `(method, var)` — return variables.
    pub method_ret: Relation,
    /// `(method)` — entry points.
    pub entry: Relation,
    /// `(method, dst, base, field)` is not needed relationally; loads and
    /// stores carry their method for the side-effect analysis instead.
    /// `(method, base, field)` via `stmt_*` relations below.
    pub load_in: Relation,
    /// `(method, base, field, src)` store statements with their method.
    pub store_in: Relation,
    /// `(var, ty)` — declared variable types (vars without an entry are
    /// treated as declared at the hierarchy root).
    pub var_type: Relation,
}

fn bits_for(n: usize) -> usize {
    let n = n.max(2) as u64;
    (64 - (n - 1).leading_zeros() as usize).max(1)
}

impl Facts {
    /// Builds the universe and loads all base relations of `p`.
    ///
    /// The universe comes from [`Universe::new`], so the backend honours
    /// the `JEDD_CHAIN` environment variable; use
    /// [`Facts::load_configured`] for an explicit backend or a learned
    /// variable order.
    ///
    /// # Errors
    ///
    /// Propagates relational-layer errors (they indicate a bug in the
    /// declarations rather than bad input).
    pub fn load(p: &Program) -> Result<Facts, JeddError> {
        Self::load_into(Universe::new(), p, None)
    }

    /// Builds the universe on a disk-backed paged manager with a resident
    /// budget of `frames` buffer-pool frames (`0` = paged, unbounded) —
    /// the larger-than-RAM path. Results are tuple-identical to
    /// [`Facts::load`] at any budget.
    ///
    /// # Errors
    ///
    /// As [`Facts::load`].
    pub fn load_paged(p: &Program, frames: usize) -> Result<Facts, JeddError> {
        Self::load_into(Universe::new_paged(frames), p, None)
    }

    /// Builds the universe on an explicit backend, optionally installing a
    /// learned variable order (a persisted `jedd_store::OrderRecord`
    /// `level -> var` table) before any relation is built — the
    /// warm-start path of the order lab: the fixpoint then runs under the
    /// known-good order from the first operation and never needs a
    /// sifting sweep.
    ///
    /// # Errors
    ///
    /// As [`Facts::load`], plus [`JeddError::InvalidRestore`] when the
    /// order table does not match this program's variable count.
    pub fn load_configured(
        p: &Program,
        backend: jedd_core::Backend,
        order: Option<&[u32]>,
    ) -> Result<Facts, JeddError> {
        Self::load_into(Universe::new_with_backend(backend), p, order)
    }

    fn load_into(u: Universe, p: &Program, order: Option<&[u32]>) -> Result<Facts, JeddError> {
        let d_type = u.add_domain("Type", p.types.max(1) as u64);
        let d_sig = u.add_domain("Signature", p.sigs.max(1) as u64);
        let d_method = u.add_domain("Method", p.methods.max(1) as u64);
        let d_field = u.add_domain("Field", p.fields.max(1) as u64);
        let d_var = u.add_domain("Var", p.vars.max(1) as u64);
        let d_obj = u.add_domain("Obj", p.allocs.max(1) as u64);
        let d_site = u.add_domain("Site", p.call_sites.max(1) as u64);
        let max_idx = p
            .method_params
            .iter()
            .map(|&(_, i, _)| i + 1)
            .max()
            .unwrap_or(1);
        let d_idx = u.add_domain("ParamIdx", max_idx.max(1) as u64);

        // Physical domains. Interleave the pairs that meet in equality
        // constraints during propagation (paper §3.2.1 / §4.3: the
        // interleaving of the bit order drives BDD size).
        let tb = bits_for(p.types);
        let ts = u.add_physical_domains_interleaved(&["T1", "T2", "T3"], tb);
        let (t1, t2, t3) = (ts[0], ts[1], ts[2]);
        let s1 = u.add_physical_domain("S1", bits_for(p.sigs));
        let mb = bits_for(p.methods);
        let ms = u.add_physical_domains_interleaved(&["M1", "M2"], mb);
        let (m1, m2) = (ms[0], ms[1]);
        let f1 = u.add_physical_domain("F1", bits_for(p.fields));
        let vb = bits_for(p.vars);
        let vs = u.add_physical_domains_interleaved(&["V1", "V2"], vb);
        let (v1, v2) = (vs[0], vs[1]);
        let hb = bits_for(p.allocs);
        let hs = u.add_physical_domains_interleaved(&["H1", "H2", "H3"], hb);
        let (h1, h2, h3) = (hs[0], hs[1], hs[2]);
        let c1 = u.add_physical_domain("C1", bits_for(p.call_sites));
        let p1 = u.add_physical_domain("P1", bits_for(max_idx as usize));

        // A learned order must go in now: every physical domain is
        // registered (so the variable count is final) and no relation is
        // built yet (so the arena holds only terminals, which `set_order`
        // requires).
        if let Some(order) = order {
            u.bdd_manager()
                .set_order(order)
                .map_err(|e| JeddError::InvalidRestore {
                    detail: format!("learned order does not fit this program: {e}"),
                })?;
        }

        let subtype = u.add_attribute("subtype", d_type);
        let supertype = u.add_attribute("supertype", d_type);
        let ty = u.add_attribute("type", d_type);
        let tgttype = u.add_attribute("tgttype", d_type);
        let signature = u.add_attribute("signature", d_sig);
        let method = u.add_attribute("method", d_method);
        let caller = u.add_attribute("caller", d_method);
        let field = u.add_attribute("field", d_field);
        let var = u.add_attribute("var", d_var);
        let dst = u.add_attribute("dst", d_var);
        let src = u.add_attribute("src", d_var);
        let base = u.add_attribute("base", d_var);
        let obj = u.add_attribute("obj", d_obj);
        let baseobj = u.add_attribute("baseobj", d_obj);
        let site = u.add_attribute("site", d_site);
        let idx = u.add_attribute("idx", d_idx);

        let t2u = |v: &[(u32, u32)]| -> Vec<Vec<u64>> {
            v.iter().map(|&(a, b)| vec![a as u64, b as u64]).collect()
        };

        let extend = Relation::from_tuples(&u, &[(subtype, t1), (supertype, t2)], &t2u(&p.extend))?;
        let declares = Relation::from_tuples(
            &u,
            &[(ty, t2), (signature, s1), (method, m1)],
            &p.declares
                .iter()
                .map(|&(t, s, m)| vec![t as u64, s as u64, m as u64])
                .collect::<Vec<_>>(),
        )?;
        let objtype =
            Relation::from_tuples(&u, &[(obj, h1), (ty, t1)], &t2u(&p.alloc_type))?;
        let news = Relation::from_tuples(
            &u,
            &[(var, v1), (obj, h1)],
            &p.news
                .iter()
                .map(|&(_, v, a)| vec![v as u64, a as u64])
                .collect::<Vec<_>>(),
        )?;
        let assigns = Relation::from_tuples(
            &u,
            &[(dst, v2), (src, v1)],
            &p.assigns
                .iter()
                .map(|&(_, d, s)| vec![d as u64, s as u64])
                .collect::<Vec<_>>(),
        )?;
        let loads = Relation::from_tuples(
            &u,
            &[(dst, v2), (base, v1), (field, f1)],
            &p.loads
                .iter()
                .map(|&(_, d, b, f)| vec![d as u64, b as u64, f as u64])
                .collect::<Vec<_>>(),
        )?;
        let stores = Relation::from_tuples(
            &u,
            &[(base, v1), (field, f1), (src, v2)],
            &p.stores
                .iter()
                .map(|&(_, b, f, s)| vec![b as u64, f as u64, s as u64])
                .collect::<Vec<_>>(),
        )?;
        let site_caller = Relation::from_tuples(
            &u,
            &[(site, c1), (caller, m2)],
            &p.calls
                .iter()
                .map(|c| vec![c.site as u64, c.caller as u64])
                .collect::<Vec<_>>(),
        )?;
        let site_recv = Relation::from_tuples(
            &u,
            &[(site, c1), (var, v1)],
            &p.calls
                .iter()
                .map(|c| vec![c.site as u64, c.recv as u64])
                .collect::<Vec<_>>(),
        )?;
        let site_sig = Relation::from_tuples(
            &u,
            &[(site, c1), (signature, s1)],
            &p.calls
                .iter()
                .map(|c| vec![c.site as u64, c.sig as u64])
                .collect::<Vec<_>>(),
        )?;
        let mut arg_tuples = Vec::new();
        for c in &p.calls {
            for (i, &a) in c.args.iter().enumerate() {
                arg_tuples.push(vec![c.site as u64, i as u64, a as u64]);
            }
        }
        let site_arg =
            Relation::from_tuples(&u, &[(site, c1), (idx, p1), (var, v1)], &arg_tuples)?;
        let site_ret = Relation::from_tuples(
            &u,
            &[(site, c1), (var, v1)],
            &p.calls
                .iter()
                .filter_map(|c| c.ret.map(|r| vec![c.site as u64, r as u64]))
                .collect::<Vec<_>>(),
        )?;
        let method_this =
            Relation::from_tuples(&u, &[(method, m1), (var, v1)], &t2u(&p.method_this))?;
        let method_param = Relation::from_tuples(
            &u,
            &[(method, m1), (idx, p1), (var, v1)],
            &p.method_params
                .iter()
                .map(|&(m, i, v)| vec![m as u64, i as u64, v as u64])
                .collect::<Vec<_>>(),
        )?;
        let method_ret =
            Relation::from_tuples(&u, &[(method, m1), (var, v1)], &t2u(&p.method_ret))?;
        let entry = Relation::from_tuples(
            &u,
            &[(method, m1)],
            &p.entry_points
                .iter()
                .map(|&m| vec![m as u64])
                .collect::<Vec<_>>(),
        )?;
        let load_in = Relation::from_tuples(
            &u,
            &[(method, m1), (base, v1), (field, f1)],
            &p.loads
                .iter()
                .map(|&(m, _, b, f)| vec![m as u64, b as u64, f as u64])
                .collect::<Vec<_>>(),
        )?;
        let store_in = Relation::from_tuples(
            &u,
            &[(method, m1), (base, v1), (field, f1)],
            &p.stores
                .iter()
                .map(|&(m, b, f, _)| vec![m as u64, b as u64, f as u64])
                .collect::<Vec<_>>(),
        )?;
        // Declared types; unlisted variables default to the root type,
        // which accepts everything.
        let mut vt: Vec<Vec<u64>> = p
            .var_type
            .iter()
            .map(|&(v, t)| vec![v as u64, t as u64])
            .collect();
        let listed: std::collections::BTreeSet<u32> =
            p.var_type.iter().map(|&(v, _)| v).collect();
        for v in 0..p.vars as u32 {
            if !listed.contains(&v) {
                vt.push(vec![v as u64, 0]);
            }
        }
        let var_type = Relation::from_tuples(&u, &[(var, v1), (ty, t2)], &vt)?;

        Ok(Facts {
            u,
            subtype,
            supertype,
            ty,
            tgttype,
            signature,
            method,
            caller,
            field,
            var,
            dst,
            src,
            base,
            obj,
            baseobj,
            site,
            idx,
            t1,
            t2,
            t3,
            s1,
            m1,
            m2,
            f1,
            v1,
            v2,
            h1,
            h2,
            h3,
            c1,
            p1,
            extend,
            declares,
            objtype,
            news,
            assigns,
            loads,
            stores,
            site_caller,
            site_recv,
            site_sig,
            site_arg,
            site_ret,
            method_this,
            method_param,
            method_ret,
            entry,
            load_in,
            store_in,
            var_type,
        })
    }

    /// Every base relation with the name it is persisted under in a
    /// checkpoint snapshot — the full fact base, so snapshots are
    /// self-contained and a resume needs no access to the original
    /// [`Program`].
    pub fn base_relations(&self) -> Vec<(&'static str, &Relation)> {
        vec![
            ("base.extend", &self.extend),
            ("base.declares", &self.declares),
            ("base.objtype", &self.objtype),
            ("base.news", &self.news),
            ("base.assigns", &self.assigns),
            ("base.loads", &self.loads),
            ("base.stores", &self.stores),
            ("base.site_caller", &self.site_caller),
            ("base.site_recv", &self.site_recv),
            ("base.site_sig", &self.site_sig),
            ("base.site_arg", &self.site_arg),
            ("base.site_ret", &self.site_ret),
            ("base.method_this", &self.method_this),
            ("base.method_param", &self.method_param),
            ("base.method_ret", &self.method_ret),
            ("base.entry", &self.entry),
            ("base.load_in", &self.load_in),
            ("base.store_in", &self.store_in),
            ("base.var_type", &self.var_type),
        ]
    }

    /// Reassembles a `Facts` from a restored universe and the named
    /// relations of a checkpoint snapshot. Attribute and physical-domain
    /// ids are resolved by name (registration replay keeps ids stable, so
    /// the names always resolve on a well-formed snapshot); base relations
    /// are looked up under their [`Facts::base_relations`] names.
    ///
    /// # Errors
    ///
    /// [`JeddError::InvalidRestore`] when a name is missing — a snapshot
    /// from a different producer or a truncated relation set.
    pub fn reattach(u: &Universe, relations: &[(String, Relation)]) -> Result<Facts, JeddError> {
        let attr = |name: &str| -> Result<jedd_core::AttrId, JeddError> {
            u.find_attribute(name).ok_or_else(|| JeddError::InvalidRestore {
                detail: format!("snapshot universe lacks attribute {name}"),
            })
        };
        let phys = |name: &str| -> Result<PhysDomId, JeddError> {
            u.find_physdom(name).ok_or_else(|| JeddError::InvalidRestore {
                detail: format!("snapshot universe lacks physical domain {name}"),
            })
        };
        let rel = |name: &str| -> Result<Relation, JeddError> {
            relations
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, r)| r.clone())
                .ok_or_else(|| JeddError::InvalidRestore {
                    detail: format!("snapshot lacks relation {name}"),
                })
        };
        Ok(Facts {
            u: u.clone(),
            subtype: attr("subtype")?,
            supertype: attr("supertype")?,
            ty: attr("type")?,
            tgttype: attr("tgttype")?,
            signature: attr("signature")?,
            method: attr("method")?,
            caller: attr("caller")?,
            field: attr("field")?,
            var: attr("var")?,
            dst: attr("dst")?,
            src: attr("src")?,
            base: attr("base")?,
            obj: attr("obj")?,
            baseobj: attr("baseobj")?,
            site: attr("site")?,
            idx: attr("idx")?,
            t1: phys("T1")?,
            t2: phys("T2")?,
            t3: phys("T3")?,
            s1: phys("S1")?,
            m1: phys("M1")?,
            m2: phys("M2")?,
            f1: phys("F1")?,
            v1: phys("V1")?,
            v2: phys("V2")?,
            h1: phys("H1")?,
            h2: phys("H2")?,
            h3: phys("H3")?,
            c1: phys("C1")?,
            p1: phys("P1")?,
            extend: rel("base.extend")?,
            declares: rel("base.declares")?,
            objtype: rel("base.objtype")?,
            news: rel("base.news")?,
            assigns: rel("base.assigns")?,
            loads: rel("base.loads")?,
            stores: rel("base.stores")?,
            site_caller: rel("base.site_caller")?,
            site_recv: rel("base.site_recv")?,
            site_sig: rel("base.site_sig")?,
            site_arg: rel("base.site_arg")?,
            site_ret: rel("base.site_ret")?,
            method_this: rel("base.method_this")?,
            method_param: rel("base.method_param")?,
            method_ret: rel("base.method_ret")?,
            entry: rel("base.entry")?,
            load_in: rel("base.load_in")?,
            store_in: rel("base.store_in")?,
            var_type: rel("base.var_type")?,
        })
    }

    /// The identity relation over types: `(subtype, supertype)` pairs with
    /// equal components, used to seed the reflexive-transitive closure.
    ///
    /// # Errors
    ///
    /// Propagates relational-layer errors.
    pub fn type_identity(&self) -> Result<Relation, JeddError> {
        let n = self.u.domain_size(self.u.attribute_domain(self.subtype));
        let tuples: Vec<Vec<u64>> = (0..n).map(|t| vec![t, t]).collect();
        Relation::from_tuples(
            &self.u,
            &[(self.subtype, self.t1), (self.supertype, self.t2)],
            &tuples,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::Benchmark;

    #[test]
    fn loads_benchmark_facts() {
        let p = Benchmark::Tiny.generate();
        let f = Facts::load(&p).unwrap();
        assert_eq!(f.extend.size() as usize, p.extend.len());
        assert_eq!(f.declares.size() as usize, p.declares.len());
        assert_eq!(f.news.size() as usize, p.news.len());
        assert_eq!(f.site_sig.size() as usize, p.calls.len());
    }

    #[test]
    fn identity_has_one_tuple_per_type() {
        let p = Benchmark::Tiny.generate();
        let f = Facts::load(&p).unwrap();
        assert_eq!(f.type_identity().unwrap().size() as usize, p.types);
    }

    #[test]
    fn assigns_deduplicate() {
        // from_tuples builds a set; duplicates in the IR collapse.
        let mut p = Benchmark::Tiny.generate();
        if let Some(&first) = p.assigns.first() {
            p.assigns.push(first);
        }
        let f = Facts::load(&p).unwrap();
        let distinct: std::collections::BTreeSet<_> =
            p.assigns.iter().map(|&(_, d, s)| (d, s)).collect();
        assert_eq!(f.assigns.size() as usize, distinct.len());
    }
}
