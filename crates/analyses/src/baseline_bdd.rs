//! Hand-coded BDD points-to analysis — the Table 2 baseline.
//!
//! The paper compares Jedd-generated code against the hand-written C++
//! implementation of Berndl et al. \[5\], which manipulates the BDD library
//! directly: explicit physical domains, hand-placed `replace` operations
//! and raw `and`/`or`/`and_exists` calls. This module is that style of
//! implementation on our kernel: no relational layer, no schema checking,
//! no automatic alignment — just bit vectors and permutations. It computes
//! exactly the same solution as [`crate::pointsto::analyze`] (asserted by
//! tests), so timing both measures the relational abstraction's overhead.

use crate::ir::Program;
use jedd_bdd::{Bdd, BddManager, Permutation};

/// The explicit bit layout: identical variable order to
/// [`crate::facts::Facts`] so the comparison is apples-to-apples.
pub struct Layout {
    /// The manager.
    pub mgr: BddManager,
    /// Type domains (interleaved).
    pub t1: Vec<u32>,
    /// Second type domain.
    pub t2: Vec<u32>,
    /// Third type domain.
    pub t3: Vec<u32>,
    /// Signature domain.
    pub s1: Vec<u32>,
    /// Method domains.
    pub m1: Vec<u32>,
    /// Second method domain.
    pub m2: Vec<u32>,
    /// Field domain.
    pub f1: Vec<u32>,
    /// Variable domains (interleaved).
    pub v1: Vec<u32>,
    /// Second variable domain.
    pub v2: Vec<u32>,
    /// Object domains (interleaved).
    pub h1: Vec<u32>,
    /// Second object domain.
    pub h2: Vec<u32>,
    /// Third object domain.
    pub h3: Vec<u32>,
    /// Call-site domain.
    pub c1: Vec<u32>,
}

fn bits_for(n: usize) -> usize {
    let n = n.max(2) as u64;
    (64 - (n - 1).leading_zeros() as usize).max(1)
}

fn interleave(mgr: &BddManager, count: usize, bits: usize) -> Vec<Vec<u32>> {
    let range = mgr.add_vars(bits * count);
    let base = range.start;
    (0..count)
        .map(|i| {
            (0..bits as u32)
                .map(|b| base + b * count as u32 + i as u32)
                .collect()
        })
        .collect()
}

impl Layout {
    /// Allocates the layout for a program.
    pub fn new(p: &Program) -> Layout {
        let mgr = BddManager::new(0);
        let ts = interleave(&mgr, 3, bits_for(p.types));
        let s1: Vec<u32> = mgr.add_vars(bits_for(p.sigs)).collect();
        let ms = interleave(&mgr, 2, bits_for(p.methods));
        let f1: Vec<u32> = mgr.add_vars(bits_for(p.fields)).collect();
        let vs = interleave(&mgr, 2, bits_for(p.vars));
        let hs = interleave(&mgr, 3, bits_for(p.allocs));
        let c1: Vec<u32> = mgr.add_vars(bits_for(p.call_sites)).collect();
        let _p1: Vec<u32> = mgr.add_vars(1).collect();
        Layout {
            mgr,
            t1: ts[0].clone(),
            t2: ts[1].clone(),
            t3: ts[2].clone(),
            s1,
            m1: ms[0].clone(),
            m2: ms[1].clone(),
            f1,
            v1: vs[0].clone(),
            v2: vs[1].clone(),
            h1: hs[0].clone(),
            h2: hs[1].clone(),
            h3: hs[2].clone(),
            c1,
        }
    }

    fn pair(&self, a: &[u32], av: u64, b: &[u32], bv: u64) -> Bdd {
        self.mgr.encode_value(a, av).and(&self.mgr.encode_value(b, bv))
    }

    fn perm(from: &[u32], to: &[u32]) -> Permutation {
        let pairs: Vec<(u32, u32)> = from.iter().copied().zip(to.iter().copied()).collect();
        Permutation::from_pairs(&pairs)
    }
}

/// The hand-coded analysis result (raw BDDs).
pub struct RawPointsTo {
    /// `pt(V1, H1)`.
    pub pt: Bdd,
    /// `fieldPt(H2, F1, H1)`.
    pub field_pt: Bdd,
    /// `cg(C1, M1)`.
    pub cg: Bdd,
    /// The layout (for decoding).
    pub layout: Layout,
}

impl RawPointsTo {
    /// Decodes `pt` into `(var, obj)` pairs, for validation.
    pub fn pt_pairs(&self) -> Vec<(u64, u64)> {
        decode_pairs(&self.pt, &self.layout.v1, &self.layout.h1)
    }

    /// Decodes `cg` into `(site, method)` pairs.
    pub fn cg_pairs(&self) -> Vec<(u64, u64)> {
        decode_pairs(&self.cg, &self.layout.c1, &self.layout.m1)
    }
}

fn decode_pairs(bdd: &Bdd, a: &[u32], b: &[u32]) -> Vec<(u64, u64)> {
    let mut vars: Vec<u32> = a.iter().chain(b.iter()).copied().collect();
    vars.sort_unstable();
    let pos = |bits: &[u32], assignment: &[bool], vars: &[u32]| -> u64 {
        let mut v = 0u64;
        for &bit in bits {
            let i = vars.binary_search(&bit).expect("bit");
            v = (v << 1) | u64::from(assignment[i]);
        }
        v
    };
    let mut out = Vec::new();
    bdd.foreach_sat(&vars, |asg| {
        out.push((pos(a, asg, &vars), pos(b, asg, &vars)));
        true
    });
    out.sort_unstable();
    out.dedup();
    out
}

/// Runs the hand-coded points-to analysis with an on-the-fly call graph.
/// Mirrors [`crate::pointsto::analyze`] operation for operation, with all
/// physical-domain bookkeeping done by hand (the paper's baseline style).
pub fn analyze(p: &Program) -> RawPointsTo {
    let l = Layout::new(p);
    let mgr = l.mgr.clone();

    // --- Base relations, hand-encoded. ---
    // extend(T1=sub, T2=sup), declares(T2, S1, M1), objtype(H1, T1),
    // news(V1, H1), assigns(V2=dst, V1=src), loads(V2=dst, V1=base, F1),
    // stores(V1=base, F1, V2=src), siteRecv(C1, V1), siteSig(C1, S1),
    // methodThis(M1, V1), methodRet(M1, V1).
    let mut extend = mgr.constant_false();
    for &(s, t) in &p.extend {
        extend = extend.or(&l.pair(&l.t1, s as u64, &l.t2, t as u64));
    }
    let mut declares = mgr.constant_false();
    for &(t, s, m) in &p.declares {
        let x = l
            .pair(&l.t2, t as u64, &l.s1, s as u64)
            .and(&mgr.encode_value(&l.m1, m as u64));
        declares = declares.or(&x);
    }
    let mut objtype = mgr.constant_false();
    for &(a, t) in &p.alloc_type {
        objtype = objtype.or(&l.pair(&l.h1, a as u64, &l.t1, t as u64));
    }
    let mut pt = mgr.constant_false();
    for &(_, v, a) in &p.news {
        pt = pt.or(&l.pair(&l.v1, v as u64, &l.h1, a as u64));
    }
    let mut assigns = mgr.constant_false();
    for &(_, d, s) in &p.assigns {
        assigns = assigns.or(&l.pair(&l.v2, d as u64, &l.v1, s as u64));
    }
    let mut loads = mgr.constant_false();
    for &(_, d, b, ff) in &p.loads {
        let x = l
            .pair(&l.v2, d as u64, &l.v1, b as u64)
            .and(&mgr.encode_value(&l.f1, ff as u64));
        loads = loads.or(&x);
    }
    let mut stores = mgr.constant_false();
    for &(_, b, ff, s) in &p.stores {
        let x = l
            .pair(&l.v1, b as u64, &l.v2, s as u64)
            .and(&mgr.encode_value(&l.f1, ff as u64));
        stores = stores.or(&x);
    }
    let mut site_recv = mgr.constant_false();
    let mut site_sig = mgr.constant_false();
    for c in &p.calls {
        site_recv = site_recv.or(&l.pair(&l.c1, c.site as u64, &l.v1, c.recv as u64));
        site_sig = site_sig.or(&l.pair(&l.c1, c.site as u64, &l.s1, c.sig as u64));
    }
    let mut method_this = mgr.constant_false();
    for &(m, v) in &p.method_this {
        method_this = method_this.or(&l.pair(&l.m1, m as u64, &l.v1, v as u64));
    }
    let mut method_ret = mgr.constant_false();
    for &(m, v) in &p.method_ret {
        method_ret = method_ret.or(&l.pair(&l.m1, m as u64, &l.v1, v as u64));
    }
    // site args / method params with the param index expanded by hand
    // (small position counts; the hand-coded version simply burns one
    // relation pair per position, as the C++ implementation did).
    let max_idx = p
        .method_params
        .iter()
        .map(|&(_, i, _)| i + 1)
        .max()
        .unwrap_or(0);
    let mut site_arg_by_idx: Vec<Bdd> = Vec::new();
    let mut method_param_by_idx: Vec<Bdd> = Vec::new();
    for i in 0..max_idx {
        let mut sa = mgr.constant_false();
        for c in &p.calls {
            if let Some(&a) = c.args.get(i as usize) {
                sa = sa.or(&l.pair(&l.c1, c.site as u64, &l.v1, a as u64));
            }
        }
        site_arg_by_idx.push(sa);
        let mut mp = mgr.constant_false();
        for &(m, idx, v) in &p.method_params {
            if idx == i {
                mp = mp.or(&l.pair(&l.m1, m as u64, &l.v1, v as u64));
            }
        }
        method_param_by_idx.push(mp);
    }
    let mut site_ret = mgr.constant_false();
    for c in &p.calls {
        if let Some(r) = c.ret {
            site_ret = site_ret.or(&l.pair(&l.c1, c.site as u64, &l.v1, r as u64));
        }
    }

    // Precomputed cubes and permutations (the hand-coded style: every
    // replace spelled out).
    let cube_v1 = mgr.cube(&l.v1);
    let cube_h1 = mgr.cube(&l.h1);
    
    let cube_s1 = mgr.cube(&l.s1);
    let cube_t2 = mgr.cube(&l.t2);
    let cube_c1 = mgr.cube(&l.c1);
    let cube_m1 = mgr.cube(&l.m1);
    let cube_f1_h2 = mgr.cube(&[l.f1.clone(), l.h2.clone()].concat());
    let v2_to_v1 = Layout::perm(&l.v2, &l.v1);
    let v1_to_v2 = Layout::perm(&l.v1, &l.v2);
    let h1_to_h2 = Layout::perm(&l.h1, &l.h2);
    let t1_to_t2 = Layout::perm(&l.t1, &l.t2);
    let t3_to_t2 = Layout::perm(&l.t3, &l.t2);
    // extend moved from (T1, T2) to (T2, T3) for the hierarchy walk, in
    // one simultaneous permutation.
    let extend_walk = extend.replace(&Permutation::from_pairs(
        &l.t1
            .iter()
            .copied()
            .zip(l.t2.iter().copied())
            .chain(l.t2.iter().copied().zip(l.t3.iter().copied()))
            .collect::<Vec<_>>(),
    ));

    let mut field_pt = mgr.constant_false(); // (H2, F1, H1)
    let mut cg = mgr.constant_false(); // (C1, M1)
    let mut edges = assigns.clone(); // (V2, V1)

    let mut rounds = 0usize;
    loop {
        rounds += 1;
        // 1. Copy propagation.
        loop {
            // step(V2, H1) = exists V1. edges(V2,V1) & pt(V1,H1)
            let step = edges.and_exists(&pt, &cube_v1);
            let step = step.replace(&v2_to_v1); // dst -> var position
            let next = pt.or(&step);
            if next == pt {
                break;
            }
            pt = next;
        }
        // pt with the object half moved to H2 (base-object form).
        let pt_base = pt.replace(&h1_to_h2); // (V1, H2)

        // 2. Stores: (F1, V2, H2) = exists V1. stores & pt_base; then
        //    (F1, H2, H1) = exists V2. (…)[V2->V1] & pt.
        let st = stores.and_exists(&pt_base, &cube_v1); // (F1, V2, H2)
        let st = st.replace(&v2_to_v1); // src to V1
        let st = st.and_exists(&pt, &cube_v1); // (F1, H2, H1)
        field_pt = field_pt.or(&st);

        // 3. Loads: (V2, F1, H2) = exists V1. loads & pt_base;
        //    (V2, H1) = exists F1,H2. (…) & field_pt.
        let ld = loads.and_exists(&pt_base, &cube_v1);
        let ld = ld.and_exists(&field_pt, &cube_f1_h2);
        let ld = ld.replace(&v2_to_v1);
        let pt_next = pt.or(&ld);

        // 4. Call graph: receiver objects -> types -> dispatch walk.
        // siteObj(C1, H1) = exists V1. site_recv & pt
        let site_objs = site_recv.and_exists(&pt_next, &cube_v1);
        // siteType(C1, T1) = exists H1. site_objs & objtype
        let site_types = site_objs.and_exists(&objtype, &cube_h1);
        // Pair with signatures: (C1, T1, S1).
        let with_sig = site_types.and(&site_sig);
        // Hierarchy walk (Fig. 4 by hand): cursor in T2.
        let mut to_resolve = with_sig.replace(&t1_to_t2); // (C1, T2, S1)
        let mut cg_next = mgr.constant_false();
        loop {
            // resolved(C1, T2, S1, M1) = to_resolve & declares
            let resolved = to_resolve.and(&declares);
            // answer(C1, M1) += exists T2,S1.
            let ans = resolved.exists(&cube_t2).exists(&cube_s1);
            cg_next = cg_next.or(&ans);
            // to_resolve -= exists M1. resolved
            let resolved_sites = resolved.exists(&cube_m1);
            to_resolve = to_resolve.diff(&resolved_sites);
            // Walk up: match the cursor (T2) with extend's subtype side.
            let stepped = to_resolve.and_exists(&extend_walk, &cube_t2); // (C1, T3, S1)
            to_resolve = stepped.replace(&t3_to_t2);
            if to_resolve.is_false() {
                break;
            }
        }

        // 5. Interprocedural edges.
        // this: (V2=this, V1=recv): cg(C1,M1) & method_this(M1,V1->V2),
        //       exists M1; join with site_recv(C1,V1), exists C1.
        let mt_dst = method_this.replace(&v1_to_v2); // (M1, V2)
        let te = cg_next.and_exists(&mt_dst, &cube_m1); // (C1, V2)
        let te = te.and_exists(&site_recv, &cube_c1); // (V2, V1)
        let mut new_edges = te;
        for i in 0..max_idx as usize {
            let mp_dst = method_param_by_idx[i].replace(&v1_to_v2);
            let pe = cg_next.and_exists(&mp_dst, &cube_m1);
            let pe = pe.and_exists(&site_arg_by_idx[i], &cube_c1);
            new_edges = new_edges.or(&pe);
        }
        // ret: src = method_ret var (V1), dst = site_ret var -> V2.
        let re = cg_next.and_exists(&method_ret, &cube_m1); // (C1, V1=retvar)
        let sr_dst = site_ret.replace(&v1_to_v2); // (C1, V2)
        let re = re.and_exists(&sr_dst, &cube_c1); // (V1, V2) with src=V1
        new_edges = new_edges.or(&re);
        let edges_next = edges.or(&new_edges);

        let done = pt_next == pt && cg_next == cg && edges_next == edges;
        pt = pt_next;
        cg = cg_next;
        edges = edges_next;
        if done {
            let _ = rounds;
            return RawPointsTo {
                pt,
                field_pt,
                cg,
                layout: l,
            };
        }
        assert!(rounds < 10_000, "hand-coded points-to failed to converge");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline_sets;
    use crate::synth::Benchmark;

    #[test]
    fn matches_set_baseline() {
        for b in [Benchmark::Tiny, Benchmark::Compress] {
            let p = b.generate();
            let raw = analyze(&p);
            let sets = baseline_sets::points_to(&p);
            let expect_pt: Vec<(u64, u64)> = {
                let mut v: Vec<(u64, u64)> = sets
                    .pt
                    .iter()
                    .map(|&(a, b)| (a as u64, b as u64))
                    .collect();
                v.sort_unstable();
                v
            };
            assert_eq!(raw.pt_pairs(), expect_pt, "pt mismatch on {}", b.name());
            let expect_cg: Vec<(u64, u64)> = {
                let mut v: Vec<(u64, u64)> = sets
                    .cg
                    .iter()
                    .map(|&(a, b)| (a as u64, b as u64))
                    .collect();
                v.sort_unstable();
                v
            };
            assert_eq!(raw.cg_pairs(), expect_cg, "cg mismatch on {}", b.name());
        }
    }
}
