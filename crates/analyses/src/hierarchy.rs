//! The Hierarchy module (paper Fig. 2): reflexive-transitive subtype
//! closure of the `extend` relation.

use crate::facts::Facts;
use jedd_core::{DeltaRel, Fixpoint, JeddError, Relation, Strategy};

/// The computed hierarchy relations.
pub struct Hierarchy {
    /// `(subtype, supertype)` — reflexive-transitive subtyping.
    pub subtype_of: Relation,
}

/// Computes the subtype closure with the default [`Strategy`]
/// (semi-naive):
/// `subtypeOf = identity ∪ extend ∪ (subtypeOf ∘ extend)` to fixpoint.
///
/// # Errors
///
/// Propagates relational-layer errors.
pub fn compute(f: &Facts) -> Result<Hierarchy, JeddError> {
    compute_with(f, Strategy::default())
}

/// [`compute`] under an explicit evaluation strategy.
///
/// # Errors
///
/// Propagates relational-layer errors.
pub fn compute_with(f: &Facts, strategy: Strategy) -> Result<Hierarchy, JeddError> {
    f.u.set_site("hierarchy");
    let hop = |c: &Relation| hop(f, c);
    let initial = initial(f)?;
    match strategy {
        Strategy::Naive => {
            let mut closure = initial;
            let mut fp = Fixpoint::new(&f.u, "hierarchy");
            loop {
                fp.begin_round()?;
                let step = hop(&closure)?;
                let next = closure.union(&step)?;
                let done = next.equals(&closure)?;
                closure = next;
                fp.end_round(&[]);
                if done {
                    return Ok(Hierarchy { subtype_of: closure });
                }
            }
        }
        Strategy::SemiNaive => {
            let mut closure = DeltaRel::new("subtype_of", initial);
            let mut fp = Fixpoint::new(&f.u, "hierarchy");
            while closure.has_delta() {
                fp.begin_round()?;
                let step = fp.rule("hop", || hop(closure.delta()))?;
                closure.absorb(&step)?;
                fp.end_round(&[&closure]);
            }
            Ok(Hierarchy {
                subtype_of: closure.into_current(),
            })
        }
    }
}

/// One closure step, shared by both strategies and the checkpointed
/// driver: `step(subtype, supertype) = ∃m. c(subtype, m) ∧ extend(m,
/// supertype)`. The middle moves onto T3 so the composition has three
/// distinct domains (the standard closure layout).
pub(crate) fn hop(f: &Facts, c: &Relation) -> Result<Relation, JeddError> {
    let mid = c
        .rename(f.supertype, f.tgttype)?
        .with_assignment(&[(f.tgttype, f.t3)])?;
    let ext_mid = f.extend.rename(f.subtype, f.tgttype)?;
    mid.compose(&[f.tgttype], &ext_mid, &[f.tgttype])
}

/// The closure seed: `identity ∪ extend`.
pub(crate) fn initial(f: &Facts) -> Result<Relation, JeddError> {
    f.type_identity()?.union(&f.extend)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Program;
    use crate::synth::Benchmark;

    fn chain_program(n: u32) -> Program {
        Program {
            types: n as usize,
            sigs: 1,
            methods: 1,
            fields: 1,
            vars: 1,
            allocs: 1,
            call_sites: 0,
            extend: (1..n).map(|t| (t, t - 1)).collect(),
            declares: vec![(0, 0, 0)],
            alloc_type: vec![(0, 0)],
            method_this: vec![(0, 0)],
            entry_points: vec![0],
            ..Program::default()
        }
    }

    #[test]
    fn chain_closure_is_triangular() {
        let p = chain_program(6);
        let f = Facts::load(&p).unwrap();
        let h = compute(&f).unwrap();
        // Chain 0 <- 1 <- ... <- 5: closure size = 6 + 5 + ... + 1 = 21.
        assert_eq!(h.subtype_of.size(), 21);
        assert!(h.subtype_of.contains(&[5, 0]));
        assert!(h.subtype_of.contains(&[3, 3]));
        assert!(!h.subtype_of.contains(&[0, 5]));
    }

    #[test]
    fn strategies_agree_bit_identically() {
        let p = Benchmark::Compress.generate();
        let f = Facts::load(&p).unwrap();
        let naive = compute_with(&f, Strategy::Naive).unwrap();
        let semi = compute_with(&f, Strategy::SemiNaive).unwrap();
        assert!(semi.subtype_of.equals(&naive.subtype_of).unwrap());
    }

    #[test]
    fn closure_matches_reference_on_benchmark() {
        let p = Benchmark::Tiny.generate();
        let f = Facts::load(&p).unwrap();
        let h = compute(&f).unwrap();
        for t in 0..p.types as u32 {
            for sup in p.supertype_chain(t) {
                assert!(
                    h.subtype_of.contains(&[t as u64, sup as u64]),
                    "{t} <: {sup} missing"
                );
            }
        }
        // Count must equal the sum of chain lengths (trees have unique
        // paths).
        let expect: usize = (0..p.types as u32)
            .map(|t| p.supertype_chain(t).len())
            .sum();
        assert_eq!(h.subtype_of.size() as usize, expect);
    }
}
