//! The Call Graph module (paper Fig. 2): method-level call edges and
//! reachability, derived from the points-to result and virtual call
//! resolution.

use crate::facts::Facts;
use jedd_core::{DeltaRel, Fixpoint, JeddError, Relation, Strategy};

/// The computed call graph.
pub struct CallGraph {
    /// `(site, method)` — resolved call targets.
    pub site_targets: Relation,
    /// `(caller, method)` — method-level call edges.
    pub edges: Relation,
    /// `(method)` — methods reachable from the entry points.
    pub reachable: Relation,
}

/// Builds the call graph from `(site, method)` targets with the default
/// [`Strategy`] (semi-naive).
///
/// # Errors
///
/// Propagates relational-layer errors.
pub fn build(f: &Facts, site_targets: &Relation) -> Result<CallGraph, JeddError> {
    build_with(f, site_targets, Strategy::default())
}

/// [`build`] under an explicit evaluation strategy.
///
/// # Errors
///
/// Propagates relational-layer errors.
pub fn build_with(
    f: &Facts,
    site_targets: &Relation,
    strategy: Strategy,
) -> Result<CallGraph, JeddError> {
    f.u.set_site("callgraph");
    let edges = derive_edges(f, site_targets)?;
    let callees = |r: &Relation| callees(f, &edges, r);

    // reachable = entry ∪ targets of reachable callers, to fixpoint.
    let reachable = match strategy {
        Strategy::Naive => {
            let mut reachable = f.entry.clone();
            let mut fp = Fixpoint::new(&f.u, "callgraph");
            loop {
                fp.begin_round()?;
                let step = callees(&reachable)?;
                let next = reachable.union(&step)?;
                let done = next.equals(&reachable)?;
                reachable = next;
                fp.end_round(&[]);
                if done {
                    break reachable;
                }
            }
        }
        Strategy::SemiNaive => {
            let mut reach = DeltaRel::new("reachable", f.entry.clone());
            let mut fp = Fixpoint::new(&f.u, "callgraph");
            while reach.has_delta() {
                fp.begin_round()?;
                let step = fp.rule("callees", || callees(reach.delta()))?;
                reach.absorb(&step)?;
                fp.end_round(&[&reach]);
            }
            reach.into_current()
        }
    };
    Ok(CallGraph {
        site_targets: site_targets.clone(),
        edges,
        reachable,
    })
}

/// `edges(caller, method) = ∃site. site_caller(site, caller) ∧
/// site_targets(site, method)` — shared by both strategies and the
/// checkpointed driver.
pub(crate) fn derive_edges(f: &Facts, site_targets: &Relation) -> Result<Relation, JeddError> {
    f.site_caller.compose(&[f.site], site_targets, &[f.site])
}

/// Callees of the methods in `r`: rename the method to caller, compose
/// with edges over caller.
pub(crate) fn callees(f: &Facts, edges: &Relation, r: &Relation) -> Result<Relation, JeddError> {
    let as_caller = r
        .rename(f.method, f.caller)?
        .with_assignment(&[(f.caller, f.m2)])?;
    as_caller.compose(&[f.caller], edges, &[f.caller])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pointsto::{analyze, CallGraphMode};
    use crate::synth::Benchmark;
    use crate::{baseline_sets, facts::Facts};
    use std::collections::BTreeSet;

    #[test]
    fn edges_match_set_baseline() {
        let p = Benchmark::Tiny.generate();
        let f = Facts::load(&p).unwrap();
        let ptres = analyze(&f, CallGraphMode::OnTheFly).unwrap();
        let cg = build(&f, &ptres.cg).unwrap();

        let sets = baseline_sets::points_to(&p);
        // edges column order is (method, caller) — attribute-registration
        // order; normalise to (caller, callee).
        let mut expect: BTreeSet<(u64, u64)> = BTreeSet::new();
        for &(site, m) in &sets.cg {
            let caller = p.calls.iter().find(|c| c.site == site).unwrap().caller;
            expect.insert((caller as u64, m as u64));
        }
        let got: BTreeSet<(u64, u64)> = cg
            .edges
            .tuples()
            .into_iter()
            .map(|t| (t[1], t[0]))
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn strategies_agree_bit_identically() {
        let p = Benchmark::Compress.generate();
        let f = Facts::load(&p).unwrap();
        let ptres = analyze(&f, CallGraphMode::OnTheFly).unwrap();
        let naive = build_with(&f, &ptres.cg, Strategy::Naive).unwrap();
        let semi = build_with(&f, &ptres.cg, Strategy::SemiNaive).unwrap();
        assert!(semi.reachable.equals(&naive.reachable).unwrap());
        assert!(semi.edges.equals(&naive.edges).unwrap());
    }

    #[test]
    fn reachable_contains_entries_and_grows_along_edges() {
        let p = Benchmark::Compress.generate();
        let f = Facts::load(&p).unwrap();
        let ptres = analyze(&f, CallGraphMode::OnTheFly).unwrap();
        let cg = build(&f, &ptres.cg).unwrap();
        for &m in &p.entry_points {
            assert!(cg.reachable.contains(&[m as u64]));
        }
        // Closure property: a callee of a reachable method is reachable.
        for t in cg.edges.tuples() {
            let (callee, caller) = (t[0], t[1]);
            if cg.reachable.contains(&[caller]) {
                assert!(cg.reachable.contains(&[callee]));
            }
        }
    }
}
