//! # jedd-analyses
//!
//! The five interrelated whole-program analyses of the Jedd paper
//! (Lhoták & Hendren, PLDI 2004, Fig. 2 and §5), over a mini Java IR:
//!
//! * [`hierarchy`] — subtype closure of the `extend` relation;
//! * [`vcr`] — virtual call resolution, the paper's Fig. 4 algorithm;
//! * [`pointsto`] — subset-based points-to analysis with an on-the-fly
//!   call graph (Berndl et al. \[5\]);
//! * [`callgraph`] — method-level call edges and reachability;
//! * [`sideeffect`] — direct and transitive read/write sets.
//!
//! Substrates:
//!
//! * [`ir`] — the fact-based program representation;
//! * [`synth`] — seeded synthetic program generation at benchmark scales
//!   named after the paper's Table 2 benchmarks;
//! * [`facts`] — loading programs into Jedd relations;
//! * [`baseline_sets`] — explicit-set reference implementations (ground
//!   truth, and the "pure Java" side of the paper's §5 code-size claim);
//! * [`baseline_bdd`] — the hand-coded direct-BDD points-to analysis that
//!   plays the paper's Table 2 C++ baseline;
//! * [`driver`] — runs all five analyses together;
//! * [`jedd_src`] — the analyses as mini-Jedd sources compiled by
//!   `jeddc` (the input to the paper's Table 1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline_bdd;
pub mod baseline_sets;
pub mod callgraph;
pub mod driver;
pub mod facts;
pub mod hierarchy;
pub mod ir;
pub mod jedd_src;
pub mod persist;
pub mod pointsto;
pub mod sideeffect;
pub mod synth;
pub mod vcr;
