//! The Virtual Call Resolution module — the paper's running example
//! (Fig. 4), generalised over call sites: given the types reaching each
//! receiver and each site's signature, find the target method by walking
//! up the class hierarchy.

use crate::facts::Facts;
use jedd_core::{Fixpoint, JeddError, Relation};

/// Resolves virtual calls.
///
/// * `site_types` — `(site, type)`: the possible runtime types of each
///   site's receiver (from points-to, or from a type analysis).
///
/// Returns `(site, method)` pairs. Exactly the Fig. 4 loop with `site`
/// alongside the receiver-type key.
///
/// The loop is inherently semi-naive: `toResolve` is a worklist that
/// shrinks as cursors resolve and walks up the hierarchy otherwise, so
/// every round already touches only a frontier. Resolution is pointwise
/// in `(site, type)`, so callers holding a growing `site_types` may
/// resolve just its delta and union the answers.
///
/// # Errors
///
/// Propagates relational-layer errors, and a divergence error (through
/// the [`Fixpoint`] round bound) if the hierarchy walk never terminates —
/// e.g. an `extend` cycle none of whose types declares the signature.
pub fn resolve(f: &Facts, site_types: &Relation) -> Result<Relation, JeddError> {
    f.u.set_site("vcr");
    let (mut to_resolve, mut answer) = init(f, site_types)?;
    let mut fp = Fixpoint::new(&f.u, "vcr");
    // Line 5-11 of Fig. 4.
    loop {
        fp.begin_round()?;
        let (tr, ans) = round(f, &to_resolve, &answer)?;
        to_resolve = tr;
        answer = ans;
        fp.end_round(&[]);
        if to_resolve.is_empty() {
            return Ok(answer);
        }
    }
}

/// Builds the initial `(to_resolve, answer)` pair:
/// `toResolve(site, signature, tgttype)` pairs each receiver type with
/// its site's signature and starts the walk at the receiver type itself
/// (the paper's attribute-copy is implicit: `type` is copied into the
/// cursor attribute `tgttype`); `answer` starts empty.
pub(crate) fn init(
    f: &Facts,
    site_types: &Relation,
) -> Result<(Relation, Relation), JeddError> {
    let with_sig = site_types.join(&[f.site], &f.site_sig, &[f.site])?;
    let to_resolve = with_sig
        .rename(f.ty, f.tgttype)?
        .with_assignment(&[(f.tgttype, f.t2)])?;
    let answer = Relation::empty(
        &f.u,
        &[(f.site, f.c1), (f.method, f.m1)],
    )?;
    Ok((to_resolve, answer))
}

/// One resolution round: resolve cursors whose current type declares the
/// signature, union them into the answer, and walk the rest one level up
/// the hierarchy. Returns the next `(to_resolve, answer)` pair.
pub(crate) fn round(
    f: &Facts,
    to_resolve: &Relation,
    answer: &Relation,
) -> Result<(Relation, Relation), JeddError> {
    // resolved = toResolve{tgttype, signature} >< declares{type, signature}
    let resolved = to_resolve.join(
        &[f.tgttype, f.signature],
        &f.declares,
        &[f.ty, f.signature],
    )?;
    // answer |= resolved (projected onto the output schema).
    let answer = answer.union(&resolved.project_onto(&[f.site, f.method])?)?;
    // toResolve -= (method=>) resolved.
    let to_resolve = to_resolve.minus(&resolved.project_away(&[f.method])?)?;
    // Walk up: replace tgttype with its immediate superclass.
    let stepped = to_resolve.compose(&[f.tgttype], &f.extend, &[f.subtype])?;
    let to_resolve = stepped
        .rename(f.supertype, f.tgttype)?
        .with_assignment(&[(f.tgttype, f.t2)])?;
    Ok((to_resolve, answer))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Call, Program};
    use crate::synth::Benchmark;

    /// The paper's Fig. 4 example as an IR program: Object(0) <- A(1) <-
    /// B(2); A declares foo (m0), B declares bar (m1); two calls with
    /// receiver type B.
    fn fig4_program() -> Program {
        Program {
            types: 3,
            sigs: 2,
            methods: 2,
            fields: 1,
            vars: 2,
            allocs: 1,
            call_sites: 2,
            extend: vec![(1, 0), (2, 1)],
            declares: vec![(1, 0, 0), (2, 1, 1)],
            alloc_type: vec![(0, 2)],
            method_this: vec![(0, 0), (1, 1)],
            calls: vec![
                Call {
                    caller: 0,
                    site: 0,
                    recv: 0,
                    sig: 0,
                    args: vec![],
                    ret: None,
                },
                Call {
                    caller: 0,
                    site: 1,
                    recv: 0,
                    sig: 1,
                    args: vec![],
                    ret: None,
                },
            ],
            entry_points: vec![0],
            ..Program::default()
        }
    }

    #[test]
    fn figure4_example_resolves() {
        let p = fig4_program();
        let f = Facts::load(&p).unwrap();
        // Receiver type B (=2) at both sites.
        let site_types = Relation::from_tuples(
            &f.u,
            &[(f.site, f.c1), (f.ty, f.t1)],
            &[vec![0, 2], vec![1, 2]],
        )
        .unwrap();
        let answer = resolve(&f, &site_types).unwrap();
        assert_eq!(answer.size(), 2);
        // Tuple column order is attribute-registration order: (method,
        // site). Site 0 (foo) -> A.foo (m0) found one level up; site 1
        // (bar) -> B.bar (m1) found immediately.
        assert!(answer.contains(&[0, 0]));
        assert!(answer.contains(&[1, 1]));
    }

    #[test]
    fn unresolvable_signature_yields_nothing() {
        let mut p = fig4_program();
        p.declares.clear(); // nothing implements anything
        let f = Facts::load(&p).unwrap();
        let site_types = Relation::from_tuples(
            &f.u,
            &[(f.site, f.c1), (f.ty, f.t1)],
            &[vec![0, 2]],
        )
        .unwrap();
        let answer = resolve(&f, &site_types).unwrap();
        assert!(answer.is_empty());
    }

    #[test]
    fn matches_reference_dispatch_on_benchmark() {
        let p = Benchmark::Tiny.generate();
        let f = Facts::load(&p).unwrap();
        // Give every site every type (worst case) and compare against the
        // reference dispatcher.
        let mut tuples = Vec::new();
        for c in &p.calls {
            for t in 0..p.types as u32 {
                tuples.push(vec![c.site as u64, t as u64]);
            }
        }
        let site_types =
            Relation::from_tuples(&f.u, &[(f.site, f.c1), (f.ty, f.t1)], &tuples).unwrap();
        let answer = resolve(&f, &site_types).unwrap();
        for c in &p.calls {
            for t in 0..p.types as u32 {
                let expect = p.dispatch(t, c.sig);
                if let Some(m) = expect {
                    // Column order: (method, site).
                    assert!(
                        answer.contains(&[m as u64, c.site as u64]),
                        "site {} type {t} should reach method {m}",
                        c.site
                    );
                }
            }
        }
        // No spurious methods: every answer pair is justified by some type.
        for t in answer.tuples() {
            let (m, site) = (t[0] as u32, t[1] as u32);
            let c = p.calls.iter().find(|c| c.site == site).unwrap();
            let justified =
                (0..p.types as u32).any(|ty| p.dispatch(ty, c.sig) == Some(m));
            assert!(justified, "answer ({site}, {m}) unjustified");
        }
    }
}
