//! Determinism of the whole points-to analysis under the parallel apply
//! engine: the same program analysed at `JEDD_THREADS` = 1, 2 and 4 must
//! produce tuple-identical `pt`/`cg` relations, the same live node count
//! after a full collection, and — for any two thread counts >= 2 —
//! bit-identical node ids. The semi-naive engine must also keep agreeing
//! with the naive oracle when both run on the parallel kernel.

use jedd_analyses::facts::Facts;
use jedd_analyses::pointsto::{self, CallGraphMode, PointsTo};
use jedd_analyses::synth::Benchmark;
use jedd_core::Strategy;
use std::collections::BTreeSet;

struct Run {
    facts: Facts,
    result: PointsTo,
}

fn analyse(threads: usize, strategy: Strategy) -> Run {
    let p = Benchmark::Compress.generate();
    let facts = Facts::load(&p).expect("fact loading is unbudgeted");
    let mgr = facts.u.bdd_manager();
    mgr.set_threads(threads);
    // Benchmark-sized operands sit below the production cutoff; lower it
    // so the parallel engine actually engages.
    mgr.set_par_cutoff(64);
    let result = pointsto::analyze_with(&facts, CallGraphMode::OnTheFly, strategy)
        .expect("unbudgeted analysis cannot fail");
    Run { facts, result }
}

fn tuples(r: &jedd_core::Relation) -> BTreeSet<Vec<u64>> {
    r.tuples().into_iter().collect()
}

#[test]
fn pointsto_identical_across_thread_counts() {
    let r1 = analyse(1, Strategy::SemiNaive);
    let r2 = analyse(2, Strategy::SemiNaive);
    let r4 = analyse(4, Strategy::SemiNaive);
    // Semantic determinism across ALL thread counts: identical tuples.
    for (a, b, name) in [
        (&r1.result.pt, &r2.result.pt, "pt 1v2"),
        (&r1.result.pt, &r4.result.pt, "pt 1v4"),
        (&r1.result.cg, &r2.result.cg, "cg 1v2"),
        (&r1.result.cg, &r4.result.cg, "cg 1v4"),
        (&r1.result.field_pt, &r4.result.field_pt, "field_pt 1v4"),
    ] {
        assert_eq!(tuples(a), tuples(b), "{name}");
    }
    assert_eq!(r1.result.iterations, r2.result.iterations);
    assert_eq!(r1.result.iterations, r4.result.iterations);

    // Bit-for-bit determinism between thread counts >= 2: the parallel
    // engine mints identical node ids regardless of worker count.
    assert_eq!(r2.result.pt.bdd().raw_id(), r4.result.pt.bdd().raw_id());
    assert_eq!(r2.result.cg.bdd().raw_id(), r4.result.cg.bdd().raw_id());
    assert_eq!(
        r2.result.field_pt.bdd().raw_id(),
        r4.result.field_pt.bdd().raw_id()
    );

    // The engine must actually have run in parallel for this to mean
    // anything.
    let s4 = r4.facts.u.bdd_manager().kernel_stats();
    assert!(s4.par_ops > 0, "cutoff 64 should engage the parallel engine");
    assert_eq!(
        r1.facts.u.bdd_manager().kernel_stats().par_ops,
        0,
        "threads=1 must stay on the sequential path"
    );

    // After a full collection only the canonical DAGs of the live
    // functions remain — identical for every thread count.
    for run in [&r1, &r2, &r4] {
        run.facts.u.bdd_manager().gc();
    }
    let live1 = r1.facts.u.bdd_manager().live_nodes();
    let live2 = r2.facts.u.bdd_manager().live_nodes();
    let live4 = r4.facts.u.bdd_manager().live_nodes();
    assert_eq!(live1, live2, "live nodes after gc, threads 1 vs 2");
    assert_eq!(live1, live4, "live nodes after gc, threads 1 vs 4");
}

#[test]
fn seminaive_agrees_with_naive_under_threads() {
    let semi = analyse(4, Strategy::SemiNaive);
    let naive = analyse(4, Strategy::Naive);
    assert_eq!(tuples(&semi.result.pt), tuples(&naive.result.pt), "pt");
    assert_eq!(tuples(&semi.result.cg), tuples(&naive.result.cg), "cg");
    assert_eq!(
        tuples(&semi.result.field_pt),
        tuples(&naive.result.field_pt),
        "field_pt"
    );
}
