//! Determinism of the whole points-to analysis under the parallel
//! kernel: the same program analysed at `JEDD_THREADS` = 1, 2, 4 and 8
//! must produce tuple-identical `pt`/`cg`/`field_pt` relations and the
//! same live node count after a full collection. Node *ids* are only
//! promised at threads = 1 — the shared concurrent unique table hands
//! out fresh ids in CAS order — so the cross-thread-count comparison is
//! over tuples, never raw ids. The semi-naive engine must also keep
//! agreeing with the naive oracle when both run on the parallel kernel.

use jedd_analyses::facts::Facts;
use jedd_analyses::pointsto::{self, CallGraphMode, PointsTo};
use jedd_analyses::synth::Benchmark;
use jedd_core::Strategy;
use std::collections::BTreeSet;

struct Run {
    facts: Facts,
    result: PointsTo,
}

fn analyse(threads: usize, strategy: Strategy) -> Run {
    let p = Benchmark::Compress.generate();
    let facts = Facts::load(&p).expect("fact loading is unbudgeted");
    let mgr = facts.u.bdd_manager();
    mgr.set_threads(threads);
    // Benchmark-sized operands sit below the production cutoff; lower it
    // so the parallel engine actually engages.
    mgr.set_par_cutoff(64);
    let result = pointsto::analyze_with(&facts, CallGraphMode::OnTheFly, strategy)
        .expect("unbudgeted analysis cannot fail");
    Run { facts, result }
}

fn tuples(r: &jedd_core::Relation) -> BTreeSet<Vec<u64>> {
    r.tuples().into_iter().collect()
}

#[test]
fn pointsto_identical_across_thread_counts() {
    let base = analyse(1, Strategy::SemiNaive);
    let runs: Vec<(usize, Run)> = [2, 4, 8]
        .into_iter()
        .map(|t| (t, analyse(t, Strategy::SemiNaive)))
        .collect();
    // Semantic determinism across ALL thread counts: identical tuples.
    let want_pt = tuples(&base.result.pt);
    let want_cg = tuples(&base.result.cg);
    let want_field = tuples(&base.result.field_pt);
    for (t, run) in &runs {
        assert_eq!(want_pt, tuples(&run.result.pt), "pt 1v{t}");
        assert_eq!(want_cg, tuples(&run.result.cg), "cg 1v{t}");
        assert_eq!(want_field, tuples(&run.result.field_pt), "field_pt 1v{t}");
        assert_eq!(base.result.iterations, run.result.iterations, "rounds 1v{t}");
    }

    // The engine must actually have run in parallel for this to mean
    // anything — except on chain-reduced managers (JEDD_CHAIN=1), which
    // keep the parallel path off by design; there the tuple comparison
    // above verifies thread counts are an invisible no-op instead.
    let chained = base.facts.u.bdd_manager().chain_mode();
    for (t, run) in &runs {
        let s = run.facts.u.bdd_manager().kernel_stats();
        assert_eq!(
            s.par_ops > 0,
            !chained,
            "cutoff 64 should engage the parallel engine at {t} threads iff not chained"
        );
    }
    assert_eq!(
        base.facts.u.bdd_manager().kernel_stats().par_ops,
        0,
        "threads=1 must stay on the sequential path"
    );

    // After a full collection only the canonical DAGs of the live
    // functions remain — identical for every thread count.
    base.facts.u.bdd_manager().gc();
    let live1 = base.facts.u.bdd_manager().live_nodes();
    for (t, run) in &runs {
        run.facts.u.bdd_manager().gc();
        let live = run.facts.u.bdd_manager().live_nodes();
        assert_eq!(live1, live, "live nodes after gc, threads 1 vs {t}");
    }
}

#[test]
fn seminaive_agrees_with_naive_under_threads() {
    let semi = analyse(4, Strategy::SemiNaive);
    let naive = analyse(4, Strategy::Naive);
    assert_eq!(tuples(&semi.result.pt), tuples(&naive.result.pt), "pt");
    assert_eq!(tuples(&semi.result.cg), tuples(&naive.result.cg), "cg");
    assert_eq!(
        tuples(&semi.result.field_pt),
        tuples(&naive.result.field_pt),
        "field_pt"
    );
}
