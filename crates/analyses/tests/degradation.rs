//! Graceful degradation: a budget-starved whole-program run must still
//! complete — falling back to the explicit-set implementations — and must
//! produce exactly the results of the unbudgeted BDD run.

use jedd_analyses::driver;
use jedd_analyses::synth::Benchmark;
use jedd_bdd::{Budget, CancelToken};
use jedd_core::Relation;
use std::collections::BTreeSet;

fn tuple_set(r: &Relation) -> BTreeSet<Vec<u64>> {
    r.tuples().into_iter().collect()
}

/// Asserts every result relation of `a` equals the corresponding one of
/// `b`, comparing tuple sets (the two runs use separate universes, and a
/// degraded run may pick different physical domains).
fn assert_same_results(a: &driver::WholeProgram, b: &driver::WholeProgram) {
    assert_eq!(
        tuple_set(&a.hierarchy.subtype_of),
        tuple_set(&b.hierarchy.subtype_of),
        "hierarchy"
    );
    assert_eq!(tuple_set(&a.points_to.pt), tuple_set(&b.points_to.pt), "pt");
    assert_eq!(
        tuple_set(&a.points_to.field_pt),
        tuple_set(&b.points_to.field_pt),
        "field_pt"
    );
    assert_eq!(tuple_set(&a.points_to.cg), tuple_set(&b.points_to.cg), "cg");
    assert_eq!(
        tuple_set(&a.call_graph.edges),
        tuple_set(&b.call_graph.edges),
        "call-graph edges"
    );
    assert_eq!(
        tuple_set(&a.call_graph.reachable),
        tuple_set(&b.call_graph.reachable),
        "reachable"
    );
    assert_eq!(
        tuple_set(&a.side_effects.reads),
        tuple_set(&b.side_effects.reads),
        "reads"
    );
    assert_eq!(
        tuple_set(&a.side_effects.writes),
        tuple_set(&b.side_effects.writes),
        "writes"
    );
    assert_eq!(
        tuple_set(&a.side_effects.reads_star),
        tuple_set(&b.side_effects.reads_star),
        "reads*"
    );
    assert_eq!(
        tuple_set(&a.side_effects.writes_star),
        tuple_set(&b.side_effects.writes_star),
        "writes*"
    );
}

#[test]
fn unlimited_budget_never_degrades() {
    let p = Benchmark::Tiny.generate();
    let r = driver::run_with_budget(&p, Budget::unlimited()).expect("unbudgeted run");
    assert!(r.degraded_phases.is_empty());
}

#[test]
fn step_starved_run_degrades_and_matches_unbudgeted() {
    let p = Benchmark::Tiny.generate();
    let full = driver::run(&p).expect("unbudgeted run");
    assert!(full.degraded_phases.is_empty());

    // A 10-step budget starves every analysis phase almost immediately.
    let starved = driver::run_with_budget(&p, Budget::unlimited().with_max_steps(10))
        .expect("budget-starved run must still complete via the set fallback");
    assert!(
        !starved.degraded_phases.is_empty(),
        "a 10-step budget must force at least one fallback"
    );
    assert!(
        starved.degraded_phases.contains(&"pointsto")
            || starved.degraded_phases.contains(&"hierarchy"),
        "the early phases must be among the degraded ones: {:?}",
        starved.degraded_phases
    );
    assert_same_results(&full, &starved);
}

#[test]
fn node_starved_run_degrades_and_matches_unbudgeted() {
    let p = Benchmark::Tiny.generate();
    let full = driver::run(&p).expect("unbudgeted run");

    // A node limit below what the fact base already occupies cannot be
    // recovered by the GC/reorder ladder, so every phase must fall back.
    let starved = driver::run_with_budget(&p, Budget::unlimited().with_max_live_nodes(16))
        .expect("node-starved run must still complete via the set fallback");
    assert!(!starved.degraded_phases.is_empty());
    assert_same_results(&full, &starved);
}

#[test]
fn generous_budget_runs_on_bdds_and_matches() {
    let p = Benchmark::Tiny.generate();
    let full = driver::run(&p).expect("unbudgeted run");
    let budgeted = driver::run_with_budget(
        &p,
        Budget::unlimited()
            .with_max_steps(10_000_000)
            .with_max_live_nodes(10_000_000),
    )
    .expect("generous budget");
    assert!(
        budgeted.degraded_phases.is_empty(),
        "a generous budget must not degrade: {:?}",
        budgeted.degraded_phases
    );
    assert_same_results(&full, &budgeted);
}

#[test]
fn cancellation_aborts_instead_of_degrading() {
    let p = Benchmark::Tiny.generate();
    let token = CancelToken::new();
    token.cancel();
    let budget = Budget::unlimited()
        // Probe the token on every step, not every 1024th.
        .with_max_steps(u64::MAX)
        .with_cancel(token);
    let r = driver::run_with_budget(&p, budget);
    match r {
        Err(jedd_core::JeddError::ResourceExhausted { cause, .. }) => {
            assert_eq!(cause, jedd_bdd::BddError::Cancelled);
        }
        Err(e) => panic!("expected cancellation, got {e}"),
        Ok(w) => assert!(
            // Cancellation is only observed at the 1024-step probe
            // interval; tiny programs may finish a phase without ever
            // probing. If the run completed, it must not have degraded
            // (degrading on cancel is the bug this test guards against).
            w.degraded_phases.is_empty(),
            "a cancelled run must never fall back: {:?}",
            w.degraded_phases
        ),
    }
}
