//! The warm-start path of the order lab: learn an order on a cold run,
//! persist it, and verify a warm run under the persisted order is
//! tuple-identical, sift-free, and works on every backend.

use jedd_analyses::facts::Facts;
use jedd_analyses::persist::{learn_and_save_order, load_learned_order, order_record_path};
use jedd_analyses::pointsto::{self, CallGraphMode};
use jedd_analyses::synth::Benchmark;
use jedd_core::Backend;
use std::collections::BTreeSet;

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("jedd-order-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn tuple_set(r: &jedd_core::Relation) -> BTreeSet<Vec<u64>> {
    r.tuples().into_iter().collect()
}

#[test]
fn learned_order_warm_start_is_tuple_identical_and_sift_free() {
    let d = tmpdir("warm");
    let p = Benchmark::Tiny.generate();

    // Cold run: explicit plain backend, then the order-search lab.
    let f = Facts::load_configured(&p, Backend::Bdd, None).unwrap();
    let cold = pointsto::analyze(&f, CallGraphMode::OnTheFly).unwrap();
    assert!(f.u.bdd_manager().kernel_stats().sift_sweeps == 0);
    let (record, (before, after)) =
        learn_and_save_order(&d, "pointsto-tiny", &f, 2, 0xBEEF).unwrap();
    assert!(after <= before, "search must not worsen the arena");
    assert!(
        f.u.bdd_manager().kernel_stats().sift_sweeps > 0,
        "the cold search performs sifting sweeps"
    );
    assert_eq!(record.backend, Backend::Bdd);
    assert!(order_record_path(&d, "pointsto-tiny").exists());

    // Warm run: reload the record, install the order before building, and
    // verify no sweep ever happens and the result is identical.
    let rec = load_learned_order(&d, "pointsto-tiny")
        .unwrap()
        .expect("record was saved");
    assert_eq!(rec, record);
    let f2 = Facts::load_configured(&p, rec.backend, Some(&rec.level2var)).unwrap();
    assert_eq!(f2.u.bdd_manager().current_order(), rec.level2var);
    let warm = pointsto::analyze(&f2, CallGraphMode::OnTheFly).unwrap();
    assert_eq!(
        f2.u.bdd_manager().kernel_stats().sift_sweeps,
        0,
        "a warm run performs zero sifting sweeps"
    );
    assert_eq!(tuple_set(&warm.pt), tuple_set(&cold.pt));
    assert_eq!(tuple_set(&warm.field_pt), tuple_set(&cold.field_pt));
    assert_eq!(tuple_set(&warm.cg), tuple_set(&cold.cg));

    // The same learned order warm-starts the chain-reduced backend: the
    // kernel is order-static there, so starting from a good order is the
    // only ordering lever — and results stay tuple-identical.
    let f3 = Facts::load_configured(&p, Backend::Cbdd, Some(&rec.level2var)).unwrap();
    assert!(f3.u.bdd_manager().chain_mode());
    let chained = pointsto::analyze(&f3, CallGraphMode::OnTheFly).unwrap();
    assert_eq!(f3.u.bdd_manager().kernel_stats().sift_sweeps, 0);
    assert_eq!(tuple_set(&chained.pt), tuple_set(&cold.pt));
    assert!(
        chained.pt.node_count() <= warm.pt.node_count(),
        "chain reduction must not grow the result: cbdd {} bdd {}",
        chained.pt.node_count(),
        warm.pt.node_count()
    );

    // A missing record is a clean cold start, not an error.
    assert!(load_learned_order(&d, "absent").unwrap().is_none());
    let _ = std::fs::remove_dir_all(&d);
}

#[test]
fn load_configured_rejects_wrong_sized_orders() {
    let p = Benchmark::Tiny.generate();
    let bad = vec![0u32, 1, 2];
    let err = match Facts::load_configured(&p, Backend::Bdd, Some(&bad)) {
        Ok(_) => panic!("a wrong-sized order must not load"),
        Err(e) => e,
    };
    assert!(
        matches!(err, jedd_core::JeddError::InvalidRestore { .. }),
        "{err}"
    );
}

#[test]
fn zdd_storage_backends_count_fewer_or_equal_nodes() {
    // The four-backend matrix on one program: identical tuples, and the
    // storage accounting is well-defined for each backend.
    let p = Benchmark::Tiny.generate();
    let baseline = {
        let f = Facts::load_configured(&p, Backend::Bdd, None).unwrap();
        pointsto::analyze(&f, CallGraphMode::OnTheFly).unwrap()
    };
    for backend in [Backend::Bdd, Backend::Cbdd, Backend::Zdd, Backend::Czdd] {
        let f = Facts::load_configured(&p, backend, None).unwrap();
        assert_eq!(f.u.backend(), backend);
        let got = pointsto::analyze(&f, CallGraphMode::OnTheFly).unwrap();
        assert_eq!(
            tuple_set(&got.pt),
            tuple_set(&baseline.pt),
            "backend {backend}"
        );
        let nodes = got.pt.storage_nodes();
        assert!(nodes > 0, "backend {backend} reports live storage");
        if backend == Backend::Cbdd {
            assert!(
                nodes <= baseline.pt.node_count(),
                "cbdd {} > bdd {}",
                nodes,
                baseline.pt.node_count()
            );
        }
    }
}
