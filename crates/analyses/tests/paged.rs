//! Analysis-level paged-vs-resident differential: the Table 2 analyses
//! (hierarchy, points-to, call graph, side effects) run on a universe
//! whose node arena pages to disk under a resident-frame budget far
//! below the peak live node count, and must land tuple-identical to the
//! fully-resident run — the larger-than-RAM contract of the pager.

use jedd_analyses::facts::Facts;
use jedd_analyses::pointsto::{self, CallGraphMode};
use jedd_analyses::synth::Benchmark;
use jedd_analyses::{callgraph, hierarchy, sideeffect};
use jedd_core::Relation;
use std::collections::BTreeSet;

type TupleSet = BTreeSet<Vec<u64>>;

fn ts(r: &Relation) -> TupleSet {
    r.tuples().into_iter().collect()
}

/// Runs the four Table 2 analyses on one fact base and returns every
/// result relation's tuples.
fn run_all(f: &Facts) -> Vec<TupleSet> {
    let h = hierarchy::compute(f).expect("hierarchy");
    let pt = pointsto::analyze(f, CallGraphMode::OnTheFly).expect("points-to");
    let cg = callgraph::build(f, &pt.cg).expect("call graph");
    let se = sideeffect::compute(f, &pt.pt, &cg.edges).expect("side effects");
    vec![
        ts(&h.subtype_of),
        ts(&pt.pt),
        ts(&pt.field_pt),
        ts(&pt.cg),
        ts(&cg.site_targets),
        ts(&cg.edges),
        ts(&cg.reachable),
        ts(&se.reads),
        ts(&se.writes),
        ts(&se.reads_star),
        ts(&se.writes_star),
    ]
}

/// The acceptance contract: a 4-frame resident budget (1024 node slots)
/// is far below the run's peak arena, so the analyses can only complete
/// by paging — and their results must be tuple-identical to the resident
/// run's.
#[test]
fn analyses_complete_by_paging_under_a_tiny_frame_budget() {
    let p = Benchmark::Tiny.generate();
    let resident = Facts::load(&p).expect("resident facts");
    let expected = run_all(&resident);
    let resident_nodes = resident.u.bdd_manager().live_nodes();

    const FRAMES: usize = 4;
    let paged = Facts::load_paged(&p, FRAMES).expect("paged facts");
    assert!(paged.u.is_paged());
    let got = run_all(&paged);
    assert_eq!(got, expected, "paged analyses diverged from resident");

    let stats = paged.u.bdd_manager().kernel_stats();
    assert!(
        stats.page_faults > 0,
        "the run never paged — the budget is not actually binding"
    );
    assert_eq!(stats.page_faults, stats.page_reads);
    assert!(stats.page_evictions <= stats.page_writes);
    assert!(
        stats.page_max_resident as usize <= FRAMES,
        "resident frames {} exceeded the budget {FRAMES}",
        stats.page_max_resident
    );
    // The budget really is below the live working set: even the live
    // nodes alone (never mind the transient peak) need more blocks than
    // the buffer pool holds.
    assert!(
        resident_nodes > FRAMES * 256,
        "benchmark too small to prove the larger-than-RAM claim \
         ({resident_nodes} live nodes fit in {FRAMES} frames)"
    );
}

/// The environment seam, exercised by `ci.sh --paged`: with
/// `JEDD_PAGE_CACHE` set to a tiny frame count, every env-default
/// universe — including the one behind `Facts::load` — comes up paged,
/// actually faults under the budget, and still matches an
/// env-independent resident run tuple-for-tuple.
#[test]
#[ignore = "needs JEDD_PAGE_CACHE set; run from ci.sh --paged"]
fn env_budget_pages_the_default_universe() {
    let frames: usize = std::env::var("JEDD_PAGE_CACHE")
        .expect("JEDD_PAGE_CACHE must be set for this test")
        .parse()
        .expect("JEDD_PAGE_CACHE must be a frame count");
    assert!(
        (2..=8).contains(&frames),
        "budget {frames} is too large to prove paging on the tiny benchmark"
    );
    let p = Benchmark::Tiny.generate();
    let paged = Facts::load(&p).expect("env-paged facts");
    assert!(
        paged.u.is_paged(),
        "JEDD_PAGE_CACHE did not switch Universe::new onto the pager"
    );
    let got = run_all(&paged);
    let stats = paged.u.bdd_manager().kernel_stats();
    assert!(stats.page_faults > 0, "the env budget never paged");
    assert!(stats.page_max_resident as usize <= frames);

    // The reference world uses the env-independent constructor, so it
    // stays fully resident even with JEDD_PAGE_CACHE in the process env.
    let resident =
        Facts::load_configured(&p, jedd_core::Backend::Bdd, None).expect("resident facts");
    assert!(!resident.u.is_paged());
    let expected = run_all(&resident);
    assert_eq!(got, expected, "env-paged analyses diverged from resident");
}

/// A paged universe at an unbounded budget (frames = 0) never evicts but
/// still routes every node through the pager; the medium budget sits in
/// between. All sizes must agree with the resident run.
#[test]
fn paged_analyses_match_at_medium_and_unbounded_budgets() {
    let p = Benchmark::Tiny.generate();
    let resident = Facts::load(&p).expect("resident facts");
    let expected = run_all(&resident);
    for frames in [16usize, 0] {
        let paged = Facts::load_paged(&p, frames).expect("paged facts");
        let got = run_all(&paged);
        assert_eq!(got, expected, "frames {frames}: diverged from resident");
        let stats = paged.u.bdd_manager().kernel_stats();
        if frames == 0 {
            assert_eq!(stats.page_evictions, 0, "unbounded budget evicted");
        }
    }
}
