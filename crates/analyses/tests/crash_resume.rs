//! Crash-recovery fuzz: kill a checkpointed run at every class of kill
//! point — mid-snapshot-write, mid-rename, mid-log-append, and
//! mid-fixpoint-round via kernel fault injection — for each of the five
//! analyses, and assert the resumed run lands on tuple-identical results
//! to an uninterrupted run.
//!
//! The case count is bounded by `JEDD_CRASH_CASES` (default: all), so CI
//! smoke stages can run a prefix.

use jedd_analyses::facts::Facts;
use jedd_analyses::persist::{self, PersistError};
use jedd_analyses::pointsto::{self, CallGraphMode};
use jedd_analyses::synth::Benchmark;
use jedd_analyses::{callgraph, ir::Program};
use jedd_core::{Budget, FailPlan, Relation};
use jedd_store::{read_records, CheckpointPolicy, Checkpointer, StoreError, StoreFaults, LOG_FILE};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

type TupleSet = BTreeSet<Vec<u64>>;

fn ts(r: &Relation) -> TupleSet {
    r.tuples().into_iter().collect()
}

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "jedd-crash-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Which {
    Hierarchy,
    Vcr,
    Callgraph,
    Sideeffect,
    Pointsto,
}

const ALL: [Which; 5] = [
    Which::Hierarchy,
    Which::Vcr,
    Which::Callgraph,
    Which::Sideeffect,
    Which::Pointsto,
];

#[derive(Clone, Copy, Debug)]
enum Killpoint {
    /// Tear the Nth snapshot temp-file write.
    Snapshot(u64),
    /// Crash before the Nth atomic rename.
    Rename(u64),
    /// Tear the Nth checkpoint-log append.
    LogAppend(u64),
    /// Kernel fault: the Nth node allocation after arming dies, killing
    /// the fixpoint round with `ResourceExhausted` and triggering the
    /// policy's on-exhausted checkpoint of the last good round.
    MidRound(u64),
}

/// Every receiver type at every site — a deterministic worst-case input
/// for virtual call resolution.
fn full_site_types(f: &Facts, p: &Program) -> Relation {
    let mut tuples = Vec::new();
    for c in &p.calls {
        for t in 0..p.types as u32 {
            tuples.push(vec![c.site as u64, t as u64]);
        }
    }
    Relation::from_tuples(&f.u, &[(f.site, f.c1), (f.ty, f.t1)], &tuples).unwrap()
}

/// Runs one analysis under the given store faults and/or kernel fail
/// plan, checkpointing into `dir`. Prerequisite analyses (points-to for
/// the call graph, etc.) run before the fail plan is armed, so the kill
/// always lands inside the analysis under test.
fn run_checkpointed(
    which: Which,
    dir: &Path,
    faults: Option<StoreFaults>,
    plan: Option<FailPlan>,
) -> Result<Vec<TupleSet>, PersistError> {
    let p = Benchmark::Tiny.generate();
    let f = Facts::load(&p).unwrap();
    let mut cp = Checkpointer::create(dir, CheckpointPolicy::default()).unwrap();
    if let Some(fa) = faults {
        cp.set_faults(fa);
    }
    let arm = |f: &Facts| {
        if let Some(pl) = plan {
            f.u.set_fail_plan(Some(pl));
        }
    };
    match which {
        Which::Hierarchy => {
            arm(&f);
            let h = persist::hierarchy_checkpointed(&f, &mut cp)?;
            Ok(vec![ts(&h.subtype_of)])
        }
        Which::Vcr => {
            let site_types = full_site_types(&f, &p);
            arm(&f);
            let answer = persist::vcr_checkpointed(&f, &site_types, &mut cp)?;
            Ok(vec![ts(&answer)])
        }
        Which::Callgraph => {
            let ptres = pointsto::analyze(&f, CallGraphMode::OnTheFly).unwrap();
            arm(&f);
            let cg = persist::callgraph_checkpointed(&f, &ptres.cg, &mut cp)?;
            Ok(vec![ts(&cg.edges), ts(&cg.reachable)])
        }
        Which::Sideeffect => {
            let ptres = pointsto::analyze(&f, CallGraphMode::OnTheFly).unwrap();
            let cg = callgraph::build(&f, &ptres.cg).unwrap();
            arm(&f);
            let se = persist::sideeffect_checkpointed(&f, &ptres.pt, &cg.edges, &mut cp)?;
            Ok(vec![
                ts(&se.reads),
                ts(&se.writes),
                ts(&se.reads_star),
                ts(&se.writes_star),
            ])
        }
        Which::Pointsto => {
            arm(&f);
            let r = persist::pointsto_checkpointed(&f, CallGraphMode::OnTheFly, &mut cp)?;
            Ok(vec![ts(&r.pt), ts(&r.field_pt), ts(&r.cg)])
        }
    }
}

/// Resumes from the newest valid checkpoint in `dir` and drives the
/// analysis to completion.
fn resume_run(which: Which, dir: &Path) -> Result<Vec<TupleSet>, PersistError> {
    let mut cp = Checkpointer::create(dir, CheckpointPolicy::default()).unwrap();
    let budget = Budget::unlimited();
    match which {
        Which::Hierarchy => {
            let (_, h) = persist::hierarchy_resume(dir, budget, &mut cp)?;
            Ok(vec![ts(&h.subtype_of)])
        }
        Which::Vcr => {
            let (_, answer) = persist::vcr_resume(dir, budget, &mut cp)?;
            Ok(vec![ts(&answer)])
        }
        Which::Callgraph => {
            let (_, cg) = persist::callgraph_resume(dir, budget, &mut cp)?;
            Ok(vec![ts(&cg.edges), ts(&cg.reachable)])
        }
        Which::Sideeffect => {
            let (_, se) = persist::sideeffect_resume(dir, budget, &mut cp)?;
            Ok(vec![
                ts(&se.reads),
                ts(&se.writes),
                ts(&se.reads_star),
                ts(&se.writes_star),
            ])
        }
        Which::Pointsto => {
            let (_, r) = persist::pointsto_resume(dir, budget, &mut cp)?;
            Ok(vec![ts(&r.pt), ts(&r.field_pt), ts(&r.cg)])
        }
    }
}

fn case_budget() -> usize {
    std::env::var("JEDD_CRASH_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(usize::MAX)
}

fn run_case(i: usize, which: Which, kill: Killpoint, expected: &[TupleSet]) {
    let dir = tmpdir(&format!("case-{i}"));
    let (faults, plan) = match kill {
        Killpoint::Snapshot(n) => (Some(StoreFaults::kill_snapshot(n, 64)), None),
        Killpoint::Rename(n) => (Some(StoreFaults::kill_rename(n)), None),
        Killpoint::LogAppend(n) => (Some(StoreFaults::kill_log(n, 6)), None),
        Killpoint::MidRound(n) => (None, Some(FailPlan::fail_alloc_at(n))),
    };
    let got = match run_checkpointed(which, &dir, faults, plan) {
        // The kill never fired (the run finished first): the results must
        // still match the uninterrupted run exactly.
        Ok(got) => got,
        Err(_) => match resume_run(which, &dir) {
            Ok(got) => got,
            Err(PersistError::Store(StoreError::NoCheckpoint { .. })) => {
                // The kill landed before any checkpoint committed; the
                // recovery story is a restart from scratch.
                let retry = tmpdir(&format!("case-{i}-retry"));
                run_checkpointed(which, &retry, None, None).unwrap()
            }
            Err(e) => panic!("resume failed for {which:?} {kill:?}: {e}"),
        },
    };
    assert_eq!(got, expected, "{which:?} {kill:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The full kill matrix: every kill-point class against all five
/// analyses, asserting tuple-identical recovery each time.
#[test]
fn every_kill_point_resumes_tuple_identical() {
    let expected: Vec<Vec<TupleSet>> = ALL
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            let dir = tmpdir(&format!("expected-{i}"));
            let r = run_checkpointed(w, &dir, None, None).unwrap();
            let _ = std::fs::remove_dir_all(&dir);
            r
        })
        .collect();
    let kills = [
        Killpoint::Snapshot(1),
        Killpoint::Snapshot(2),
        Killpoint::Rename(2),
        Killpoint::LogAppend(2),
        Killpoint::MidRound(200),
        Killpoint::MidRound(2000),
    ];
    let mut cases = Vec::new();
    for (wi, &w) in ALL.iter().enumerate() {
        for &k in &kills {
            cases.push((w, k, wi));
        }
    }
    for (i, (w, k, wi)) in cases.into_iter().enumerate().take(case_budget()) {
        run_case(i, w, k, &expected[wi]);
    }
}

/// A checkpoint whose log append tears (the crash landing between the
/// snapshot write and the commit) must leave the *previous* committed
/// checkpoint resumable: the run dies at the torn commit, and resume
/// falls back one round and still completes tuple-identically.
#[test]
fn torn_commit_falls_back_to_previous_checkpoint() {
    // Probe: count how many checkpoints a clean hierarchy run commits.
    let probe = tmpdir("torn-probe");
    let expected = run_checkpointed(Which::Hierarchy, &probe, None, None).unwrap();
    let commits = read_records(&probe.join(LOG_FILE)).unwrap().len() as u64;
    let _ = std::fs::remove_dir_all(&probe);
    assert!(
        commits >= 2,
        "need at least two checkpoints for a fallback window, got {commits}"
    );

    // Tear the final commit's log append: its snapshot file lands but the
    // record never commits, so the previous checkpoint is the newest.
    let dir = tmpdir("torn-commit");
    let err = run_checkpointed(
        Which::Hierarchy,
        &dir,
        Some(StoreFaults::kill_log(commits, 6)),
        None,
    )
    
    .expect_err("torn commit must kill the run");
    assert!(
        matches!(err, PersistError::Store(StoreError::Killed { .. })),
        "unexpected error: {err}"
    );
    let records = read_records(&dir.join(LOG_FILE)).unwrap();
    assert_eq!(records.len() as u64, commits - 1, "torn record must not commit");

    let got = resume_run(Which::Hierarchy, &dir).unwrap();
    assert_eq!(got, expected);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The ZDD backend through the same kill-and-resume cycle: an iterative
/// family closure checkpointed per round, killed mid-rename, resumed
/// from the previous commit, must land set-identical to an uninterrupted
/// run.
#[test]
fn zdd_closure_resumes_after_kill() {
    use jedd_bdd::{ZddId, ZddManager};
    use jedd_store::{resume_latest_zdd, CheckpointMeta};

    const ROUNDS: u32 = 6;
    // One closure round: grow the family with the set {0, .., r}.
    let step = |mgr: &ZddManager, state: ZddId, r: u32| {
        let set: Vec<u32> = (0..=r).collect();
        mgr.union(state, mgr.singleton(&set))
    };
    let run = |dir: &Path, faults: Option<StoreFaults>| -> Result<Vec<Vec<u32>>, PersistError> {
        let mut cp = Checkpointer::create(dir, CheckpointPolicy::default()).unwrap();
        if let Some(fa) = faults {
            cp.set_faults(fa);
        }
        let mgr = ZddManager::new(ROUNDS as usize);
        let mut state = mgr.family(&[]);
        let mut round = 0;
        // Restart from the newest commit when one exists.
        if let Ok(rp) = resume_latest_zdd(dir) {
            let roots = rp.manager.export_nodes(&[rp.root("state").unwrap()]);
            state = mgr.import_nodes(&roots.0, &roots.1).unwrap()[0];
            round = rp.record.round as u32;
        }
        while round < ROUNDS {
            state = step(&mgr, state, round);
            round += 1;
            let meta = CheckpointMeta {
                analysis: "zdd-closure",
                round: round as u64,
                phase: 0,
                aux: 0,
                rng: 0,
            };
            cp.checkpoint_zdd(&meta, &mgr, &[("state", state)])?;
        }
        Ok(mgr.sets(state))
    };

    let clean = tmpdir("zdd-clean");
    let expected = run(&clean, None).unwrap();
    let _ = std::fs::remove_dir_all(&clean);

    let dir = tmpdir("zdd-kill");
    let err = run(&dir, Some(StoreFaults::kill_rename(3)))
        
        .expect_err("rename kill must fire");
    assert!(matches!(
        err,
        PersistError::Store(StoreError::Killed { .. })
    ));
    let got = run(&dir, None).unwrap();
    assert_eq!(got, expected);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A *paged* checkpointed run killed mid-eviction: the points-to
/// analysis runs on a disk-backed universe whose resident-frame budget
/// forces constant eviction, and `StoreFaults::kill_page_write` tears
/// the Nth eviction write after the first checkpoint arms the pager.
/// The run must die with a typed error (surfaced as resource
/// exhaustion, with the full pager error parked on the manager and
/// convertible to the store's vocabulary) — and resuming from the
/// committed checkpoint must land tuple-identical to a clean run. The
/// page file is scratch; only checkpoints are durable, so resume works
/// from a fresh manager.
#[test]
fn paged_run_killed_mid_eviction_resumes_tuple_identical() {
    let clean = tmpdir("paged-clean");
    let expected = run_checkpointed(Which::Pointsto, &clean, None, None).unwrap();
    let _ = std::fs::remove_dir_all(&clean);

    let dir = tmpdir("paged-kill");
    let p = Benchmark::Tiny.generate();
    let f = Facts::load_paged(&p, 4).unwrap();
    assert!(f.u.is_paged());
    let mut cp = Checkpointer::create(&dir, CheckpointPolicy::default()).unwrap();
    // The 3rd eviction write after arming dies half-way through a block.
    cp.set_faults(StoreFaults::kill_page_write(3, 64));
    let err = match persist::pointsto_checkpointed(&f, CallGraphMode::OnTheFly, &mut cp) {
        Ok(_) => panic!("a killed eviction write must kill the paged run"),
        Err(e) => e,
    };
    assert!(
        matches!(
            err,
            PersistError::Jedd(jedd_core::JeddError::ResourceExhausted { .. })
        ),
        "unexpected error: {err}"
    );
    // The full typed pager error is parked on the manager, and maps into
    // the store's error vocabulary as the injected kill it is.
    let page_err = f
        .u
        .bdd_manager()
        .take_page_error()
        .expect("pager error parked on the manager");
    let as_store: StoreError = page_err.into();
    assert!(
        matches!(as_store, StoreError::Killed { at: "page-write" }),
        "unexpected store mapping: {as_store}"
    );

    // At least one checkpoint committed before the kill, and resuming
    // from it completes tuple-identically.
    let got = resume_run(Which::Pointsto, &dir).unwrap();
    assert_eq!(got, expected);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Budget exhaustion mid-round triggers the policy's on-exhausted
/// checkpoint of the last good round, and the error still propagates as
/// `ResourceExhausted` — the degradation-path contract, now with a
/// resumable checkpoint behind it.
#[test]
fn exhausted_round_checkpoints_last_good_state() {
    let dir = tmpdir("exhausted");
    let err = run_checkpointed(
        Which::Pointsto,
        &dir,
        None,
        Some(FailPlan::fail_alloc_at(400)),
    )
    
    .expect_err("fail plan must kill the run");
    match &err {
        PersistError::Jedd(jedd_core::JeddError::ResourceExhausted { .. }) => {}
        other => panic!("expected ResourceExhausted, got {other}"),
    }
    // The on-failure checkpoint committed, so resume works directly.
    let got = resume_run(Which::Pointsto, &dir).unwrap();

    let clean = tmpdir("exhausted-clean");
    let expected = run_checkpointed(Which::Pointsto, &clean, None, None).unwrap();
    assert_eq!(got, expected);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&clean);
}
