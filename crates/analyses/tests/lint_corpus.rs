//! The five embedded analysis sources are the `jeddlint` corpus: they
//! must come out of `--lint --deny warnings` clean, and the replace-cost
//! pass's static site count must agree with what the profiler actually
//! measures when the points-to module runs.

use jedd_analyses::jedd_src;
use jedd_core::{OpEvent, ProfileSink};
use jeddc::Severity;
use std::cell::RefCell;
use std::rc::Rc;

fn lint_module(src: &str) -> (jeddc::assignc::Assignment, Vec<jeddc::Diagnostic>) {
    let prog = jeddc::parse::parse(src).expect("parse");
    let typed = jeddc::check::check_all(&prog).expect("check");
    let assignment = jeddc::assignc::assign(&typed, false).expect("assign");
    let diags = jeddc::lint::lint_program(&typed, Some(&assignment));
    (assignment, diags)
}

#[test]
fn all_modules_are_warning_clean() {
    for (name, src) in jedd_src::modules() {
        let (_, mut diags) = lint_module(&src);
        jeddc::lint::apply_deny(&mut diags, &["warnings".to_string()]);
        let errors: Vec<_> = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(
            errors.is_empty(),
            "{name} has deny-level lint diagnostics: {errors:#?}"
        );
    }
}

#[test]
fn combined_program_is_warning_clean() {
    let (_, mut diags) = lint_module(&jedd_src::combined());
    jeddc::lint::apply_deny(&mut diags, &["warnings".to_string()]);
    assert!(
        diags.iter().all(|d| d.severity != Severity::Error),
        "combined program has deny-level lint diagnostics"
    );
}

struct ReplaceCounter(RefCell<u64>);

impl ProfileSink for ReplaceCounter {
    fn record(&self, event: &OpEvent) {
        if event.op == "replace" {
            *self.0.borrow_mut() += 1;
        }
    }
}

/// The static replace-site count equals the number of replace operations
/// the profiler sees when every points-to rule body executes exactly
/// once. Empty fact relations make each `do/while` converge on its first
/// iteration, so one run of every rule touches each forced site once;
/// the ±2 tolerance leaves room for alignment replaces the grouping
/// cannot see (none today, but the bound is the contract, not zero).
#[test]
fn pointsto_static_replace_count_matches_profiler() {
    let src = format!("{}\n{}", jedd_src::PRELUDE, jedd_src::POINTSTO);
    let (assignment, _) = lint_module(&src);
    let static_sites = jeddc::lint::static_replace_sites(&assignment) as i64;
    assert!(static_sites > 0, "points-to is expected to force replaces");

    let compiled = jeddc::compile(&src).expect("compile");
    let mut exec = jeddc::Executor::new(&compiled).expect("executor");
    for d in ["Type", "Signature", "Method", "Field", "Var", "Obj", "Site", "ParamIdx"] {
        exec.bind_domain_size(d, 4).expect("bind domain");
    }
    let sink = Rc::new(ReplaceCounter(RefCell::new(0)));
    // Prepare first so universe setup (building the empty globals) is
    // excluded from the count, then install the profiler.
    exec.prepare().expect("prepare");
    exec.universe().set_profiler(Some(sink.clone()));
    for rule in ["ptInit", "ptStep", "ptFilterInit", "ptFilter", "ptStepTyped"] {
        exec.run(rule).expect(rule);
    }
    exec.universe().set_profiler(None);

    let measured = *sink.0.borrow() as i64;
    assert!(
        (static_sites - measured).abs() <= 2,
        "static replace-site count {static_sites} vs profiler-measured {measured}"
    );
    // The executor's own counter tallies the same conform operations.
    assert_eq!(measured, exec.replaces as i64);
}
