//! Budget-trip parity between the sequential and parallel kernels: a
//! given [`Budget`] must trip the *same typed error* at the *same
//! configured limits* regardless of thread count. The degradation story
//! (degradation.rs) relies on this — the driver's fallback decision
//! inspects the error variant, so a kernel that reported `Deadline`
//! where the sequential path reports `StepLimit` would degrade
//! differently depending on `JEDD_THREADS`.
//!
//! The *dynamic* fields of a trip (steps taken, live nodes seen) are
//! allowed to differ — workers charge steps in flush-sized batches and
//! the shared table's occupancy depends on scheduling — but the variant
//! and the echoed limits must match the sequential run exactly.

use jedd_analyses::facts::Facts;
use jedd_analyses::pointsto::{self, CallGraphMode};
use jedd_analyses::synth::Benchmark;
use jedd_bdd::{BddError, Budget, CancelToken};
use jedd_core::{JeddError, Strategy};

/// Runs the points-to analysis on the Tiny benchmark with `budget`
/// installed and the parallel cutoff forced low, returning the outcome.
fn run(threads: usize, budget: Budget) -> Result<(), JeddError> {
    let p = Benchmark::Tiny.generate();
    let facts = Facts::load(&p).expect("fact loading is unbudgeted");
    let mgr = facts.u.bdd_manager();
    mgr.set_threads(threads);
    mgr.set_par_cutoff(2);
    facts.u.set_budget(budget);
    pointsto::analyze_with(&facts, CallGraphMode::OnTheFly, Strategy::SemiNaive).map(|_| ())
}

fn cause(r: Result<(), JeddError>) -> (&'static str, BddError) {
    match r {
        Err(JeddError::ResourceExhausted { op, cause, .. }) => (op, cause),
        Err(e) => panic!("expected ResourceExhausted, got {e}"),
        Ok(()) => panic!("a starved budget must trip"),
    }
}

#[test]
fn step_limit_trips_identically_across_thread_counts() {
    let (op1, cause1) = cause(run(1, Budget::unlimited().with_max_steps(10)));
    let (op4, cause4) = cause(run(4, Budget::unlimited().with_max_steps(10)));
    assert!(
        matches!(cause1, BddError::StepLimit { limit: 10, .. }),
        "sequential: {cause1}"
    );
    assert!(
        matches!(cause4, BddError::StepLimit { limit: 10, .. }),
        "parallel: {cause4}"
    );
    assert_eq!(op1, op4, "both kernels must trip in the same relational op");
}

#[test]
fn node_limit_trips_identically_across_thread_counts() {
    // A limit below what the fact base already occupies cannot be
    // recovered by the GC/reorder ladder on either path.
    let (op1, cause1) = cause(run(1, Budget::unlimited().with_max_live_nodes(16)));
    let (op4, cause4) = cause(run(4, Budget::unlimited().with_max_live_nodes(16)));
    assert!(
        matches!(cause1, BddError::NodeLimit { limit: 16, .. }),
        "sequential: {cause1}"
    );
    assert!(
        matches!(cause4, BddError::NodeLimit { limit: 16, .. }),
        "parallel: {cause4}"
    );
    assert_eq!(op1, op4, "both kernels must trip in the same relational op");
}

#[test]
fn cancellation_trips_identically_across_thread_counts() {
    for threads in [1, 4] {
        let token = CancelToken::new();
        token.cancel();
        let budget = Budget::unlimited()
            // Probe the token on every step, not every 1024th.
            .with_max_steps(u64::MAX)
            .with_cancel(token);
        let (_, c) = cause(run(threads, budget));
        assert_eq!(c, BddError::Cancelled, "threads={threads}");
    }
}

#[test]
fn expired_deadline_trips_identically_across_thread_counts() {
    for threads in [1, 4] {
        let budget = Budget::unlimited()
            // Probe the clock on every step.
            .with_max_steps(u64::MAX)
            .with_timeout(std::time::Duration::ZERO);
        let (_, c) = cause(run(threads, budget));
        assert_eq!(c, BddError::Deadline, "threads={threads}");
    }
}

#[test]
fn generous_budget_succeeds_at_every_thread_count() {
    for threads in [1, 4] {
        let budget = Budget::unlimited()
            .with_max_steps(100_000_000)
            .with_max_live_nodes(10_000_000);
        run(threads, budget).unwrap_or_else(|e| {
            panic!("threads={threads}: a generous budget must not trip, got {e}")
        });
    }
}

/// `JEDD_SCHED` mode: the parallel step-limit trip replayed under the
/// deterministic scheduler. `JEDD_SCHED=<seed>` selects the schedule
/// stream (fixed default seed otherwise); the trip must keep its variant
/// and echoed limit on every explored interleaving, and re-running the
/// same configuration must reproduce the identical schedule fingerprints
/// bit-for-bit.
#[cfg(feature = "model")]
#[test]
fn budget_trip_parity_replays_bit_identically_under_jedd_sched() {
    use jedd_sync::model::{check, Config};
    let cfg = Config::from_env().unwrap_or_else(|| Config::random(7, 3));
    let sweep = || {
        check(cfg.clone(), || {
            let (_, c) = cause(run(2, Budget::unlimited().with_max_steps(10)));
            assert!(
                matches!(c, BddError::StepLimit { limit: 10, .. }),
                "scheduled parallel trip changed its type: {c}"
            );
        })
    };
    let first = sweep();
    let second = sweep();
    first.assert_clean();
    assert_eq!(first.schedules, second.schedules, "schedule counts diverged");
    assert_eq!(
        first.fingerprints, second.fingerprints,
        "same JEDD_SCHED seed must replay the same schedules bit-for-bit"
    );
}
