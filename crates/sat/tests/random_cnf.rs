//! Property tests: random CNFs cross-checked against brute-force
//! enumeration, and validation that reported unsat cores are themselves
//! unsatisfiable.

use jedd_sat::{Lit, SatOutcome, Solver, Var};
use proptest::prelude::*;

/// A clause as a list of (var_index, polarity) pairs.
type RawClause = Vec<(u8, bool)>;

const NVARS: usize = 8;

fn clause_strategy() -> impl Strategy<Value = RawClause> {
    proptest::collection::vec((0u8..NVARS as u8, any::<bool>()), 1..4)
}

fn cnf_strategy() -> impl Strategy<Value = Vec<RawClause>> {
    proptest::collection::vec(clause_strategy(), 0..40)
}

fn brute_force_sat(cnf: &[RawClause]) -> bool {
    'outer: for bits in 0..(1u32 << NVARS) {
        for c in cnf {
            let ok = c
                .iter()
                .any(|&(v, pol)| ((bits >> v) & 1 == 1) == pol);
            if !ok {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

fn to_lits(c: &RawClause) -> Vec<Lit> {
    c.iter().map(|&(v, pol)| Var::from_index(v as usize).lit(pol)).collect()
}

fn build_solver(cnf: &[RawClause]) -> Solver {
    let mut s = Solver::new();
    s.new_vars(NVARS);
    for c in cnf {
        s.add_clause(&to_lits(c));
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn solver_agrees_with_brute_force(cnf in cnf_strategy()) {
        let expected = brute_force_sat(&cnf);
        let mut s = build_solver(&cnf);
        let outcome = s.solve();
        prop_assert_eq!(outcome == SatOutcome::Sat, expected);
        if outcome == SatOutcome::Sat {
            // The model must satisfy every clause.
            for c in &cnf {
                let ok = c.iter().any(|&(v, pol)| s.model_value(Var::from_index(v as usize)) == pol);
                prop_assert!(ok, "model violates clause {:?}", c);
            }
        }
    }

    #[test]
    fn unsat_cores_are_unsat(cnf in cnf_strategy()) {
        let mut s = build_solver(&cnf);
        if s.solve() == SatOutcome::Unsat {
            let core: Vec<usize> = s.unsat_core().iter().map(|c| c.0 as usize).collect();
            prop_assert!(!core.is_empty());
            // Re-solve only the core clauses: must still be UNSAT.
            let core_cnf: Vec<RawClause> = core.iter().map(|&i| cnf[i].clone()).collect();
            let mut s2 = build_solver(&core_cnf);
            prop_assert_eq!(s2.solve(), SatOutcome::Unsat);
            prop_assert!(!brute_force_sat(&core_cnf));
        }
    }

    #[test]
    fn core_is_subset_of_input(cnf in cnf_strategy()) {
        let n = cnf.len();
        let mut s = build_solver(&cnf);
        if s.solve() == SatOutcome::Unsat {
            for c in s.unsat_core() {
                prop_assert!((c.0 as usize) < n);
            }
        }
    }
}
