//! Property-style tests: seeded random CNFs cross-checked against
//! brute-force enumeration, and validation that reported unsat cores are
//! themselves unsatisfiable.

use jedd_bdd::rng::XorShift64Star;
use jedd_sat::{Lit, SatOutcome, Solver, Var};

/// A clause as a list of (var_index, polarity) pairs.
type RawClause = Vec<(u8, bool)>;

const NVARS: usize = 8;
const CASES: u64 = 256;

fn random_clause(rng: &mut XorShift64Star) -> RawClause {
    (0..rng.gen_index(1..4))
        .map(|_| (rng.gen_range(0..NVARS as u64) as u8, rng.gen_bool(0.5)))
        .collect()
}

fn random_cnf(rng: &mut XorShift64Star) -> Vec<RawClause> {
    (0..rng.gen_index(0..40))
        .map(|_| random_clause(rng))
        .collect()
}

fn brute_force_sat(cnf: &[RawClause]) -> bool {
    'outer: for bits in 0..(1u32 << NVARS) {
        for c in cnf {
            let ok = c.iter().any(|&(v, pol)| ((bits >> v) & 1 == 1) == pol);
            if !ok {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

fn to_lits(c: &RawClause) -> Vec<Lit> {
    c.iter()
        .map(|&(v, pol)| Var::from_index(v as usize).lit(pol))
        .collect()
}

fn build_solver(cnf: &[RawClause]) -> Solver {
    let mut s = Solver::new();
    s.new_vars(NVARS);
    for c in cnf {
        s.add_clause(&to_lits(c));
    }
    s
}

#[test]
fn solver_agrees_with_brute_force() {
    let mut rng = XorShift64Star::new(0x5a71);
    for _ in 0..CASES {
        let cnf = random_cnf(&mut rng);
        let expected = brute_force_sat(&cnf);
        let mut s = build_solver(&cnf);
        let outcome = s.solve();
        assert_eq!(outcome == SatOutcome::Sat, expected);
        if outcome == SatOutcome::Sat {
            // The model must satisfy every clause.
            for c in &cnf {
                let ok = c
                    .iter()
                    .any(|&(v, pol)| s.model_value(Var::from_index(v as usize)) == pol);
                assert!(ok, "model violates clause {c:?}");
            }
        }
    }
}

#[test]
fn unsat_cores_are_unsat() {
    let mut rng = XorShift64Star::new(0x5a72);
    for _ in 0..CASES {
        let cnf = random_cnf(&mut rng);
        let mut s = build_solver(&cnf);
        if s.solve() == SatOutcome::Unsat {
            let core: Vec<usize> = s.unsat_core().iter().map(|c| c.0 as usize).collect();
            assert!(!core.is_empty());
            // Re-solve only the core clauses: must still be UNSAT.
            let core_cnf: Vec<RawClause> = core.iter().map(|&i| cnf[i].clone()).collect();
            let mut s2 = build_solver(&core_cnf);
            assert_eq!(s2.solve(), SatOutcome::Unsat);
            assert!(!brute_force_sat(&core_cnf));
        }
    }
}

#[test]
fn core_is_subset_of_input() {
    let mut rng = XorShift64Star::new(0x5a73);
    for _ in 0..CASES {
        let cnf = random_cnf(&mut rng);
        let n = cnf.len();
        let mut s = build_solver(&cnf);
        if s.solve() == SatOutcome::Unsat {
            for c in s.unsat_core() {
                assert!((c.0 as usize) < n);
            }
        }
    }
}
