//! Regression test: the DIMACS reader must tolerate real-world files —
//! blank lines, leading whitespace, and the SAT-competition trailing
//! `%` / `0` footer (which must not become a spurious empty clause).

use jedd_sat::{parse_dimacs, Lit, SatOutcome};

const MESSY: &str = include_str!("fixtures/messy.cnf");

#[test]
fn messy_fixture_parses() {
    let cnf = parse_dimacs(MESSY).expect("messy fixture must parse");
    assert_eq!(cnf.num_vars, 4);
    assert_eq!(cnf.clauses.len(), 5, "footer `0` must not add a clause");
    assert!(
        cnf.clauses.iter().all(|c| !c.is_empty()),
        "no empty clauses: {:?}",
        cnf.clauses
    );
    assert_eq!(
        cnf.clauses[2],
        vec![Lit::from_dimacs(-1), Lit::from_dimacs(4)],
        "clauses may span lines with blank lines in between"
    );
}

#[test]
fn messy_fixture_is_satisfiable() {
    // Without the footer fix the phantom empty clause made this UNSAT.
    let cnf = parse_dimacs(MESSY).unwrap();
    let mut solver = cnf.into_solver();
    assert_eq!(solver.solve(), SatOutcome::Sat);
}

#[test]
fn footer_terminates_parsing() {
    // Anything after the `%` line is ignored, even junk.
    let cnf = parse_dimacs("p cnf 2 1\n1 2 0\n%\n0\nnot dimacs at all\n").unwrap();
    assert_eq!(cnf.clauses.len(), 1);

    // A clause left open before the footer is still an error.
    assert!(parse_dimacs("p cnf 2 1\n1 2\n%\n0\n").is_err());
}
