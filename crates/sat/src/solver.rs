//! The CDCL solver: two-watched-literal propagation, VSIDS decisions,
//! first-UIP clause learning, Luby restarts and unsatisfiable-core
//! tracking.

use crate::lit::{LBool, Lit, Var};

/// Identifier of an *original* (problem) clause, as returned by
/// [`Solver::add_clause`]. Used to report unsatisfiable cores.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ClauseId(pub u32);

/// The outcome of [`Solver::solve`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatOutcome {
    /// A satisfying assignment was found; read it with
    /// [`Solver::model_value`].
    Sat,
    /// The formula is unsatisfiable; an unsat core of original clauses is
    /// available from [`Solver::unsat_core`].
    Unsat,
}

/// Search statistics, exposed for the paper's Table 1 harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decision variables chosen.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of conflicts analysed.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learned clauses currently stored.
    pub learned_clauses: u64,
}

#[derive(Clone, Debug)]
struct Clause {
    lits: Vec<Lit>,
    /// `None` for learned clauses, `Some(id)` for original clauses.
    original: Option<ClauseId>,
    /// Original-clause ids used to derive this clause (resolution
    /// footprint). For original clauses this is just `[id]`.
    footprint: Vec<ClauseId>,
}

const INVALID: u32 = u32::MAX;

/// A CDCL boolean-satisfiability solver.
///
/// Mirrors the role zchaff plays in the Jedd translator: deciding the
/// physical-domain-assignment CNF and, when unsatisfiable, producing a
/// small core used for error reporting (paper §3.3.3, citing \[30\]).
///
/// # Examples
///
/// ```
/// use jedd_sat::{Solver, SatOutcome};
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(&[a.positive(), b.positive()]);
/// s.add_clause(&[a.negative()]);
/// assert_eq!(s.solve(), SatOutcome::Sat);
/// assert!(!s.model_value(a));
/// assert!(s.model_value(b));
/// ```
#[derive(Debug, Default)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// Watch lists indexed by `Lit::code()`: clause indices watching the
    /// literal.
    watches: Vec<Vec<u32>>,
    assign: Vec<LBool>,
    /// Decision level at which each variable was assigned.
    level: Vec<u32>,
    /// Reason clause index for each implied variable (INVALID for
    /// decisions / unassigned).
    reason: Vec<u32>,
    /// Assignment trail.
    trail: Vec<Lit>,
    /// Trail index where each decision level starts.
    trail_lim: Vec<usize>,
    /// Next trail position to propagate.
    qhead: usize,
    /// VSIDS activity per variable.
    activity: Vec<f64>,
    var_inc: f64,
    /// Saved phases for decision polarity.
    phase: Vec<bool>,
    next_original: u32,
    /// Set after solve(): the unsat core (original clause ids).
    core: Vec<ClauseId>,
    /// True when an empty clause was added directly.
    has_empty_clause: Option<Vec<ClauseId>>,
    /// Unit clauses pending until solve (enqueued at level 0).
    pending_units: Vec<(Lit, u32)>,
    stats: SolverStats,
    solved: Option<SatOutcome>,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver::default()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(INVALID);
        self.activity.push(0.0);
        self.phase.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Allocates `n` fresh variables.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of original (problem) clauses added.
    pub fn num_clauses(&self) -> usize {
        self.next_original as usize
    }

    /// Total number of literals over all original clauses.
    pub fn num_literals(&self) -> usize {
        self.clauses
            .iter()
            .filter(|c| c.original.is_some())
            .map(|c| c.lits.len())
            .sum()
    }

    /// Search statistics.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Adds a problem clause and returns its id.
    ///
    /// Duplicate literals are removed; tautological clauses (containing
    /// `l` and `!l`) are kept as ids but never constrain the search.
    ///
    /// # Panics
    ///
    /// Panics if a literal refers to a variable that was not allocated,
    /// or if called after [`Solver::solve`].
    pub fn add_clause(&mut self, lits: &[Lit]) -> ClauseId {
        assert!(self.solved.is_none(), "add_clause after solve");
        let id = ClauseId(self.next_original);
        self.next_original += 1;
        let mut ls: Vec<Lit> = lits.to_vec();
        for l in &ls {
            assert!(
                l.var().index() < self.assign.len(),
                "literal {l} uses an unallocated variable"
            );
        }
        ls.sort_unstable();
        ls.dedup();
        // Tautology check.
        for w in ls.windows(2) {
            if w[0].var() == w[1].var() {
                return id; // contains l and !l: always satisfied
            }
        }
        match ls.len() {
            0 => {
                if self.has_empty_clause.is_none() {
                    self.has_empty_clause = Some(vec![id]);
                }
            }
            1 => {
                let cref = self.clauses.len() as u32;
                self.clauses.push(Clause {
                    lits: ls.clone(),
                    original: Some(id),
                    footprint: vec![id],
                });
                self.pending_units.push((ls[0], cref));
            }
            _ => {
                let cref = self.clauses.len() as u32;
                self.clauses.push(Clause {
                    lits: ls.clone(),
                    original: Some(id),
                    footprint: vec![id],
                });
                self.watch(ls[0], cref);
                self.watch(ls[1], cref);
            }
        }
        id
    }

    fn watch(&mut self, lit: Lit, cref: u32) {
        self.watches[lit.code()].push(cref);
    }

    #[inline]
    fn value(&self, lit: Lit) -> LBool {
        match self.assign[lit.var().index()] {
            LBool::Undef => LBool::Undef,
            LBool::True => LBool::from_bool(lit.is_positive()),
            LBool::False => LBool::from_bool(!lit.is_positive()),
        }
    }

    fn enqueue(&mut self, lit: Lit, reason: u32) -> bool {
        match self.value(lit) {
            LBool::True => true,
            LBool::False => false,
            LBool::Undef => {
                let v = lit.var().index();
                self.assign[v] = LBool::from_bool(lit.is_positive());
                self.level[v] = self.decision_level();
                self.reason[v] = reason;
                self.phase[v] = lit.is_positive();
                self.trail.push(lit);
                self.stats.propagations += 1;
                true
            }
        }
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Unit propagation. Returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = !p;
            let mut i = 0;
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            while i < ws.len() {
                let cref = ws[i];
                // Make sure false_lit is at position 1.
                let (l0, l1) = {
                    let c = &mut self.clauses[cref as usize];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                    (c.lits[0], c.lits[1])
                };
                debug_assert_eq!(l1, false_lit);
                if self.value(l0) == LBool::True {
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut moved = false;
                let len = self.clauses[cref as usize].lits.len();
                for k in 2..len {
                    let lk = self.clauses[cref as usize].lits[k];
                    if self.value(lk) != LBool::False {
                        self.clauses[cref as usize].lits.swap(1, k);
                        self.watches[lk.code()].push(cref);
                        ws.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting.
                if self.value(l0) == LBool::False {
                    self.watches[false_lit.code()] = ws;
                    // Re-append the remaining watches we haven't processed:
                    // they are already in ws, which we just restored.
                    return Some(cref);
                }
                let ok = self.enqueue(l0, cref);
                debug_assert!(ok);
                i += 1;
            }
            self.watches[false_lit.code()] = ws;
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Returns the learned clause, the
    /// backtrack level and the footprint of the derivation.
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, u32, Vec<ClauseId>) {
        let mut learnt: Vec<Lit> = Vec::new();
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut cref = confl;
        let mut idx = self.trail.len();
        let mut footprint: Vec<ClauseId> = Vec::new();
        let cur_level = self.decision_level();

        loop {
            {
                let c = &self.clauses[cref as usize];
                footprint.extend_from_slice(&c.footprint);
            }
            let lits = self.clauses[cref as usize].lits.clone();
            for &q in &lits {
                if Some(q) == p {
                    continue;
                }
                let v = q.var();
                if !seen[v.index()] && self.level[v.index()] > 0 {
                    seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= cur_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next literal on the trail to resolve on.
            loop {
                idx -= 1;
                let l = self.trail[idx];
                if seen[l.var().index()] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.unwrap().var();
            seen[pv.index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt.push(!p.unwrap());
                break;
            }
            cref = self.reason[pv.index()];
            debug_assert_ne!(cref, INVALID);
        }
        // The asserting literal goes first.
        let n = learnt.len();
        learnt.swap(0, n - 1);
        // Backtrack level: second-highest level in the clause.
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        footprint.sort_unstable();
        footprint.dedup();
        (learnt, bt, footprint)
    }

    fn backtrack(&mut self, to_level: u32) {
        while self.decision_level() > to_level {
            let start = self.trail_lim.pop().unwrap();
            while self.trail.len() > start {
                let l = self.trail.pop().unwrap();
                let v = l.var().index();
                self.assign[v] = LBool::Undef;
                self.reason[v] = INVALID;
            }
        }
        self.qhead = self.trail.len();
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        let mut best: Option<usize> = None;
        for v in 0..self.num_vars() {
            if self.assign[v] == LBool::Undef {
                match best {
                    None => best = Some(v),
                    Some(b) if self.activity[v] > self.activity[b] => best = Some(v),
                    _ => {}
                }
            }
        }
        best.map(|v| Var(v as u32).lit(self.phase[v]))
    }

    /// Computes the level-0 core closure starting from a conflicting
    /// clause: footprints of the clause and of all reasons transitively.
    fn root_core(&self, confl: u32) -> Vec<ClauseId> {
        let mut core: Vec<ClauseId> = Vec::new();
        let mut seen_clause = std::collections::HashSet::new();
        let mut seen_var = vec![false; self.num_vars()];
        let mut stack = vec![confl];
        while let Some(cref) = stack.pop() {
            if !seen_clause.insert(cref) {
                continue;
            }
            let c = &self.clauses[cref as usize];
            core.extend_from_slice(&c.footprint);
            for &l in &c.lits {
                let v = l.var().index();
                if !seen_var[v] {
                    seen_var[v] = true;
                    let r = self.reason[v];
                    if r != INVALID {
                        stack.push(r);
                    }
                }
            }
        }
        core.sort_unstable();
        core.dedup();
        core
    }

    /// Runs the CDCL search to completion.
    ///
    /// Can be called once; subsequent calls return the cached outcome.
    pub fn solve(&mut self) -> SatOutcome {
        if let Some(o) = self.solved {
            return o;
        }
        let outcome = self.solve_inner();
        self.solved = Some(outcome);
        outcome
    }

    fn solve_inner(&mut self) -> SatOutcome {
        if let Some(core) = self.has_empty_clause.take() {
            self.core = core;
            return SatOutcome::Unsat;
        }
        self.var_inc = 1.0;
        // Enqueue pending unit clauses at level 0.
        let units = std::mem::take(&mut self.pending_units);
        for (lit, cref) in units {
            if !self.enqueue(lit, cref) {
                // Conflicting units: core is the two unit clauses.
                let this = self.clauses[cref as usize].footprint.clone();
                let other_ref = self.reason[lit.var().index()];
                let mut core = this;
                if other_ref != INVALID {
                    core.extend_from_slice(&self.clauses[other_ref as usize].footprint);
                }
                core.sort_unstable();
                core.dedup();
                self.core = core;
                return SatOutcome::Unsat;
            }
        }
        let mut conflicts_since_restart = 0u64;
        let mut restart_idx = 1u64;
        let mut restart_limit = 32 * luby(restart_idx);
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    self.core = self.root_core(confl);
                    return SatOutcome::Unsat;
                }
                let (learnt, bt, footprint) = self.analyze(confl);
                self.backtrack(bt);
                if learnt.len() == 1 {
                    let cref = self.clauses.len() as u32;
                    self.clauses.push(Clause {
                        lits: learnt.clone(),
                        original: None,
                        footprint,
                    });
                    self.stats.learned_clauses += 1;
                    let ok = self.enqueue(learnt[0], cref);
                    if !ok {
                        let core = self.root_core(cref);
                        self.core = core;
                        return SatOutcome::Unsat;
                    }
                } else {
                    let cref = self.clauses.len() as u32;
                    let l0 = learnt[0];
                    let l1 = learnt[1];
                    self.clauses.push(Clause {
                        lits: learnt,
                        original: None,
                        footprint,
                    });
                    self.stats.learned_clauses += 1;
                    self.watch(l0, cref);
                    self.watch(l1, cref);
                    let ok = self.enqueue(l0, cref);
                    debug_assert!(ok);
                }
                self.var_inc *= 1.0 / 0.95;
            } else {
                if conflicts_since_restart >= restart_limit {
                    conflicts_since_restart = 0;
                    restart_idx += 1;
                    restart_limit = 32 * luby(restart_idx);
                    self.stats.restarts += 1;
                    self.backtrack(0);
                }
                match self.pick_branch() {
                    None => return SatOutcome::Sat,
                    Some(lit) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let ok = self.enqueue(lit, INVALID);
                        debug_assert!(ok);
                    }
                }
            }
        }
    }

    /// The value of `v` in the satisfying assignment.
    ///
    /// # Panics
    ///
    /// Panics if the solver has not returned [`SatOutcome::Sat`].
    pub fn model_value(&self, v: Var) -> bool {
        assert_eq!(
            self.solved,
            Some(SatOutcome::Sat),
            "model_value requires a SAT outcome"
        );
        match self.assign[v.index()] {
            LBool::True => true,
            LBool::False => false,
            // Unconstrained variables default to their saved phase.
            LBool::Undef => self.phase[v.index()],
        }
    }

    /// The unsatisfiable core: a subset of original clause ids whose
    /// conjunction is unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if the solver has not returned [`SatOutcome::Unsat`].
    pub fn unsat_core(&self) -> &[ClauseId] {
        assert_eq!(
            self.solved,
            Some(SatOutcome::Unsat),
            "unsat_core requires an UNSAT outcome"
        );
        &self.core
    }
}

/// The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, ...), 1-indexed.
fn luby(mut i: u64) -> u64 {
    loop {
        if (i + 1).is_power_of_two() {
            return i.div_ceil(2);
        }
        let k = 63 - (i + 1).leading_zeros() as u64; // floor(log2(i+1))
        i = i - (1u64 << k) + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luby_sequence() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(luby(i as u64 + 1), e, "luby({})", i + 1);
        }
    }
}
