//! `jsat`: a zchaff-style command-line front end to the CDCL solver.
//! Reads a DIMACS CNF file, prints the verdict in the conventional
//! competition format, and on UNSAT prints the unsatisfiable core as the
//! 0-based indices of the original clauses.
//!
//! Usage: `jsat FILE.cnf`

use jedd_sat::{parse_dimacs, SatOutcome, Var};
use std::process::ExitCode;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: jsat FILE.cnf");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("jsat: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cnf = match parse_dimacs(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("jsat: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut solver = cnf.into_solver();
    match solver.solve() {
        SatOutcome::Sat => {
            println!("s SATISFIABLE");
            let mut line = String::from("v");
            for i in 0..cnf.num_vars {
                let v = Var::from_index(i);
                let lit = if solver.model_value(v) {
                    (i + 1) as i64
                } else {
                    -((i + 1) as i64)
                };
                line.push_str(&format!(" {lit}"));
                if line.len() > 72 {
                    println!("{line}");
                    line = String::from("v");
                }
            }
            println!("{line} 0");
            let st = solver.stats();
            eprintln!(
                "c {} decisions, {} propagations, {} conflicts, {} restarts",
                st.decisions, st.propagations, st.conflicts, st.restarts
            );
            ExitCode::SUCCESS
        }
        SatOutcome::Unsat => {
            println!("s UNSATISFIABLE");
            let core: Vec<String> = solver
                .unsat_core()
                .iter()
                .map(|c| c.0.to_string())
                .collect();
            println!("c core clauses: {}", core.join(" "));
            ExitCode::from(20)
        }
    }
}
