//! DIMACS CNF reading and writing.
//!
//! The original jeddc shipped its physical-domain-assignment CNF to an
//! external zchaff process in DIMACS format; we keep the format for
//! interoperability and debugging.

use crate::lit::Lit;
use crate::solver::Solver;
use std::fmt::Write as _;

/// Error produced while parsing a DIMACS CNF document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// 1-based line number where the error occurred.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseDimacsError {}

/// A parsed CNF: variable count plus clauses of DIMACS literals.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cnf {
    /// Number of variables declared in the `p cnf` header.
    pub num_vars: usize,
    /// The clauses, each a list of literals.
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Loads this CNF into a fresh [`Solver`].
    pub fn into_solver(&self) -> Solver {
        let mut s = Solver::new();
        s.new_vars(self.num_vars);
        for c in &self.clauses {
            s.add_clause(c);
        }
        s
    }
}

/// Parses a DIMACS CNF document.
///
/// Tolerates blank lines, leading whitespace, `c` comment lines, and the
/// SAT-competition trailing footer (a `%` line followed by a lone `0`):
/// everything after a `%` line is ignored rather than parsed as clause
/// data, so the footer's `0` does not become a spurious empty clause.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on malformed headers, out-of-range
/// literals or clauses not terminated by `0`.
pub fn parse_dimacs(input: &str) -> Result<Cnf, ParseDimacsError> {
    let mut cnf = Cnf::default();
    let mut header_seen = false;
    let mut current: Vec<Lit> = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line.trim();
        let lineno = lineno + 1;
        if line.starts_with('%') {
            break;
        }
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if line.starts_with('p') {
            let parts: Vec<&str> = line.split_whitespace().collect();
            if parts.len() != 4 || parts[1] != "cnf" {
                return Err(ParseDimacsError {
                    line: lineno,
                    message: format!("malformed problem line: {line:?}"),
                });
            }
            cnf.num_vars = parts[2].parse().map_err(|_| ParseDimacsError {
                line: lineno,
                message: format!("bad variable count: {:?}", parts[2]),
            })?;
            header_seen = true;
            continue;
        }
        if !header_seen {
            return Err(ParseDimacsError {
                line: lineno,
                message: "clause before `p cnf` header".to_string(),
            });
        }
        for tok in line.split_whitespace() {
            let n: i64 = tok.parse().map_err(|_| ParseDimacsError {
                line: lineno,
                message: format!("bad literal: {tok:?}"),
            })?;
            if n == 0 {
                cnf.clauses.push(std::mem::take(&mut current));
            } else {
                if n.unsigned_abs() as usize > cnf.num_vars {
                    return Err(ParseDimacsError {
                        line: lineno,
                        message: format!("literal {n} out of declared range"),
                    });
                }
                current.push(Lit::from_dimacs(n));
            }
        }
    }
    if !current.is_empty() {
        return Err(ParseDimacsError {
            line: input.lines().count(),
            message: "last clause not terminated by 0".to_string(),
        });
    }
    Ok(cnf)
}

/// Renders a CNF in DIMACS format.
pub fn write_dimacs(cnf: &Cnf) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", cnf.num_vars, cnf.clauses.len());
    for c in &cnf.clauses {
        for l in c {
            let _ = write!(out, "{} ", l.to_dimacs());
        }
        let _ = writeln!(out, "0");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SatOutcome;

    #[test]
    fn parse_simple() {
        let cnf = parse_dimacs("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 2);
        assert_eq!(cnf.clauses[0], vec![Lit::from_dimacs(1), Lit::from_dimacs(-2)]);
    }

    #[test]
    fn parse_multiline_clause() {
        let cnf = parse_dimacs("p cnf 2 1\n1\n2 0\n").unwrap();
        assert_eq!(cnf.clauses.len(), 1);
        assert_eq!(cnf.clauses[0].len(), 2);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_dimacs("1 2 0").is_err());
        assert!(parse_dimacs("p cnf x 2\n").is_err());
        assert!(parse_dimacs("p cnf 1 1\n2 0\n").is_err());
        assert!(parse_dimacs("p cnf 2 1\n1 2\n").is_err());
    }

    #[test]
    fn roundtrip() {
        let text = "p cnf 3 2\n1 -2 0\n-1 3 0\n";
        let cnf = parse_dimacs(text).unwrap();
        let out = write_dimacs(&cnf);
        assert_eq!(parse_dimacs(&out).unwrap(), cnf);
    }

    #[test]
    fn into_solver_solves() {
        let cnf = parse_dimacs("p cnf 2 2\n1 0\n-1 2 0\n").unwrap();
        let mut s = cnf.into_solver();
        assert_eq!(s.solve(), SatOutcome::Sat);
    }
}
