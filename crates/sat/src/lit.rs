//! Variables and literals.

use std::fmt;
use std::ops::Not;

/// A propositional variable, numbered from 0.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Builds a variable from its 0-based index. The index must have been
    /// allocated on the target [`crate::Solver`] before use.
    #[inline]
    pub fn from_index(index: usize) -> Var {
        Var(index as u32)
    }

    /// The variable's 0-based index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit(self.0 << 1 | 1)
    }

    /// Builds a literal with the given sign (`true` = positive).
    #[inline]
    pub fn lit(self, positive: bool) -> Lit {
        if positive {
            self.positive()
        } else {
            self.negative()
        }
    }
}

/// A literal: a variable or its negation, packed as `var << 1 | sign`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The literal's variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` if this is the positive literal.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense index usable for watch lists (`2 * var + sign`).
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Builds a literal from a DIMACS-style signed integer (non-zero;
    /// positive `n` means variable `n-1` positive).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn from_dimacs(n: i64) -> Lit {
        assert!(n != 0, "DIMACS literal must be non-zero");
        let var = Var((n.unsigned_abs() - 1) as u32);
        var.lit(n > 0)
    }

    /// Converts to a DIMACS-style signed integer.
    pub fn to_dimacs(self) -> i64 {
        let v = (self.var().0 + 1) as i64;
        if self.is_positive() {
            v
        } else {
            -v
        }
    }
}

impl Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_dimacs())
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_dimacs())
    }
}

/// Tri-state assignment value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum LBool {
    True,
    False,
    Undef,
}

impl LBool {
    #[inline]
    pub(crate) fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_roundtrip() {
        let v = Var(4);
        assert_eq!(v.positive().var(), v);
        assert_eq!(v.negative().var(), v);
        assert!(v.positive().is_positive());
        assert!(!v.negative().is_positive());
        assert_eq!(!v.positive(), v.negative());
        assert_eq!(!!v.positive(), v.positive());
    }

    #[test]
    fn dimacs_conversion() {
        assert_eq!(Lit::from_dimacs(1), Var(0).positive());
        assert_eq!(Lit::from_dimacs(-3), Var(2).negative());
        assert_eq!(Lit::from_dimacs(-3).to_dimacs(), -3);
        assert_eq!(Lit::from_dimacs(7).to_dimacs(), 7);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn dimacs_zero_rejected() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn codes_are_dense() {
        assert_eq!(Var(0).positive().code(), 0);
        assert_eq!(Var(0).negative().code(), 1);
        assert_eq!(Var(1).positive().code(), 2);
    }
}
