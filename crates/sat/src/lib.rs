//! # jedd-sat
//!
//! A from-scratch CDCL boolean-satisfiability solver, standing in for the
//! zchaff solver that the Jedd translator (Lhoták & Hendren, PLDI 2004)
//! invokes to solve its physical-domain-assignment problem.
//!
//! Features:
//!
//! * two-watched-literal unit propagation,
//! * VSIDS-style decision heuristic with phase saving,
//! * first-UIP conflict analysis with clause learning,
//! * Luby-sequence restarts,
//! * **unsatisfiable-core extraction** (the zchaff feature of [Zhang &
//!   Malik, DATE 2003] that Jedd's §3.3.3 error reporting relies on),
//!   implemented by tracking resolution footprints of learned clauses, and
//! * DIMACS CNF reading/writing.
//!
//! # Examples
//!
//! ```
//! use jedd_sat::{SatOutcome, Solver};
//!
//! let mut s = Solver::new();
//! let x = s.new_var();
//! let y = s.new_var();
//! let c1 = s.add_clause(&[x.positive()]);
//! let c2 = s.add_clause(&[x.negative()]);
//! let _ = s.add_clause(&[y.positive()]); // irrelevant
//! assert_eq!(s.solve(), SatOutcome::Unsat);
//! // The core contains only the two contradictory clauses.
//! assert_eq!(s.unsat_core(), &[c1, c2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dimacs;
mod lit;
mod solver;

pub use dimacs::{parse_dimacs, write_dimacs, Cnf, ParseDimacsError};
pub use lit::{Lit, Var};
pub use solver::{ClauseId, SatOutcome, Solver, SolverStats};

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(s: &[i64]) -> Vec<Lit> {
        s.iter().map(|&n| Lit::from_dimacs(n)).collect()
    }

    fn solver_from(clauses: &[&[i64]], nvars: usize) -> Solver {
        let mut s = Solver::new();
        s.new_vars(nvars);
        for c in clauses {
            s.add_clause(&lits(c));
        }
        s
    }

    fn check_model(s: &Solver, clauses: &[&[i64]]) {
        for c in clauses {
            let sat = c.iter().any(|&n| {
                let v = Var((n.unsigned_abs() - 1) as u32);
                s.model_value(v) == (n > 0)
            });
            assert!(sat, "clause {c:?} not satisfied by model");
        }
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SatOutcome::Sat);
    }

    #[test]
    fn single_unit() {
        let clauses: &[&[i64]] = &[&[1]];
        let mut s = solver_from(clauses, 1);
        assert_eq!(s.solve(), SatOutcome::Sat);
        assert!(s.model_value(Var(0)));
    }

    #[test]
    fn contradicting_units_unsat_with_core() {
        let mut s = Solver::new();
        s.new_vars(2);
        let c1 = s.add_clause(&lits(&[1]));
        let _ = s.add_clause(&lits(&[2]));
        let c3 = s.add_clause(&lits(&[-1]));
        assert_eq!(s.solve(), SatOutcome::Unsat);
        let core = s.unsat_core();
        assert!(core.contains(&c1));
        assert!(core.contains(&c3));
        assert_eq!(core.len(), 2);
    }

    #[test]
    fn empty_clause_unsat() {
        let mut s = Solver::new();
        let cid = s.add_clause(&[]);
        assert_eq!(s.solve(), SatOutcome::Unsat);
        assert_eq!(s.unsat_core(), &[cid]);
    }

    #[test]
    fn simple_sat_3cnf() {
        let clauses: &[&[i64]] = &[&[1, 2, 3], &[-1, -2], &[-2, -3], &[-1, -3], &[2]];
        let mut s = solver_from(clauses, 3);
        assert_eq!(s.solve(), SatOutcome::Sat);
        check_model(&s, clauses);
    }

    #[test]
    fn implication_chain() {
        // x1 -> x2 -> ... -> x20, x1 forced true, all must be true.
        let mut s = Solver::new();
        let vars = s.new_vars(20);
        s.add_clause(&[vars[0].positive()]);
        for w in vars.windows(2) {
            s.add_clause(&[w[0].negative(), w[1].positive()]);
        }
        assert_eq!(s.solve(), SatOutcome::Sat);
        for v in vars {
            assert!(s.model_value(v));
        }
    }

    #[test]
    fn chain_with_contradiction_core_is_chain() {
        // x1; x1->x2; x2->x3; !x3; plus unrelated clauses.
        let mut s = Solver::new();
        s.new_vars(6);
        let a = s.add_clause(&lits(&[1]));
        let b = s.add_clause(&lits(&[-1, 2]));
        let c = s.add_clause(&lits(&[-2, 3]));
        let d = s.add_clause(&lits(&[-3]));
        let _junk1 = s.add_clause(&lits(&[4, 5]));
        let _junk2 = s.add_clause(&lits(&[-5, 6]));
        assert_eq!(s.solve(), SatOutcome::Unsat);
        let core: Vec<_> = s.unsat_core().to_vec();
        assert_eq!(core, vec![a, b, c, d]);
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // p(i,j): pigeon i in hole j. Vars 1..=6 (3 pigeons, 2 holes).
        let var = |i: usize, j: usize| (i * 2 + j + 1) as i64;
        let mut clauses: Vec<Vec<i64>> = Vec::new();
        for i in 0..3 {
            clauses.push(vec![var(i, 0), var(i, 1)]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    clauses.push(vec![-var(i1, j), -var(i2, j)]);
                }
            }
        }
        let refs: Vec<&[i64]> = clauses.iter().map(|c| c.as_slice()).collect();
        let mut s = solver_from(&refs, 6);
        assert_eq!(s.solve(), SatOutcome::Unsat);
        assert!(!s.unsat_core().is_empty());
    }

    #[test]
    fn pigeonhole_5_into_4_unsat() {
        let n = 5usize;
        let h = 4usize;
        let var = |i: usize, j: usize| (i * h + j + 1) as i64;
        let mut s = Solver::new();
        s.new_vars(n * h);
        for i in 0..n {
            let c: Vec<Lit> = (0..h).map(|j| Lit::from_dimacs(var(i, j))).collect();
            s.add_clause(&c);
        }
        for j in 0..h {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause(&lits(&[-var(i1, j), -var(i2, j)]));
                }
            }
        }
        assert_eq!(s.solve(), SatOutcome::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn graph_coloring_sat() {
        // 3-color a 5-cycle (odd cycle needs exactly 3 colors).
        let n = 5usize;
        let k = 3usize;
        let var = |v: usize, c: usize| (v * k + c + 1) as i64;
        let mut s = Solver::new();
        s.new_vars(n * k);
        for v in 0..n {
            let c: Vec<Lit> = (0..k).map(|c| Lit::from_dimacs(var(v, c))).collect();
            s.add_clause(&c);
            for c1 in 0..k {
                for c2 in (c1 + 1)..k {
                    s.add_clause(&lits(&[-var(v, c1), -var(v, c2)]));
                }
            }
        }
        for v in 0..n {
            let u = (v + 1) % n;
            for c in 0..k {
                s.add_clause(&lits(&[-var(v, c), -var(u, c)]));
            }
        }
        assert_eq!(s.solve(), SatOutcome::Sat);
        let color = |v: usize| {
            (0..k)
                .find(|&c| s.model_value(Var((v * k + c) as u32)))
                .unwrap()
        };
        for v in 0..n {
            assert_ne!(color(v), color((v + 1) % n));
        }
    }

    #[test]
    fn two_coloring_odd_cycle_unsat() {
        let n = 5usize;
        let k = 2usize;
        let var = |v: usize, c: usize| (v * k + c + 1) as i64;
        let mut s = Solver::new();
        s.new_vars(n * k);
        let mut all: Vec<Vec<Lit>> = Vec::new();
        let mut add = |s: &mut Solver, c: Vec<Lit>| {
            s.add_clause(&c);
            all.push(c);
        };
        for v in 0..n {
            add(&mut s, lits(&[var(v, 0), var(v, 1)]));
            add(&mut s, lits(&[-var(v, 0), -var(v, 1)]));
        }
        for v in 0..n {
            let u = (v + 1) % n;
            for c in 0..k {
                add(&mut s, lits(&[-var(v, c), -var(u, c)]));
            }
        }
        assert_eq!(s.solve(), SatOutcome::Unsat);
        let core = s.unsat_core();
        assert!(!core.is_empty());
        // The core must be unsatisfiable on its own — mirrors Jedd's use:
        // the reported conflict must be real.
        let mut s2 = Solver::new();
        s2.new_vars(n * k);
        for &cid in core {
            s2.add_clause(&all[cid.0 as usize]);
        }
        assert_eq!(s2.solve(), SatOutcome::Unsat);
    }

    #[test]
    fn tautology_is_ignored() {
        let clauses: &[&[i64]] = &[&[1, -1], &[2]];
        let mut s = solver_from(clauses, 2);
        assert_eq!(s.solve(), SatOutcome::Sat);
        assert!(s.model_value(Var(1)));
    }

    #[test]
    fn duplicate_literals_deduped() {
        let clauses: &[&[i64]] = &[&[1, 1, 1], &[-1, 2, 2]];
        let mut s = solver_from(clauses, 2);
        assert_eq!(s.solve(), SatOutcome::Sat);
        assert!(s.model_value(Var(0)));
        assert!(s.model_value(Var(1)));
    }

    #[test]
    fn stats_populated() {
        let clauses: &[&[i64]] = &[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2, 3]];
        let mut s = solver_from(clauses, 3);
        assert_eq!(s.solve(), SatOutcome::Sat);
        let st = s.stats();
        assert!(st.decisions + st.propagations > 0);
        assert_eq!(s.num_clauses(), 4);
        assert_eq!(s.num_literals(), 2 + 2 + 2 + 3);
    }

    #[test]
    fn solve_is_idempotent() {
        let clauses: &[&[i64]] = &[&[1], &[-1]];
        let mut s = solver_from(clauses, 1);
        assert_eq!(s.solve(), SatOutcome::Unsat);
        assert_eq!(s.solve(), SatOutcome::Unsat);
    }

    #[test]
    fn xor_chain_forced() {
        // x1 xor x2 = 1, x2 xor x3 = 1, x1 = 1 => x2 = 0, x3 = 1.
        let clauses: &[&[i64]] = &[&[1, 2], &[-1, -2], &[2, 3], &[-2, -3], &[1]];
        let mut s = solver_from(clauses, 3);
        assert_eq!(s.solve(), SatOutcome::Sat);
        assert!(s.model_value(Var(0)));
        assert!(!s.model_value(Var(1)));
        assert!(s.model_value(Var(2)));
    }

    #[test]
    fn at_most_one_groups() {
        let var = |g: usize, i: usize| (g * 3 + i + 1) as i64;
        let mut s = Solver::new();
        s.new_vars(12);
        for g in 0..4 {
            s.add_clause(&lits(&[var(g, 0), var(g, 1), var(g, 2)]));
            for i in 0..3 {
                for j in (i + 1)..3 {
                    s.add_clause(&lits(&[-var(g, i), -var(g, j)]));
                }
            }
        }
        for g in 0..3 {
            for i in 0..3 {
                s.add_clause(&lits(&[-var(g, i), var(g + 1, i)]));
            }
        }
        assert_eq!(s.solve(), SatOutcome::Sat);
        for g in 0..4 {
            let picks: usize = (0..3)
                .filter(|&i| s.model_value(Var((g * 3 + i) as u32)))
                .count();
            assert_eq!(picks, 1, "group {g}");
        }
    }
}
