#!/usr/bin/env sh
# Seam lint: the BDD kernel must route every synchronization primitive
# through the jedd-sync shim so the model scheduler can interpose on it.
# A direct `use std::sync::...` or a `std::thread::scope`/`spawn` call in
# crates/bdd/src is a hole in the seam — code behind it runs invisibly to
# the deterministic scheduler, the race detector and the lock-order
# graph. This stage fails CI on any such use that is not explicitly
# allowlisted (with a justification) in crates/bdd/sync_allowlist.txt.
#
# Usage: tools/seam_lint.sh [dir]      lint dir (default crates/bdd/src)
#        tools/seam_lint.sh --self-test  verify the lint catches a seeded
#                                        violation and passes clean code
set -eu

cd "$(dirname "$0")/.."
ALLOW=crates/bdd/sync_allowlist.txt

# Prints unallowlisted violations in DIR; returns 0 iff none.
scan() {
    dir=$1
    # Match the primitives the shim wraps; drop lines whose match sits in
    # a // comment (incl. doc comments) — prose may name std::sync freely.
    hits=$(grep -rn -E 'std::sync::|std::thread::(scope|spawn)' "$dir" 2>/dev/null \
        | grep -v -E '^[^:]+:[0-9]+:[[:space:]]*//' || true)
    [ -z "$hits" ] && return 0
    bad=0
    # An allowlist entry is "<file-suffix><TAB><substring>"; a hit is
    # allowed when some entry's file suffix matches its path and the
    # substring appears in its text. Comment lines (#) carry the
    # justification and are skipped here but required by review.
    printf '%s\n' "$hits" | while IFS= read -r line; do
        file=${line%%:*}
        ok=0
        while IFS="$(printf '\t')" read -r afile apat; do
            case "$afile" in ''|'#'*) continue ;; esac
            case "$file" in
                *"$afile")
                    case "$line" in
                        *"$apat"*) ok=1 ;;
                    esac
                    ;;
            esac
        done < "$ALLOW"
        if [ "$ok" = 0 ]; then
            echo "seam violation: $line" >&2
            echo 1 > "$FLAG"
        fi
    done
    [ ! -s "$FLAG" ]
}

FLAG=$(mktemp)
trap 'rm -f "$FLAG"' EXIT
: > "$FLAG"

if [ "${1:-}" = "--self-test" ]; then
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp" "$FLAG"' EXIT
    # A seeded violation must fail...
    cat > "$tmp/bad.rs" <<'EOF'
use std::sync::Mutex;
EOF
    if scan "$tmp" 2>/dev/null; then
        echo "seam_lint self-test FAILED: seeded violation not caught" >&2
        exit 1
    fi
    : > "$FLAG"
    # ...and shim-routed code plus commented mentions must pass.
    cat > "$tmp/bad.rs" <<'EOF'
// std::sync::Mutex is only named in this comment.
use jedd_sync::{Condvar, Mutex};
EOF
    if ! scan "$tmp"; then
        echo "seam_lint self-test FAILED: clean file flagged" >&2
        exit 1
    fi
    echo "seam_lint self-test OK"
    exit 0
fi

if scan "${1:-crates/bdd/src}"; then
    echo "seam lint OK"
else
    echo "seam lint FAILED: raw std::sync/std::thread in crates/bdd." >&2
    echo "Route it through jedd-sync, or allowlist it with a justification" >&2
    echo "in $ALLOW." >&2
    exit 1
fi
